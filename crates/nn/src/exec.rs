//! Functional execution of quantized networks.
//!
//! Runs a network's layers numerically — integer convolutions / matmuls via
//! the reference operators, activation in real space, linear symmetric
//! requantization between layers — so end-to-end behaviour (shapes, value
//! ranges, layer chaining) can be validated against the same layer
//! descriptors the performance simulator consumes. The functional PE
//! simulator in `sibia-sim` is proven equal to these reference operators,
//! so agreement here transfers to the datapath.

use sibia_tensor::ops::{self, Conv2dParams};
use sibia_tensor::{QuantTensor, Shape, Tensor};

use crate::layer::{Layer, LayerKind};
use crate::synth::SynthSource;

/// One executable layer: the descriptor plus materialized quantized weights.
#[derive(Debug, Clone)]
pub struct ExecLayer {
    layer: Layer,
    weights: QuantTensor,
}

impl ExecLayer {
    /// Materializes a layer with synthesized weights.
    pub fn materialize(layer: Layer, src: &mut SynthSource) -> Self {
        let weights = src.weights(&layer, usize::MAX);
        Self { layer, weights }
    }

    /// The layer descriptor.
    pub fn layer(&self) -> &Layer {
        &self.layer
    }

    /// Executes on a quantized input, returning accumulator-precision
    /// outputs and the output shape.
    ///
    /// # Panics
    ///
    /// Panics if the input length does not match the layer's input size.
    pub fn forward(&self, input: &QuantTensor) -> Tensor<i64> {
        assert_eq!(
            input.codes().len(),
            self.layer.kind().input_len(),
            "input size mismatch for layer {}",
            self.layer.name()
        );
        match *self.layer.kind() {
            LayerKind::Conv2d {
                in_ch,
                out_ch,
                kernel,
                stride,
                padding,
                input_hw,
                groups,
            } => {
                assert_eq!(groups, 1, "functional execution supports groups = 1");
                let x = Tensor::from_vec(
                    input.codes().data().to_vec(),
                    Shape::new(&[in_ch, input_hw, input_hw]),
                );
                let w = Tensor::from_vec(
                    self.weights.codes().data().to_vec(),
                    Shape::new(&[out_ch, in_ch, kernel, kernel]),
                );
                ops::conv2d(&x, &w, Conv2dParams { stride, padding })
            }
            LayerKind::Linear {
                rows,
                in_features,
                out_features,
            } => {
                let x = Tensor::from_vec(
                    input.codes().data().to_vec(),
                    Shape::new(&[rows, in_features]),
                );
                let w = Tensor::from_vec(
                    self.weights.codes().data().to_vec(),
                    Shape::new(&[in_features, out_features]),
                );
                ops::matmul(&x, &w)
            }
        }
    }
}

/// A fully materialized, executable quantized network.
#[derive(Debug, Clone)]
pub struct ExecNetwork {
    layers: Vec<ExecLayer>,
}

impl ExecNetwork {
    /// Materializes a chain of layers with synthesized weights.
    ///
    /// # Panics
    ///
    /// Panics if the chain is empty or consecutive layer shapes do not
    /// chain (`output_len != next input_len`).
    pub fn materialize(layers: Vec<Layer>, src: &mut SynthSource) -> Self {
        assert!(!layers.is_empty(), "need at least one layer");
        for w in layers.windows(2) {
            assert_eq!(
                w[0].kind().output_len(),
                w[1].kind().input_len(),
                "layers {} -> {} do not chain",
                w[0].name(),
                w[1].name()
            );
        }
        Self {
            layers: layers
                .into_iter()
                .map(|l| ExecLayer::materialize(l, src))
                .collect(),
        }
    }

    /// The executable layers.
    pub fn layers(&self) -> &[ExecLayer] {
        &self.layers
    }

    /// Runs the network on a quantized input: each layer's accumulator
    /// output is dequantized, passed through the *next* layer's input
    /// activation, and requantized at the next layer's input precision.
    /// Returns the final accumulator-precision output.
    pub fn forward(&self, input: &QuantTensor) -> Tensor<i64> {
        let mut current = input.clone();
        let mut out = None;
        for (i, ex) in self.layers.iter().enumerate() {
            let acc = ex.forward(&current);
            if i + 1 == self.layers.len() {
                out = Some(acc);
                break;
            }
            let next = &self.layers[i + 1];
            let scale = current.quantizer().scale() * ex.weights.quantizer().scale();
            let real: Vec<f32> = acc
                .data()
                .iter()
                .map(|&v| next.layer().activation().apply(v as f32 * scale))
                .collect();
            let p = next.layer().input_precision();
            current = QuantTensor::quantize(&real, Shape::new(&[real.len()]), p);
        }
        out.expect("at least one layer")
    }
}

/// Relative L2 error between an accumulator output and a reference.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn relative_error(got: &Tensor<i64>, reference: &Tensor<i64>) -> f64 {
    assert_eq!(got.len(), reference.len(), "length mismatch");
    let num: f64 = got
        .data()
        .iter()
        .zip(reference.data())
        .map(|(&a, &b)| ((a - b) as f64).powi(2))
        .sum();
    let den: f64 = reference.data().iter().map(|&b| (b as f64).powi(2)).sum();
    (num / den.max(1.0)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use sibia_sbr::Precision;

    fn chain() -> Vec<Layer> {
        vec![
            Layer::conv2d("c1", 3, 8, 3, 1, 1, 8),
            Layer::conv2d("c2", 8, 8, 3, 1, 1, 8).with_activation(Activation::Relu),
            Layer::linear("fc", 1, 8 * 8 * 8, 10).with_activation(Activation::Gelu),
        ]
    }

    fn input(src: &mut SynthSource, n: usize) -> QuantTensor {
        let raw = src.gaussian(n, 1.0);
        QuantTensor::quantize(&raw, Shape::new(&[n]), Precision::BITS7)
    }

    #[test]
    fn network_chains_shapes_end_to_end() {
        let mut src = SynthSource::new(1);
        let net = ExecNetwork::materialize(chain(), &mut src);
        let x = input(&mut src, 3 * 8 * 8);
        let y = net.forward(&x);
        assert_eq!(y.len(), 10);
    }

    #[test]
    fn execution_is_deterministic() {
        let mut s1 = SynthSource::new(2);
        let mut s2 = SynthSource::new(2);
        let n1 = ExecNetwork::materialize(chain(), &mut s1);
        let n2 = ExecNetwork::materialize(chain(), &mut s2);
        let x1 = input(&mut s1, 3 * 8 * 8);
        let x2 = input(&mut s2, 3 * 8 * 8);
        assert_eq!(n1.forward(&x1).data(), n2.forward(&x2).data());
    }

    #[test]
    #[should_panic(expected = "do not chain")]
    fn chaining_is_validated() {
        let mut src = SynthSource::new(3);
        let bad = vec![
            Layer::linear("a", 1, 8, 8),
            Layer::linear("b", 1, 9, 4), // mismatched
        ];
        let _ = ExecNetwork::materialize(bad, &mut src);
    }

    #[test]
    fn relative_error_is_zero_for_identical() {
        let t = Tensor::from_vec(vec![1i64, -5, 9], Shape::new(&[3]));
        assert_eq!(relative_error(&t, &t), 0.0);
    }

    #[test]
    fn single_linear_layer_matches_reference_matmul() {
        let mut src = SynthSource::new(4);
        let layer = Layer::linear("l", 4, 16, 8);
        let ex = ExecLayer::materialize(layer, &mut src);
        let x = input(&mut src, 64);
        let got = ex.forward(&x);
        let xm = Tensor::from_vec(x.codes().data().to_vec(), Shape::new(&[4, 16]));
        let wm = Tensor::from_vec(ex.weights.codes().data().to_vec(), Shape::new(&[16, 8]));
        assert_eq!(got.data(), ops::matmul(&xm, &wm).data());
    }
}
