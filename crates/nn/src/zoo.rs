//! The benchmark model zoo (paper §III-A).
//!
//! Layer shapes follow the published architectures; per-network precisions,
//! activation functions and full-bit-width input sparsities are the paper's
//! reported values:
//!
//! | network | precision (in/w) | activation | input sparsity |
//! |---|---|---|---|
//! | Albert (base)   | attn 7/7, linear 10/13 | GeLU | 11.9 % |
//! | ViT (base, 384) | 7/10                   | GeLU | 24.0 % |
//! | YoloV3 (416)    | 7/7                    | LeakyReLU | 29.2 % |
//! | MonoDepth2      | enc 7/7, dec 10/7      | ReLU / ELU | 57.3 % / 17.5 % |
//! | DGCNN           | 7/7                    | LeakyReLU | 17.3 % |
//! | MobileNetV2     | 10/10                  | ReLU6 | 34.4 % |
//! | ResNet-18       | 7/7                    | ReLU | 53.1 % |
//! | VoteNet         | 7/7                    | ReLU | 46.2 % |
//! | AlexNet         | 7/7                    | ReLU | layer-wise |

use sibia_sbr::Precision;

use crate::activation::Activation;
use crate::layer::{Layer, Reduction};
use crate::network::{DensityClass, Network, TaskDomain};
use crate::synth::InputProfile;

/// GLUE task variants of the Albert benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GlueTask {
    /// Stanford sentiment (short sequences).
    Sst2,
    /// Quora question pairs.
    Qqp,
    /// Multi-genre NLI.
    Mnli,
}

impl GlueTask {
    fn seq_len(self) -> usize {
        match self {
            GlueTask::Sst2 => 64,
            GlueTask::Qqp => 128,
            GlueTask::Mnli => 128,
        }
    }

    fn sparsity(self) -> f64 {
        // Paper reports an 11.9 % base-model average; tasks differ slightly.
        match self {
            GlueTask::Sst2 => 0.119,
            GlueTask::Qqp => 0.135,
            GlueTask::Mnli => 0.112,
        }
    }

    fn label(self) -> &'static str {
        match self {
            GlueTask::Sst2 => "SST-2",
            GlueTask::Qqp => "QQP",
            GlueTask::Mnli => "MNLI",
        }
    }
}

/// Builder for custom transformer-encoder workloads — the Albert/ViT
/// construction exposed for user-defined models.
///
/// # Example
///
/// ```
/// use sibia_nn::zoo::TransformerBuilder;
///
/// let net = TransformerBuilder::new("my-bert", 256, 512)
///     .heads(8)
///     .ffn(2048)
///     .blocks(6)
///     .input_sparsity(0.15)
///     .build();
/// assert_eq!(net.layers().len(), 6 * 8);
/// ```
#[derive(Debug, Clone)]
pub struct TransformerBuilder {
    name: String,
    seq: usize,
    hidden: usize,
    heads: usize,
    ffn: usize,
    blocks: usize,
    attn_prec: (Precision, Precision),
    lin_prec: (Precision, Precision),
    sparsity: f64,
}

impl TransformerBuilder {
    /// Starts a builder with ViT-like defaults (12 heads, 4× FFN,
    /// 12 blocks, 7-bit attention, 7/10-bit linear layers).
    ///
    /// # Panics
    ///
    /// Panics if `seq` or `hidden` is zero.
    pub fn new(name: &str, seq: usize, hidden: usize) -> Self {
        assert!(seq > 0 && hidden > 0, "seq and hidden must be positive");
        Self {
            name: name.to_owned(),
            seq,
            hidden,
            heads: 12,
            ffn: hidden * 4,
            blocks: 12,
            attn_prec: (Precision::BITS7, Precision::BITS7),
            lin_prec: (Precision::BITS7, Precision::BITS10),
            sparsity: 0.15,
        }
    }

    /// Sets the head count.
    pub fn heads(mut self, heads: usize) -> Self {
        self.heads = heads;
        self
    }

    /// Sets the feed-forward width.
    pub fn ffn(mut self, ffn: usize) -> Self {
        self.ffn = ffn;
        self
    }

    /// Sets the block count.
    pub fn blocks(mut self, blocks: usize) -> Self {
        self.blocks = blocks;
        self
    }

    /// Sets the attention-matmul (input, weight) precisions.
    pub fn attention_precisions(mut self, input: Precision, weight: Precision) -> Self {
        self.attn_prec = (input, weight);
        self
    }

    /// Sets the projection/FFN (input, weight) precisions.
    pub fn linear_precisions(mut self, input: Precision, weight: Precision) -> Self {
        self.lin_prec = (input, weight);
        self
    }

    /// Sets the full-bit-width input sparsity target.
    pub fn input_sparsity(mut self, sparsity: f64) -> Self {
        self.sparsity = sparsity;
        self
    }

    /// Builds the network descriptor.
    ///
    /// # Panics
    ///
    /// Panics unless `hidden` is divisible by `heads` and there is at least
    /// one block.
    pub fn build(self) -> Network {
        assert!(self.blocks > 0, "need at least one block");
        assert_eq!(self.hidden % self.heads, 0, "hidden must divide into heads");
        let mut layers = Vec::new();
        for b in 0..self.blocks {
            layers.extend(transformer_block(
                &format!("block{b}"),
                self.seq,
                self.hidden,
                self.heads,
                self.ffn,
                self.attn_prec,
                self.lin_prec,
                self.sparsity,
            ));
        }
        Network::new(
            &self.name,
            TaskDomain::Language,
            DensityClass::Dense,
            layers,
        )
    }
}

/// Builds one transformer encoder block.
///
/// `attn_prec` is the (input, weight) precision of the attention matmuls,
/// `lin_prec` of the projection / feed-forward layers.
#[allow(clippy::too_many_arguments)]
fn transformer_block(
    prefix: &str,
    seq: usize,
    hidden: usize,
    heads: usize,
    ffn: usize,
    attn_prec: (Precision, Precision),
    lin_prec: (Precision, Precision),
    sparsity: f64,
) -> Vec<Layer> {
    let head_dim = hidden / heads;
    let mut layers = Vec::new();
    for proj in ["q_proj", "k_proj", "v_proj"] {
        layers.push(
            Layer::linear(&format!("{prefix}.{proj}"), seq, hidden, hidden)
                .with_precisions(lin_prec.0, lin_prec.1)
                .with_input_sparsity(sparsity),
        );
    }
    layers.push(
        Layer::linear(&format!("{prefix}.qk"), seq * heads, head_dim, seq)
            .with_precisions(attn_prec.0, attn_prec.1)
            .with_input_sparsity(sparsity)
            .with_reduction(Reduction::Softmax { row_len: seq }),
    );
    layers.push(
        Layer::linear(&format!("{prefix}.av"), seq * heads, seq, head_dim)
            .with_precisions(attn_prec.0, attn_prec.1)
            .with_input_profile(InputProfile::AttentionProb),
    );
    layers.push(
        Layer::linear(&format!("{prefix}.attn_out"), seq, hidden, hidden)
            .with_precisions(lin_prec.0, lin_prec.1)
            .with_input_sparsity(sparsity),
    );
    layers.push(
        Layer::linear(&format!("{prefix}.ffn1"), seq, hidden, ffn)
            .with_precisions(lin_prec.0, lin_prec.1)
            .with_input_sparsity(sparsity),
    );
    layers.push(
        Layer::linear(&format!("{prefix}.ffn2"), seq, ffn, hidden)
            .with_precisions(lin_prec.0, lin_prec.1)
            .with_activation(Activation::Gelu)
            .with_input_sparsity(sparsity),
    );
    layers
}

/// Albert-base (12 blocks, hidden 768, FFN 3072) on a GLUE task.
///
/// Albert shares weights across blocks, but every block still executes, so
/// the compute descriptor repeats 12×. Attention modules run at 7-bit,
/// linear layers at 10-bit inputs / 13-bit weights (paper §III-A).
pub fn albert(task: GlueTask) -> Network {
    let mut layers = Vec::new();
    for b in 0..12 {
        layers.extend(transformer_block(
            &format!("block{b}"),
            task.seq_len(),
            768,
            12,
            3072,
            (Precision::BITS7, Precision::BITS7),
            (Precision::BITS10, Precision::BITS13),
            task.sparsity(),
        ));
    }
    Network::new(
        &format!("Albert ({})", task.label()),
        TaskDomain::Language,
        DensityClass::Dense,
        layers,
    )
}

/// ViT-base at 384×384 (patch 16 → 576 tokens + class token).
pub fn vit() -> Network {
    let seq = 577;
    let mut layers = vec![
        // Patch embedding: a 16×16 stride-16 convolution.
        Layer::conv2d("patch_embed", 3, 768, 16, 16, 0, 384)
            .with_precisions(Precision::BITS7, Precision::BITS10),
    ];
    for b in 0..12 {
        layers.extend(transformer_block(
            &format!("block{b}"),
            seq,
            768,
            12,
            3072,
            (Precision::BITS7, Precision::BITS7),
            (Precision::BITS7, Precision::BITS10),
            0.24,
        ));
    }
    Network::new("ViT", TaskDomain::Vision2d, DensityClass::Dense, layers)
}

/// One Darknet-53 residual block: 1×1 bottleneck then 3×3 expansion.
fn darknet_res(prefix: &str, ch: usize, hw: usize, sparsity: f64) -> Vec<Layer> {
    vec![
        Layer::conv2d(&format!("{prefix}.conv1x1"), ch, ch / 2, 1, 1, 0, hw)
            .with_activation(Activation::LEAKY_RELU_01)
            .with_input_sparsity(sparsity),
        Layer::conv2d(&format!("{prefix}.conv3x3"), ch / 2, ch, 3, 1, 1, hw)
            .with_activation(Activation::LEAKY_RELU_01)
            .with_input_sparsity(sparsity),
    ]
}

/// YoloV3 (Darknet-53 backbone at 416×416 plus detection head convs).
pub fn yolov3() -> Network {
    const S: f64 = 0.292;
    let mut layers = vec![
        Layer::conv2d("conv0", 3, 32, 3, 1, 1, 416).with_activation(Activation::LEAKY_RELU_01),
        Layer::conv2d("down1", 32, 64, 3, 2, 1, 416)
            .with_activation(Activation::LEAKY_RELU_01)
            .with_input_sparsity(S),
    ];
    layers.extend(darknet_res("res1", 64, 208, S));
    layers.push(
        Layer::conv2d("down2", 64, 128, 3, 2, 1, 208)
            .with_activation(Activation::LEAKY_RELU_01)
            .with_input_sparsity(S),
    );
    for i in 0..2 {
        layers.extend(darknet_res(&format!("res2.{i}"), 128, 104, S));
    }
    layers.push(
        Layer::conv2d("down3", 128, 256, 3, 2, 1, 104)
            .with_activation(Activation::LEAKY_RELU_01)
            .with_input_sparsity(S),
    );
    for i in 0..8 {
        layers.extend(darknet_res(&format!("res3.{i}"), 256, 52, S));
    }
    layers.push(
        Layer::conv2d("down4", 256, 512, 3, 2, 1, 52)
            .with_activation(Activation::LEAKY_RELU_01)
            .with_input_sparsity(S),
    );
    for i in 0..8 {
        layers.extend(darknet_res(&format!("res4.{i}"), 512, 26, S));
    }
    layers.push(
        Layer::conv2d("down5", 512, 1024, 3, 2, 1, 26)
            .with_activation(Activation::LEAKY_RELU_01)
            .with_input_sparsity(S),
    );
    for i in 0..4 {
        layers.extend(darknet_res(&format!("res5.{i}"), 1024, 13, S));
    }
    // Detection head at the 13×13 scale.
    layers.push(
        Layer::conv2d("head.conv", 1024, 512, 1, 1, 0, 13)
            .with_activation(Activation::LEAKY_RELU_01)
            .with_input_sparsity(S),
    );
    layers.push(
        Layer::conv2d("head.out", 512, 255, 1, 1, 0, 13)
            .with_activation(Activation::LEAKY_RELU_01)
            .with_input_sparsity(S),
    );
    Network::new("YoloV3", TaskDomain::Vision2d, DensityClass::Dense, layers)
}

/// The ResNet-18 trunk, reused by the standalone benchmark and the
/// MonoDepth2 encoder.
fn resnet18_trunk(prec: Precision, sparsity: f64, input_hw: usize) -> Vec<Layer> {
    let act = Activation::Relu;
    let mut layers = vec![Layer::conv2d("conv1", 3, 64, 7, 2, 3, input_hw)
        .with_precisions(prec, prec)
        .with_activation(Activation::Identity)];
    let stages: [(usize, usize, usize); 4] = [
        (64, input_hw / 4, 1),
        (128, input_hw / 4, 2),
        (256, input_hw / 8, 2),
        (512, input_hw / 16, 2),
    ];
    let mut in_ch = 64;
    for (si, &(ch, hw_in, first_stride)) in stages.iter().enumerate() {
        for b in 0..2 {
            let stride = if b == 0 { first_stride } else { 1 };
            let hw = if b == 0 { hw_in } else { hw_in / first_stride };
            layers.push(
                Layer::conv2d(&format!("layer{si}.{b}.conv1"), in_ch, ch, 3, stride, 1, hw)
                    .with_precisions(prec, prec)
                    .with_activation(act)
                    .with_input_sparsity(sparsity),
            );
            let hw_out = (hw + 2 - 3) / stride + 1;
            layers.push(
                Layer::conv2d(&format!("layer{si}.{b}.conv2"), ch, ch, 3, 1, 1, hw_out)
                    .with_precisions(prec, prec)
                    .with_activation(act)
                    .with_input_sparsity(sparsity),
            );
            if b == 0 && in_ch != ch {
                layers.push(
                    Layer::conv2d(
                        &format!("layer{si}.0.down"),
                        in_ch,
                        ch,
                        1,
                        first_stride,
                        0,
                        hw,
                    )
                    .with_precisions(prec, prec)
                    .with_activation(act)
                    .with_input_sparsity(sparsity),
                );
            }
            in_ch = ch;
        }
    }
    layers
}

/// ResNet-18 at 224×224 (7-bit, ReLU, 53.1 % input sparsity).
pub fn resnet18() -> Network {
    let mut layers = resnet18_trunk(Precision::BITS7, 0.531, 224);
    layers.push(
        Layer::linear("fc", 1, 512, 1000)
            .with_precisions(Precision::BITS7, Precision::BITS7)
            .with_activation(Activation::Relu)
            .with_input_sparsity(0.531),
    );
    Network::new(
        "ResNet-18",
        TaskDomain::Vision2d,
        DensityClass::Sparse,
        layers,
    )
}

/// MonoDepth2: ResNet-18 encoder (ReLU, 7-bit, 57.3 % sparsity) plus a dense
/// ELU decoder (10-bit inputs, 7-bit weights, 17.5 % sparsity).
pub fn monodepth2() -> Network {
    let mut layers = resnet18_trunk(Precision::BITS7, 0.573, 224);
    let dec: [(usize, usize, usize); 5] = [
        (512, 256, 7),
        (256, 128, 14),
        (128, 64, 28),
        (64, 32, 56),
        (32, 16, 112),
    ];
    for (i, &(cin, cout, hw)) in dec.iter().enumerate() {
        layers.push(
            Layer::conv2d(&format!("dec{i}.upconv"), cin, cout, 3, 1, 1, hw)
                .with_precisions(Precision::BITS10, Precision::BITS7)
                .with_activation(Activation::ELU_1)
                .with_input_sparsity(0.175),
        );
        layers.push(
            Layer::conv2d(&format!("dec{i}.iconv"), cout, cout, 3, 1, 1, hw * 2)
                .with_precisions(Precision::BITS10, Precision::BITS7)
                .with_activation(Activation::ELU_1)
                .with_input_sparsity(0.175),
        );
    }
    layers.push(
        Layer::conv2d("dispconv", 16, 1, 3, 1, 1, 224)
            .with_precisions(Precision::BITS10, Precision::BITS7)
            .with_activation(Activation::ELU_1)
            .with_input_sparsity(0.175),
    );
    Network::new(
        "MonoDepth2",
        TaskDomain::Vision2d,
        DensityClass::Dense,
        layers,
    )
}

/// DGCNN on ModelNet40: four EdgeConv stages over 1024 points with 40-to-1
/// neighbourhood max pooling, then a global embedding layer.
pub fn dgcnn() -> Network {
    const POINTS: usize = 1024;
    const K: usize = 40;
    const S: f64 = 0.173;
    let stages: [(usize, usize); 4] = [(6, 64), (128, 64), (128, 128), (256, 256)];
    let mut layers = Vec::new();
    for (i, &(cin, cout)) in stages.iter().enumerate() {
        layers.push(
            Layer::linear(&format!("edgeconv{i}"), POINTS * K, cin, cout)
                .with_activation(Activation::LEAKY_RELU_01)
                .with_input_sparsity(S)
                .with_reduction(Reduction::MaxPool { group: K })
                // Neighbour features are gathered and concatenated on chip:
                // each unique point value is duplicated 2K times.
                .with_dram_input_fraction(1.0 / (2.0 * K as f64)),
        );
    }
    layers.push(
        Layer::linear("embed", POINTS, 512, 1024)
            .with_activation(Activation::LEAKY_RELU_01)
            .with_input_sparsity(S)
            .with_reduction(Reduction::MaxPool { group: POINTS }),
    );
    layers.push(
        Layer::linear("cls1", 1, 2048, 512)
            .with_activation(Activation::LEAKY_RELU_01)
            .with_input_sparsity(S),
    );
    layers.push(
        Layer::linear("cls2", 1, 512, 256)
            .with_activation(Activation::LEAKY_RELU_01)
            .with_input_sparsity(S),
    );
    layers.push(
        Layer::linear("cls3", 1, 256, 40)
            .with_activation(Activation::LEAKY_RELU_01)
            .with_input_sparsity(S),
    );
    Network::new("DGCNN", TaskDomain::PointCloud, DensityClass::Dense, layers)
}

/// MobileNetV2 at 224×224 (10-bit, ReLU6 modelled as ReLU, 34.4 % input
/// sparsity).
pub fn mobilenet_v2() -> Network {
    const P: Precision = Precision::BITS10;
    const S: f64 = 0.344;
    let act = Activation::Relu;
    let mut layers = vec![Layer::conv2d("conv0", 3, 32, 3, 2, 1, 224).with_precisions(P, P)];
    // (expansion, out channels, repeats, first stride) per inverted residual
    // stage, from the MobileNetV2 paper.
    let cfg: [(usize, usize, usize, usize); 7] = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    let mut in_ch = 32;
    let mut hw = 112;
    for (si, &(t, c, n, s)) in cfg.iter().enumerate() {
        for b in 0..n {
            let stride = if b == 0 { s } else { 1 };
            let hidden = in_ch * t;
            let name = format!("ir{si}.{b}");
            if t != 1 {
                layers.push(
                    Layer::conv2d(&format!("{name}.expand"), in_ch, hidden, 1, 1, 0, hw)
                        .with_precisions(P, P)
                        .with_activation(act)
                        .with_input_sparsity(S),
                );
            }
            layers.push(
                Layer::grouped_conv2d(
                    &format!("{name}.dw"),
                    hidden,
                    hidden,
                    3,
                    stride,
                    1,
                    hw,
                    hidden,
                )
                .with_precisions(P, P)
                .with_activation(act)
                .with_input_sparsity(S),
            );
            hw = (hw + 2 - 3) / stride + 1;
            layers.push(
                Layer::conv2d(&format!("{name}.project"), hidden, c, 1, 1, 0, hw)
                    .with_precisions(P, P)
                    .with_activation(act)
                    .with_input_sparsity(S),
            );
            in_ch = c;
        }
    }
    layers.push(
        Layer::conv2d("conv_last", 320, 1280, 1, 1, 0, 7)
            .with_precisions(P, P)
            .with_activation(act)
            .with_input_sparsity(S),
    );
    layers.push(
        Layer::linear("fc", 1, 1280, 1000)
            .with_precisions(P, P)
            .with_activation(act)
            .with_input_sparsity(S),
    );
    Network::new(
        "MobileNetV2",
        TaskDomain::Vision2d,
        DensityClass::Sparse,
        layers,
    )
}

/// VoteNet backbone (PointNet++ set-abstraction MLPs) with the paper's
/// 64-to-1, 32-to-1 and three 16-to-1 max-pooling layers.
pub fn votenet() -> Network {
    const S: f64 = 0.462;
    let act = Activation::Relu;
    // (name, grouped rows, group, in features, MLP widths)
    struct Sa {
        name: &'static str,
        centroids: usize,
        group: usize,
        mlp: [usize; 3],
        in_features: usize,
        /// Unique fraction of the gather-duplicated ball-query groups.
        dram_fraction: f64,
    }
    let sas = [
        Sa {
            name: "sa1",
            centroids: 2048,
            group: 64,
            in_features: 3,
            mlp: [64, 64, 128],
            dram_fraction: 0.15,
        },
        Sa {
            name: "sa2",
            centroids: 1024,
            group: 32,
            in_features: 131,
            mlp: [128, 128, 256],
            dram_fraction: 1.0 / 16.0,
        },
        Sa {
            name: "sa3",
            centroids: 512,
            group: 16,
            in_features: 259,
            mlp: [128, 128, 256],
            dram_fraction: 1.0 / 8.0,
        },
        Sa {
            name: "sa4",
            centroids: 256,
            group: 16,
            in_features: 259,
            mlp: [128, 128, 256],
            dram_fraction: 1.0 / 8.0,
        },
    ];
    let mut layers = Vec::new();
    for sa in &sas {
        let rows = sa.centroids * sa.group;
        let mut cin = sa.in_features;
        for (i, &cout) in sa.mlp.iter().enumerate() {
            let mut layer = Layer::linear(&format!("{}.mlp{i}", sa.name), rows, cin, cout)
                .with_activation(act)
                .with_input_sparsity(if cin == 3 { 0.0 } else { S });
            if i == 0 {
                layer = layer.with_dram_input_fraction(sa.dram_fraction);
            }
            if i + 1 == sa.mlp.len() {
                layer = layer.with_reduction(Reduction::MaxPool { group: sa.group });
            }
            layers.push(layer);
            cin = cout;
        }
    }
    // Voting module + proposal head (the fifth pooling is 16-to-1 in sa4 —
    // three 16-to-1 pools total across sa3/sa4/proposal grouping).
    layers.push(
        Layer::linear("vote.mlp", 1024, 256, 256)
            .with_activation(act)
            .with_input_sparsity(S),
    );
    layers.push(
        Layer::linear("proposal.mlp", 256 * 16, 128, 128)
            .with_activation(act)
            .with_input_sparsity(S)
            .with_reduction(Reduction::MaxPool { group: 16 }),
    );
    layers.push(
        Layer::linear("proposal.head", 256, 128, 79)
            .with_activation(act)
            .with_input_sparsity(S),
    );
    Network::new(
        "VoteNet",
        TaskDomain::PointCloud,
        DensityClass::Sparse,
        layers,
    )
}

/// AlexNet (for the per-layer energy comparison of paper Fig. 15).
///
/// `input_sparsity` of conv1 is zero (dense image input); deeper ReLU layers
/// carry typical post-ReLU sparsity.
pub fn alexnet() -> Network {
    const P: Precision = Precision::BITS7;
    let act = Activation::Relu;
    let layers = vec![
        Layer::conv2d("conv1", 3, 96, 11, 4, 2, 227).with_precisions(P, P),
        Layer::grouped_conv2d("conv2", 96, 256, 5, 1, 2, 27, 2)
            .with_precisions(P, P)
            .with_activation(act)
            .with_input_sparsity(0.39),
        Layer::conv2d("conv3", 256, 384, 3, 1, 1, 13)
            .with_precisions(P, P)
            .with_activation(act)
            .with_input_sparsity(0.47),
        Layer::grouped_conv2d("conv4", 384, 384, 3, 1, 1, 13, 2)
            .with_precisions(P, P)
            .with_activation(act)
            .with_input_sparsity(0.55),
        Layer::grouped_conv2d("conv5", 384, 256, 3, 1, 1, 13, 2)
            .with_precisions(P, P)
            .with_activation(act)
            .with_input_sparsity(0.55),
        Layer::linear("fc6", 1, 9216, 4096)
            .with_precisions(P, P)
            .with_activation(act)
            .with_input_sparsity(0.6),
        Layer::linear("fc7", 1, 4096, 4096)
            .with_precisions(P, P)
            .with_activation(act)
            .with_input_sparsity(0.6),
        Layer::linear("fc8", 1, 4096, 1000)
            .with_precisions(P, P)
            .with_activation(act)
            .with_input_sparsity(0.6),
    ];
    Network::new(
        "AlexNet",
        TaskDomain::Vision2d,
        DensityClass::Sparse,
        layers,
    )
}

/// Looks up a benchmark network by its CLI-friendly name.
///
/// ```
/// use sibia_nn::zoo;
/// assert!(zoo::by_name("resnet18").is_some());
/// assert!(zoo::by_name("unknown").is_none());
/// ```
pub fn by_name(name: &str) -> Option<Network> {
    Some(match name {
        "albert-sst2" => albert(GlueTask::Sst2),
        "albert-qqp" => albert(GlueTask::Qqp),
        "albert-mnli" => albert(GlueTask::Mnli),
        "vit" => vit(),
        "yolov3" => yolov3(),
        "monodepth2" => monodepth2(),
        "dgcnn" => dgcnn(),
        "mobilenetv2" => mobilenet_v2(),
        "resnet18" => resnet18(),
        "votenet" => votenet(),
        "alexnet" => alexnet(),
        _ => return None,
    })
}

/// The CLI-friendly names accepted by [`by_name`].
pub const NETWORK_NAMES: [&str; 11] = [
    "albert-sst2",
    "albert-qqp",
    "albert-mnli",
    "vit",
    "yolov3",
    "monodepth2",
    "dgcnn",
    "mobilenetv2",
    "resnet18",
    "votenet",
    "alexnet",
];

/// The paper's dense benchmark set (Fig. 10 order).
pub fn dense_benchmarks() -> Vec<Network> {
    vec![
        albert(GlueTask::Sst2),
        albert(GlueTask::Qqp),
        albert(GlueTask::Mnli),
        vit(),
        yolov3(),
        monodepth2(),
        dgcnn(),
    ]
}

/// The paper's sparse benchmark set (Fig. 11 order).
pub fn sparse_benchmarks() -> Vec<Network> {
    vec![mobilenet_v2(), resnet18(), votenet()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_networks_construct() {
        for n in dense_benchmarks().iter().chain(sparse_benchmarks().iter()) {
            assert!(n.total_macs() > 0, "{}", n.name());
            assert!(!n.layers().is_empty());
        }
        assert!(alexnet().total_macs() > 0);
    }

    #[test]
    fn resnet18_mac_count_is_plausible() {
        // Published ResNet-18 @224 ≈ 1.8 GMACs.
        let g = resnet18().total_macs() as f64 / 1e9;
        assert!((1.4..=2.2).contains(&g), "got {g} GMACs");
    }

    #[test]
    fn yolov3_mac_count_is_plausible() {
        // Published YoloV3 @416 ≈ 32.8 GMACs (we model backbone + one head).
        let g = yolov3().total_macs() as f64 / 1e9;
        assert!((20.0..=40.0).contains(&g), "got {g} GMACs");
    }

    #[test]
    fn mobilenet_mac_count_is_plausible() {
        // Published MobileNetV2 @224 ≈ 0.3 GMACs.
        let g = mobilenet_v2().total_macs() as f64 / 1e9;
        assert!((0.2..=0.5).contains(&g), "got {g} GMACs");
    }

    #[test]
    fn vit_mac_count_is_plausible() {
        // ViT-B/16 @384 ≈ 49 GMACs (attention + MLP.)
        let g = vit().total_macs() as f64 / 1e9;
        assert!((30.0..=70.0).contains(&g), "got {g} GMACs");
    }

    #[test]
    fn albert_blocks_repeat_twelve_times() {
        let n = albert(GlueTask::Mnli);
        assert_eq!(n.layers().len(), 12 * 8);
        // Linear layers use 10/13-bit, attention 7-bit.
        let ffn = n
            .layers()
            .iter()
            .find(|l| l.name() == "block0.ffn1")
            .unwrap();
        assert_eq!(ffn.input_precision(), Precision::BITS10);
        assert_eq!(ffn.weight_precision(), Precision::BITS13);
        let qk = n.layers().iter().find(|l| l.name() == "block0.qk").unwrap();
        assert_eq!(qk.input_precision(), Precision::BITS7);
        assert!(matches!(qk.reduction(), Some(Reduction::Softmax { .. })));
    }

    #[test]
    fn votenet_has_paper_pooling_structure() {
        let n = votenet();
        let pools: Vec<usize> = n
            .layers()
            .iter()
            .filter_map(|l| match l.reduction() {
                Some(Reduction::MaxPool { group }) => Some(group),
                _ => None,
            })
            .collect();
        assert_eq!(pools, vec![64, 32, 16, 16, 16]);
    }

    #[test]
    fn dgcnn_uses_40_to_1_pooling() {
        let n = dgcnn();
        let count = n
            .layers()
            .iter()
            .filter(|l| matches!(l.reduction(), Some(Reduction::MaxPool { group: 40 })))
            .count();
        assert_eq!(count, 4);
    }

    #[test]
    fn monodepth_mixes_relu_encoder_and_elu_decoder() {
        let n = monodepth2();
        let enc_relu = n
            .layers()
            .iter()
            .filter(|l| l.activation() == Activation::Relu)
            .count();
        let dec_elu = n
            .layers()
            .iter()
            .filter(|l| matches!(l.activation(), Activation::Elu { .. }))
            .count();
        assert!(enc_relu >= 16);
        assert_eq!(dec_elu, 11);
        // Decoder uses 10-bit inputs with 7-bit weights.
        let dec = n
            .layers()
            .iter()
            .find(|l| l.name() == "dec0.upconv")
            .unwrap();
        assert_eq!(dec.input_precision(), Precision::BITS10);
        assert_eq!(dec.weight_precision(), Precision::BITS7);
    }

    #[test]
    fn density_classes_match_paper_grouping() {
        assert!(dense_benchmarks()
            .iter()
            .all(|n| n.density() == DensityClass::Dense));
        assert!(sparse_benchmarks()
            .iter()
            .all(|n| n.density() == DensityClass::Sparse));
    }
}
