//! Whole-network descriptors.

use std::fmt;

use crate::layer::Layer;

/// The dimensionality class the paper groups benchmarks by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskDomain {
    /// 1-D language (Albert).
    Language,
    /// 2-D vision (ViT, YoloV3, MonoDepth2, MobileNetV2, ResNet-18, AlexNet).
    Vision2d,
    /// 3-D point cloud (DGCNN, VoteNet).
    PointCloud,
}

/// Whether the paper classifies the network as dense or sparse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DensityClass {
    /// Non-ReLU activations → little full-bit-width sparsity (Fig. 10 set).
    Dense,
    /// ReLU activations → substantial input sparsity (Fig. 11 set).
    Sparse,
}

/// A benchmark network: an ordered list of MAC layers plus metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Network {
    name: String,
    domain: TaskDomain,
    density: DensityClass,
    layers: Vec<Layer>,
}

impl Network {
    /// Assembles a network descriptor.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty.
    pub fn new(name: &str, domain: TaskDomain, density: DensityClass, layers: Vec<Layer>) -> Self {
        assert!(!layers.is_empty(), "a network needs at least one layer");
        Self {
            name: name.to_owned(),
            domain,
            density,
            layers,
        }
    }

    /// The network name (e.g. `"Albert (MNLI)"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The task domain.
    pub fn domain(&self) -> TaskDomain {
        self.domain
    }

    /// Dense or sparse classification (paper Fig. 10 vs Fig. 11).
    pub fn density(&self) -> DensityClass {
        self.density
    }

    /// The layers in execution order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Total MAC count over all layers.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(Layer::macs).sum()
    }

    /// Average full-bit-width input sparsity, MAC-weighted.
    pub fn mac_weighted_input_sparsity(&self) -> f64 {
        let total = self.total_macs() as f64;
        self.layers
            .iter()
            .map(|l| l.input_sparsity() * l.macs() as f64)
            .sum::<f64>()
            / total
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} layers, {:.2} GMACs)",
            self.name,
            self.layers.len(),
            self.total_macs() as f64 / 1e9
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Layer;

    #[test]
    fn totals_aggregate_layers() {
        let n = Network::new(
            "toy",
            TaskDomain::Vision2d,
            DensityClass::Sparse,
            vec![
                Layer::linear("a", 2, 4, 8).with_input_sparsity(0.5),
                Layer::linear("b", 2, 8, 4).with_input_sparsity(0.0),
            ],
        );
        assert_eq!(n.total_macs(), 2 * 4 * 8 + 2 * 8 * 4);
        assert!((n.mac_weighted_input_sparsity() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn rejects_empty_network() {
        let _ = Network::new("x", TaskDomain::Language, DensityClass::Dense, vec![]);
    }
}
