//! Activation functions.
//!
//! The paper's central observation is distributional: ReLU produces exact
//! zeros (full bit-width sparsity), while the *non-ReLU* functions — GeLU,
//! Leaky-ReLU, ELU — saturate negative inputs to small negative values that
//! conventional bit-slices cannot skip but signed bit-slices can.

use std::fmt;

/// An elementwise activation function.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Activation {
    /// No activation (e.g. projection layers).
    #[default]
    Identity,
    /// `max(0, x)` — produces exact zeros.
    Relu,
    /// `x > 0 ? x : alpha·x` (YoloV3, DGCNN use `alpha = 0.1`).
    LeakyRelu {
        /// Negative-side slope.
        alpha: f32,
    },
    /// Gaussian error linear unit (Albert, ViT) — tanh approximation.
    Gelu,
    /// `x > 0 ? x : alpha·(exp(x) − 1)` (MonoDepth2 decoder).
    Elu {
        /// Negative saturation magnitude.
        alpha: f32,
    },
}

impl Activation {
    /// The conventional Leaky-ReLU used by YoloV3 / DGCNN.
    pub const LEAKY_RELU_01: Activation = Activation::LeakyRelu { alpha: 0.1 };
    /// The conventional ELU with unit saturation.
    pub const ELU_1: Activation = Activation::Elu { alpha: 1.0 };

    /// Applies the function to one value.
    pub fn apply(&self, x: f32) -> f32 {
        match *self {
            Activation::Identity => x,
            Activation::Relu => x.max(0.0),
            Activation::LeakyRelu { alpha } => {
                if x > 0.0 {
                    x
                } else {
                    alpha * x
                }
            }
            Activation::Gelu => {
                // tanh approximation (Hendrycks & Gimpel).
                let c = (2.0f32 / std::f32::consts::PI).sqrt();
                0.5 * x * (1.0 + (c * (x + 0.044_715 * x * x * x)).tanh())
            }
            Activation::Elu { alpha } => {
                if x > 0.0 {
                    x
                } else {
                    alpha * (x.exp() - 1.0)
                }
            }
        }
    }

    /// Applies the function in place to a buffer.
    pub fn apply_all(&self, xs: &mut [f32]) {
        for x in xs {
            *x = self.apply(*x);
        }
    }

    /// Whether negative inputs map to exact zero (only true for ReLU) —
    /// i.e. whether the function produces full bit-width sparsity that even
    /// non-slice architectures can exploit.
    pub fn zeroes_negatives(&self) -> bool {
        matches!(self, Activation::Relu)
    }
}

impl fmt::Display for Activation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Activation::Identity => write!(f, "identity"),
            Activation::Relu => write!(f, "ReLU"),
            Activation::LeakyRelu { alpha } => write!(f, "LeakyReLU({alpha})"),
            Activation::Gelu => write!(f, "GeLU"),
            Activation::Elu { alpha } => write!(f, "ELU({alpha})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_zeroes_negatives() {
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::Relu.apply(3.0), 3.0);
        assert!(Activation::Relu.zeroes_negatives());
    }

    #[test]
    fn leaky_relu_preserves_small_negatives() {
        let a = Activation::LEAKY_RELU_01;
        assert!((a.apply(-2.0) - (-0.2)).abs() < 1e-6);
        assert_eq!(a.apply(2.0), 2.0);
        assert!(!a.zeroes_negatives());
    }

    #[test]
    fn elu_saturates_negatives() {
        let a = Activation::ELU_1;
        assert!(a.apply(-10.0) > -1.0001);
        assert!(a.apply(-10.0) < -0.99);
        assert_eq!(a.apply(1.5), 1.5);
    }

    #[test]
    fn gelu_matches_reference_points() {
        let g = Activation::Gelu;
        assert!(g.apply(0.0).abs() < 1e-6);
        // GeLU(1) ≈ 0.8412, GeLU(-1) ≈ -0.1588 (tanh approximation).
        assert!((g.apply(1.0) - 0.8412).abs() < 5e-3);
        assert!((g.apply(-1.0) + 0.1588).abs() < 5e-3);
        // Large negatives saturate to ~0⁻ — small-magnitude negatives, the
        // SBR sweet spot.
        assert!(g.apply(-4.0) < 0.0);
        assert!(g.apply(-4.0) > -0.01);
    }

    #[test]
    fn apply_all_transforms_in_place() {
        let mut v = vec![-1.0, 0.0, 1.0];
        Activation::Relu.apply_all(&mut v);
        assert_eq!(v, vec![0.0, 0.0, 1.0]);
    }
}
