//! Property tests for the compression invariants of DESIGN.md §4.

use proptest::prelude::*;
use sibia_compress::{CompressionMode, CompressionReport, RleCodec};
use sibia_sbr::{Precision, SubWord};

fn arb_subwords() -> impl Strategy<Value = Vec<SubWord>> {
    prop::collection::vec(
        prop_oneof![
            3 => Just(SubWord([0, 0, 0, 0])),
            2 => prop::array::uniform4(-7i8..=7).prop_map(SubWord),
        ],
        0..300,
    )
}

proptest! {
    /// RLE round-trips any sub-word stream at any index width.
    #[test]
    fn rle_round_trip(words in arb_subwords(), bits in 1u8..=12) {
        let codec = RleCodec::new(bits);
        let stream = codec.compress(&words);
        prop_assert_eq!(stream.decompress(), words);
    }

    /// Compressed size accounting matches the entry count exactly.
    #[test]
    fn rle_size_formula(words in arb_subwords(), bits in 1u8..=12) {
        let codec = RleCodec::new(bits);
        let stream = codec.compress(&words);
        prop_assert_eq!(
            stream.size_bits(),
            stream.entries().len() * (16 + usize::from(bits))
        );
        prop_assert_eq!(stream.raw_size_bits(), words.len() * 16);
    }

    /// Entry count is bounded: one entry per non-zero word plus one padding
    /// entry per saturated zero run.
    #[test]
    fn rle_entry_bound(words in arb_subwords()) {
        let codec = RleCodec::new(4);
        let stream = codec.compress(&words);
        let nonzero = words.iter().filter(|w| !w.is_zero()).count();
        let zeros = words.len() - nonzero;
        prop_assert!(stream.entries().len() <= nonzero + zeros / 15 + 1);
        prop_assert!(stream.entries().len() >= nonzero);
    }

    /// Bit-level serialization round-trips any stream at any index width.
    #[test]
    fn serialization_round_trip(words in arb_subwords(), bits in 1u8..=12) {
        use sibia_compress::rle::RleStream;
        let stream = RleCodec::new(bits).compress(&words);
        let bytes = stream.serialize();
        prop_assert_eq!(bytes.len(), stream.size_bits().div_ceil(8));
        let back = RleStream::deserialize(&bytes, bits, words.len());
        prop_assert_eq!(back.decompress(), words);
    }

    /// Hybrid compression never stores more bits than either pure mode.
    #[test]
    fn hybrid_is_min(values in prop::collection::vec(-63i32..=63, 1..400)) {
        let p = Precision::BITS7;
        let none = CompressionReport::analyze(&values, p, CompressionMode::None);
        let rle = CompressionReport::analyze(&values, p, CompressionMode::Rle);
        let hybrid = CompressionReport::analyze(&values, p, CompressionMode::Hybrid);
        prop_assert!(hybrid.stored_bits <= none.stored_bits);
        prop_assert!(hybrid.stored_bits <= rle.stored_bits);
        prop_assert!(hybrid.ratio() >= none.ratio());
    }

    /// The compression report's plane accounting sums to the total.
    #[test]
    fn plane_bits_sum(values in prop::collection::vec(-511i32..=511, 1..200)) {
        let r = CompressionReport::analyze(&values, Precision::BITS10, CompressionMode::Hybrid);
        prop_assert_eq!(r.plane_bits.iter().sum::<usize>(), r.stored_bits);
        prop_assert_eq!(r.plane_bits.len(), 3);
        prop_assert_eq!(r.compressed_planes.len(), 3);
    }
}
