//! Hybrid compression policy and whole-tensor compression accounting
//! (paper §II-E and Fig. 13).

use std::fmt;

use sibia_sbr::subword::to_subwords;
use sibia_sbr::{sbr, Precision};

use crate::rle::{RleCodec, SUBWORD_BITS};

/// How a tensor's signed bit-slice planes are stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompressionMode {
    /// Raw signed bit-slices — 4 bits per slice, no indices
    /// (Fig. 13 "no compression").
    None,
    /// RLE on every slice plane (Fig. 13 "RLE compression").
    Rle,
    /// RLE only on planes where it is profitable; dense (usually low-order)
    /// planes stay raw (Fig. 13 "hybrid compression", decided by the DSM).
    Hybrid,
}

impl fmt::Display for CompressionMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompressionMode::None => write!(f, "no compression"),
            CompressionMode::Rle => write!(f, "RLE"),
            CompressionMode::Hybrid => write!(f, "hybrid"),
        }
    }
}

/// Size accounting for one tensor under one compression mode.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressionReport {
    /// Baseline: raw 2's-complement data at the tensor's precision.
    pub baseline_bits: usize,
    /// Stored size under the chosen mode.
    pub stored_bits: usize,
    /// Per-plane stored sizes, order 0 (LSB) first.
    pub plane_bits: Vec<usize>,
    /// Which planes ended up RLE-compressed.
    pub compressed_planes: Vec<bool>,
    /// The mode that was applied.
    pub mode: CompressionMode,
}

impl CompressionReport {
    /// Compression ratio relative to the fixed-point baseline
    /// (> 1 means the encoding beats raw 2's-complement storage).
    pub fn ratio(&self) -> f64 {
        self.baseline_bits as f64 / self.stored_bits as f64
    }

    /// Analyzes a quantized tensor at `precision` under `mode`, using the
    /// default 4-bit RLE index.
    ///
    /// # Panics
    ///
    /// Panics if any value is outside the symmetric range of `precision`.
    pub fn analyze(values: &[i32], precision: Precision, mode: CompressionMode) -> Self {
        Self::analyze_with_codec(values, precision, mode, RleCodec::default())
    }

    /// Analyzes with an explicit codec.
    ///
    /// # Panics
    ///
    /// Panics if any value is outside the symmetric range of `precision`.
    pub fn analyze_with_codec(
        values: &[i32],
        precision: Precision,
        mode: CompressionMode,
        codec: RleCodec,
    ) -> Self {
        let planes = sbr::planes(values, precision);
        let baseline_bits = values.len() * usize::from(precision.bits());
        let mut plane_bits = Vec::with_capacity(planes.len());
        let mut compressed_planes = Vec::with_capacity(planes.len());
        for plane in &planes {
            let words = to_subwords(plane);
            let raw = words.len() * SUBWORD_BITS;
            let (bits, compressed) = match mode {
                CompressionMode::None => (raw, false),
                CompressionMode::Rle => (codec.compress(&words).size_bits(), true),
                CompressionMode::Hybrid => {
                    let rle = codec.compress(&words).size_bits();
                    if rle < raw {
                        (rle, true)
                    } else {
                        (raw, false)
                    }
                }
            };
            plane_bits.push(bits);
            compressed_planes.push(compressed);
        }
        Self {
            baseline_bits,
            stored_bits: plane_bits.iter().sum(),
            plane_bits,
            compressed_planes,
            mode,
        }
    }
}

impl fmt::Display for CompressionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} -> {} bits (ratio {:.2}x)",
            self.mode,
            self.baseline_bits,
            self.stored_bits,
            self.ratio()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A dense non-ReLU-style tensor with the spatial correlation of real
    /// feature maps: groups of four adjacent values share a regime
    /// (zero region / near-zero region / salient region), which is what
    /// makes sub-word-granularity zeros common in practice.
    fn dense_values(n: usize) -> Vec<i32> {
        (0..n)
            .map(|i| {
                let h = (i / 4).wrapping_mul(2_654_435_761) >> 7;
                let e = i.wrapping_mul(40_503) >> 3;
                match h % 100 {
                    0..=19 => 0,                    // zero region
                    20..=84 => (e % 15) as i32 - 7, // near-zero (both signs)
                    _ => {
                        let m = ((e % 55) + 8) as i32; // salient
                        if e % 2 == 0 {
                            m
                        } else {
                            -m
                        }
                    }
                }
            })
            .collect()
    }

    #[test]
    fn raw_sbr_is_bigger_than_baseline() {
        // 7-bit data → two 4-bit slices = 8 bits: the 1-bit-per-slice sign
        // overhead of Fig. 13's "no compression" bars.
        let values = dense_values(1024);
        let r = CompressionReport::analyze(&values, Precision::BITS7, CompressionMode::None);
        assert!(r.ratio() < 1.0);
        assert_eq!(r.stored_bits, 1024 * 8);
        assert_eq!(r.baseline_bits, 1024 * 7);
    }

    #[test]
    fn hybrid_never_loses_to_rle_or_none() {
        for p in [Precision::BITS7, Precision::BITS10] {
            let values = dense_values(4096);
            let none = CompressionReport::analyze(&values, p, CompressionMode::None);
            let rle = CompressionReport::analyze(&values, p, CompressionMode::Rle);
            let hybrid = CompressionReport::analyze(&values, p, CompressionMode::Hybrid);
            assert!(hybrid.stored_bits <= rle.stored_bits.min(none.stored_bits));
        }
    }

    #[test]
    fn hybrid_beats_baseline_on_near_zero_dense_data() {
        // The headline Fig. 13 effect: dense near-zero data compresses past
        // the raw fixed-point baseline despite the sign-bit overhead.
        let values = dense_values(4096);
        let hybrid = CompressionReport::analyze(&values, Precision::BITS7, CompressionMode::Hybrid);
        assert!(hybrid.ratio() > 1.2, "got {}", hybrid.ratio());
    }

    #[test]
    fn hybrid_leaves_dense_low_plane_raw() {
        // Few exact zeros (ELU-style), lots of near-zero values: the low
        // plane is dense (RLE would grow it) while the high plane is sparse.
        let values: Vec<i32> = (0..4096)
            .map(|i: usize| {
                let e = i.wrapping_mul(40_503) >> 3;
                ((e % 13) as i32) - 6 // in [-6, 6], rarely zero
            })
            .collect();
        let hybrid = CompressionReport::analyze(&values, Precision::BITS7, CompressionMode::Hybrid);
        assert!(!hybrid.compressed_planes[0]);
        assert!(hybrid.compressed_planes[1]);
        // The dense low plane alone would have made plain RLE lose.
        let rle = CompressionReport::analyze(&values, Precision::BITS7, CompressionMode::Rle);
        assert!(hybrid.stored_bits < rle.stored_bits);
    }

    #[test]
    fn all_zero_tensor_compresses_heavily() {
        let values = vec![0i32; 4096];
        let r = CompressionReport::analyze(&values, Precision::BITS7, CompressionMode::Rle);
        assert!(r.ratio() > 10.0);
    }

    #[test]
    fn display_mentions_ratio() {
        let r = CompressionReport::analyze(&[0, 1], Precision::BITS7, CompressionMode::Hybrid);
        assert!(r.to_string().contains("ratio"));
    }
}
