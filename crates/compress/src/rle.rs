//! Run-length encoding of zero sub-words.

use std::fmt;

use sibia_sbr::subword::SUBWORD_LANES;
use sibia_sbr::SubWord;

/// Bits of payload per sub-word (four 4-bit slices).
pub const SUBWORD_BITS: usize = 4 * SUBWORD_LANES;

/// One compressed entry: a non-zero sub-word (or a padding zero word when a
/// zero run exceeds the index range) preceded by `zeros_before` zero words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RleEntry {
    /// Number of zero sub-words preceding `word` (< 2^index_bits).
    pub zeros_before: u16,
    /// The stored sub-word.
    pub word: SubWord,
}

/// The RLE codec with a configurable index width.
///
/// # Example
///
/// ```
/// use sibia_compress::RleCodec;
/// use sibia_sbr::SubWord;
///
/// let words = vec![
///     SubWord([1, 0, 0, 0]),
///     SubWord([0, 0, 0, 0]),
///     SubWord([0, 0, 0, 0]),
///     SubWord([0, 0, -3, 0]),
/// ];
/// let codec = RleCodec::new(4);
/// let stream = codec.compress(&words);
/// assert_eq!(stream.decompress(), words);
/// assert!(stream.size_bits() < 4 * 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RleCodec {
    index_bits: u8,
}

impl RleCodec {
    /// Creates a codec whose zero-run index is `index_bits` wide.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is not in `[1, 15]`.
    pub fn new(index_bits: u8) -> Self {
        assert!(
            (1..=15).contains(&index_bits),
            "index bits must be in [1, 15], got {index_bits}"
        );
        Self { index_bits }
    }

    /// The index width in bits.
    pub fn index_bits(&self) -> u8 {
        self.index_bits
    }

    /// Largest zero run one entry can encode.
    pub fn max_run(&self) -> u16 {
        (1u16 << self.index_bits) - 1
    }

    /// Compresses a sub-word stream.
    pub fn compress(&self, words: &[SubWord]) -> RleStream {
        let mut entries = Vec::new();
        let mut run: u16 = 0;
        for &w in words {
            if w.is_zero() {
                if run == self.max_run() {
                    // Padding entry: a zero word flushes the saturated run.
                    entries.push(RleEntry {
                        zeros_before: run,
                        word: SubWord::default(),
                    });
                    run = 0;
                } else {
                    run += 1;
                }
            } else {
                entries.push(RleEntry {
                    zeros_before: run,
                    word: w,
                });
                run = 0;
            }
        }
        RleStream {
            entries,
            index_bits: self.index_bits,
            original_len: words.len(),
        }
    }
}

impl Default for RleCodec {
    /// The 4-bit index the Sibia DMU uses.
    fn default() -> Self {
        Self::new(4)
    }
}

/// A compressed sub-word stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RleStream {
    entries: Vec<RleEntry>,
    index_bits: u8,
    original_len: usize,
}

impl RleStream {
    /// The compressed entries.
    pub fn entries(&self) -> &[RleEntry] {
        &self.entries
    }

    /// Number of sub-words in the original stream.
    pub fn original_len(&self) -> usize {
        self.original_len
    }

    /// Compressed size: each entry carries a sub-word plus an index.
    pub fn size_bits(&self) -> usize {
        self.entries.len() * (SUBWORD_BITS + usize::from(self.index_bits))
    }

    /// Uncompressed size of the original stream.
    pub fn raw_size_bits(&self) -> usize {
        self.original_len * SUBWORD_BITS
    }

    /// Whether compression actually shrank the stream.
    pub fn is_profitable(&self) -> bool {
        self.size_bits() < self.raw_size_bits()
    }

    /// Reconstructs the original sub-word stream.
    pub fn decompress(&self) -> Vec<SubWord> {
        let mut out = Vec::with_capacity(self.original_len);
        for e in &self.entries {
            for _ in 0..e.zeros_before {
                out.push(SubWord::default());
            }
            out.push(e.word);
        }
        // Trailing zeros are implicit.
        while out.len() < self.original_len {
            out.push(SubWord::default());
        }
        debug_assert_eq!(out.len(), self.original_len);
        out
    }
}

impl RleStream {
    /// Serializes the stream to the exact bit layout the DMU writes:
    /// per entry, `index_bits` of zero-run count followed by the 16-bit
    /// packed sub-word, bit-packed with no padding except the final byte.
    pub fn serialize(&self) -> Vec<u8> {
        let mut w = BitWriter::default();
        for e in &self.entries {
            w.push(u32::from(e.zeros_before), u32::from(self.index_bits));
            w.push(u32::from(e.word.packed()), 16);
        }
        w.finish()
    }

    /// Parses a serialized stream back (requires the original sub-word
    /// count and index width, which the DMU tracks per tile).
    ///
    /// # Panics
    ///
    /// Panics if the byte stream is shorter than the encoded entries
    /// require or decodes to more sub-words than `original_len`.
    pub fn deserialize(bytes: &[u8], index_bits: u8, original_len: usize) -> Self {
        let mut r = BitReader::new(bytes);
        let entry_bits = usize::from(index_bits) + 16;
        let mut entries = Vec::new();
        let mut decoded = 0usize;
        while r.remaining() >= entry_bits && decoded < original_len {
            let zeros_before = r.pull(u32::from(index_bits)) as u16;
            let packed = r.pull(16) as u16;
            let mut word = [0i8; 4];
            for (i, slot) in word.iter_mut().enumerate() {
                let nibble = ((packed >> (4 * i)) & 0xF) as u8;
                // Sign-extend the 4-bit slice.
                *slot = ((nibble << 4) as i8) >> 4;
            }
            decoded += usize::from(zeros_before) + 1;
            assert!(
                decoded <= original_len,
                "stream decodes past the original length"
            );
            entries.push(RleEntry {
                zeros_before,
                word: SubWord(word),
            });
        }
        Self {
            entries,
            index_bits,
            original_len,
        }
    }
}

/// MSB-first bit writer.
#[derive(Debug, Default)]
struct BitWriter {
    bytes: Vec<u8>,
    bit: u8,
}

impl BitWriter {
    fn push(&mut self, value: u32, bits: u32) {
        for i in (0..bits).rev() {
            if self.bit == 0 {
                self.bytes.push(0);
            }
            let b = (value >> i) & 1;
            let last = self.bytes.last_mut().expect("pushed above");
            *last |= (b as u8) << (7 - self.bit);
            self.bit = (self.bit + 1) % 8;
        }
    }

    fn finish(self) -> Vec<u8> {
        self.bytes
    }
}

/// MSB-first bit reader.
#[derive(Debug)]
struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() * 8 - self.pos
    }

    fn pull(&mut self, bits: u32) -> u32 {
        let mut v = 0u32;
        for _ in 0..bits {
            let byte = self.bytes[self.pos / 8];
            let bit = (byte >> (7 - self.pos % 8)) & 1;
            v = (v << 1) | u32::from(bit);
            self.pos += 1;
        }
        v
    }
}

impl fmt::Display for RleStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rle({} entries / {} words, {} -> {} bits)",
            self.entries.len(),
            self.original_len,
            self.raw_size_bits(),
            self.size_bits()
        )
    }
}

/// Analytic RLE size for a generic symbol stream (used for the paper's
/// Fig. 3b comparison of 4-bit vs 8-bit compression): each non-zero symbol
/// costs `symbol_bits + index_bits`, saturated zero runs cost one padding
/// entry each.
pub fn rle_size_bits(zero_flags: &[bool], symbol_bits: usize, index_bits: u8) -> usize {
    let max_run = (1usize << index_bits) - 1;
    let mut entries = 0usize;
    let mut run = 0usize;
    for &z in zero_flags {
        if z {
            if run == max_run {
                entries += 1; // padding entry
                run = 0;
            } else {
                run += 1;
            }
        } else {
            entries += 1;
            run = 0;
        }
    }
    entries * (symbol_bits + usize::from(index_bits))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(a: i8) -> SubWord {
        SubWord([a, 0, 0, 0])
    }

    #[test]
    fn round_trip_simple() {
        let words = vec![w(1), w(0), w(0), w(2), w(0)];
        let s = RleCodec::default().compress(&words);
        assert_eq!(s.decompress(), words);
    }

    #[test]
    fn all_zero_stream_compresses_to_padding_only() {
        let words = vec![SubWord::default(); 100];
        let s = RleCodec::new(4).compress(&words);
        // Runs of 15 + flush entries: 100 zeros → 6 padding entries
        // (15+1)*6 = 96 ≤ 100 < 112.
        assert_eq!(s.entries().len(), 6);
        assert_eq!(s.decompress(), words);
        assert!(s.is_profitable());
    }

    #[test]
    fn dense_stream_grows() {
        let words: Vec<SubWord> = (0..64).map(|i| w((i % 7 + 1) as i8)).collect();
        let s = RleCodec::default().compress(&words);
        assert!(!s.is_profitable());
        assert_eq!(s.size_bits(), 64 * 20);
        assert_eq!(s.decompress(), words);
    }

    #[test]
    fn long_runs_insert_padding_entries() {
        let mut words = vec![SubWord::default(); 20];
        words.push(w(5));
        let s = RleCodec::new(4).compress(&words);
        // 20 zeros = one saturated run (15) + padding + 4 more zeros + data.
        assert_eq!(s.entries().len(), 2);
        assert_eq!(s.entries()[0].zeros_before, 15);
        assert_eq!(s.entries()[1].zeros_before, 4);
        assert_eq!(s.decompress(), words);
    }

    #[test]
    fn trailing_zeros_are_implicit() {
        let words = vec![w(3), SubWord::default(), SubWord::default()];
        let s = RleCodec::default().compress(&words);
        assert_eq!(s.entries().len(), 1);
        assert_eq!(s.decompress(), words);
    }

    #[test]
    fn narrow_index_still_round_trips() {
        let mut words = vec![SubWord::default(); 9];
        words.push(w(1));
        for bits in 1..=8 {
            let s = RleCodec::new(bits).compress(&words);
            assert_eq!(s.decompress(), words, "index_bits={bits}");
        }
    }

    #[test]
    fn fig3b_four_bit_compression_overhead() {
        // Paper Fig. 3b: at 28.3 % value sparsity, compressing 4-bit slices
        // (two per 8-bit value, zeros only where the value's slice is zero)
        // yields a larger stream than compressing the 8-bit values directly,
        // because the per-symbol index is amortized over fewer payload bits.
        let n = 10_000usize;
        // Value-level zero pattern at 28.3 %.
        let zero_value: Vec<bool> = (0..n).map(|i| (i * 283) % 1000 < 283).collect();
        let eight_bit = rle_size_bits(&zero_value, 8, 4);
        // Slice-level: a zero value gives two zero slices; non-zero values
        // modelled with one zero high slice for 40 % of them (positive
        // near-zero data).
        let mut zero_slices = Vec::with_capacity(2 * n);
        for (i, &z) in zero_value.iter().enumerate() {
            zero_slices.push(z);
            zero_slices.push(z || i % 5 < 2);
        }
        let four_bit = rle_size_bits(&zero_slices, 4, 4);
        let overhead = four_bit as f64 / eight_bit as f64;
        assert!(
            overhead > 1.0,
            "4-bit compression should be larger, got {overhead}"
        );
        assert!(
            overhead < 1.6,
            "overhead should be moderate, got {overhead}"
        );
    }

    #[test]
    #[should_panic(expected = "index bits")]
    fn codec_validates_index_width() {
        let _ = RleCodec::new(0);
    }

    #[test]
    fn serialization_round_trips() {
        let words = vec![
            SubWord([1, -2, 3, -4]),
            SubWord::default(),
            SubWord::default(),
            SubWord([7, 0, -7, 0]),
            SubWord::default(),
        ];
        for bits in [3u8, 4, 8] {
            let stream = RleCodec::new(bits).compress(&words);
            let bytes = stream.serialize();
            // Byte size matches the bit accounting, rounded up.
            assert_eq!(bytes.len(), stream.size_bits().div_ceil(8));
            let back = RleStream::deserialize(&bytes, bits, words.len());
            assert_eq!(back.decompress(), words, "index_bits={bits}");
        }
    }

    #[test]
    fn serialization_handles_saturated_runs() {
        let mut words = vec![SubWord::default(); 40];
        words.push(SubWord([-1, 2, -3, 4]));
        let stream = RleCodec::new(4).compress(&words);
        let bytes = stream.serialize();
        let back = RleStream::deserialize(&bytes, 4, words.len());
        assert_eq!(back.decompress(), words);
    }

    #[test]
    fn empty_stream_serializes_to_nothing() {
        let stream = RleCodec::default().compress(&[]);
        assert!(stream.serialize().is_empty());
        let back = RleStream::deserialize(&[], 4, 0);
        assert_eq!(back.decompress(), Vec::<SubWord>::new());
    }

    #[test]
    fn packed_plane_rle_count_matches_codec() {
        // The simulator's SWAR fast path must stay bit-exact with this
        // codec: same entry count, same size accounting, for every index
        // width and sparsity pattern.
        use sibia_sbr::packed::PackedPlane;
        use sibia_sbr::subword::to_subwords;
        let mut x = 0xDEADBEEFu64;
        for len in [0usize, 1, 4, 15, 16, 17, 64, 257, 1000] {
            for zeros_in_10 in [0u64, 3, 8, 9, 10] {
                let mut plane = Vec::with_capacity(len);
                for _ in 0..len {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let zero = (x >> 20) % 10 < zeros_in_10;
                    plane.push(if zero { 0 } else { ((x >> 40) % 7 + 1) as i8 });
                }
                let packed = PackedPlane::pack(&plane);
                for bits in [1u8, 2, 4, 8] {
                    let stream = RleCodec::new(bits).compress(&to_subwords(&plane));
                    assert_eq!(
                        packed.rle_entry_count(bits),
                        stream.entries().len(),
                        "len={len} zeros={zeros_in_10} bits={bits}"
                    );
                    assert_eq!(packed.rle_size_bits(bits), stream.size_bits());
                }
            }
        }
    }
}
