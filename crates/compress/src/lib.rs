//! Zero compression for the Sibia reproduction.
//!
//! Implements the run-length encoding (RLE) unit of the data management
//! unit: non-zero 16-bit sub-words (four adjacent 4-bit slices) are stored
//! together with the count of zero sub-words preceding them, so the matrix
//! processing unit can both *skip* zero sub-words and *fetch* compressed
//! streams (paper §II-B, Fig. 5b).
//!
//! Also implements the paper's two compression policies:
//!
//! * plain RLE over every slice plane (Fig. 13 "RLE compression"),
//! * **hybrid compression** — dense low-order planes are stored raw because
//!   compressing them *grows* the stream (Fig. 13 "hybrid compression",
//!   §II-E).

pub mod hybrid;
pub mod rle;

pub use hybrid::{CompressionMode, CompressionReport};
pub use rle::{RleCodec, RleStream};
