//! Fleet integration: live backends, byte-identity, and failover.
//!
//! The acceptance property pinned here: a fleet sweep's merged document is
//! **byte-identical** to `grid_to_json` of a direct `simulate_grid` call —
//! for 1, 2, and 4 backends, when a backend answers `overloaded`, when a
//! backend drops every connection mid-request, and when a real backend is
//! shut down mid-sweep. The crash-backend test additionally asserts
//! `fleet.failover_total >= 1` (and the per-sweep failover count), the
//! overload test pins the retry path, and the store test shows re-runs are
//! warm hits.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::time::Duration;

use sibia_fleet::{Fleet, FleetConfig, FleetError};
use sibia_obs::registry;
use sibia_serve::json::Json;
use sibia_serve::protocol::{arch_by_name, error_response, grid_to_json, ErrorCode, ServeError};
use sibia_serve::server::{ServeConfig, Server};
use sibia_serve::Client;
use sibia_sim::{ParallelEngine, Simulator};

const ARCHS: [&str; 2] = ["sibia", "bitfusion"];
const NETWORKS: [&str; 1] = ["dgcnn"];
const SEEDS: [u64; 3] = [1, 2, 3];
const SAMPLE_CAP: usize = 512;

fn start_server() -> Server {
    Server::start(ServeConfig {
        workers: 2,
        engine_threads: 1,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port")
}

fn owned(names: &[&str]) -> Vec<String> {
    names.iter().map(|s| s.to_string()).collect()
}

/// The ground truth: the direct library grid, serialized canonically.
fn direct_grid_bytes(seeds: &[u64]) -> String {
    let specs: Vec<_> = ARCHS.iter().map(|a| arch_by_name(a).unwrap()).collect();
    let networks: Vec<_> = NETWORKS
        .iter()
        .map(|n| sibia_nn::zoo::by_name(n).unwrap())
        .collect();
    let mut sim = Simulator::new(seeds[0]);
    sim.sample_cap = SAMPLE_CAP;
    let grid = ParallelEngine::with_threads(1).simulate_grid(&sim, &specs, &networks, seeds);
    grid_to_json(&grid).to_string()
}

fn fleet_config(endpoints: Vec<String>) -> FleetConfig {
    let mut config = FleetConfig::new(endpoints);
    config.backoff.base = Duration::from_millis(1);
    config.backoff.cap = Duration::from_millis(20);
    // Keep the prober out of the deterministic tests' way; the breakers
    // are exercised through request outcomes.
    config.probe_interval = Duration::from_secs(30);
    config
}

fn fleet_sweep_bytes(fleet: &Fleet, seeds: &[u64]) -> String {
    fleet
        .sweep(&owned(&ARCHS), &owned(&NETWORKS), seeds, Some(SAMPLE_CAP))
        .expect("fleet sweep")
        .to_string()
}

#[test]
fn merged_sweep_is_byte_identical_for_1_2_and_4_backends() {
    let servers: Vec<Server> = (0..4).map(|_| start_server()).collect();
    let endpoints: Vec<String> = servers.iter().map(|s| s.addr().to_string()).collect();
    let expected = direct_grid_bytes(&SEEDS);

    for n in [1usize, 2, 4] {
        let fleet = Fleet::new(fleet_config(endpoints[..n].to_vec())).unwrap();
        let (json, stats) = fleet
            .sweep_with_stats(&owned(&ARCHS), &owned(&NETWORKS), &SEEDS, Some(SAMPLE_CAP))
            .expect("fleet sweep");
        assert_eq!(
            json.to_string(),
            expected,
            "{n}-backend merge must be byte-identical to the direct grid"
        );
        assert_eq!(stats.cells, ARCHS.len() * NETWORKS.len() * SEEDS.len());
        assert_eq!(stats.backends, n);
        assert_eq!(
            stats.per_backend_cells.iter().sum::<u64>(),
            stats.cells as u64
        );
        if n > 1 {
            assert!(
                stats.per_backend_cells.iter().filter(|&&c| c > 0).count() > 1,
                "sharding must spread cells: {:?}",
                stats.per_backend_cells
            );
        }
    }
    for s in servers {
        s.shutdown();
    }
}

#[test]
fn tiled_sweep_is_byte_identical_and_status_reports_progress() {
    let server = start_server();
    let status_path = {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "sibia-fleet-test-status-{}.json",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    };
    let expected = direct_grid_bytes(&SEEDS);

    let mut config = fleet_config(vec![server.addr().to_string()]);
    config.tile = Some(7);
    config.status_path = Some(status_path.clone());
    let fleet = Fleet::new(config).unwrap();
    assert_eq!(
        fleet_sweep_bytes(&fleet, &SEEDS),
        expected,
        "a tile-forwarding sweep must keep the merged bytes identical"
    );

    // The final status snapshot carries the sweep's progress object:
    // every cell done, and the most recently completed cell named.
    let raw = std::fs::read_to_string(&status_path).expect("status snapshot written");
    let status = Json::parse(raw.trim()).expect("status JSON");
    let progress = status.get("progress").expect("progress object");
    let total = (ARCHS.len() * NETWORKS.len() * SEEDS.len()) as i64;
    assert_eq!(progress.get("done"), Some(&Json::Int(total)));
    assert_eq!(progress.get("total"), Some(&Json::Int(total)));
    let cell = progress
        .get("cell")
        .and_then(|c| c.as_str())
        .expect("cell string");
    assert_eq!(
        cell.split('/').count(),
        3,
        "cell is arch/network/seed: {cell}"
    );
    let _ = std::fs::remove_file(&status_path);
    server.shutdown();
}

/// A backend that accepts connections and drops each one after reading a
/// single line — every request dies mid-flight, deterministically, like a
/// process being SIGKILLed between read and reply.
fn spawn_crash_backend() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind crash backend");
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        for stream in listener.incoming().flatten() {
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            let _ = reader.read_line(&mut line);
            // Dropping the stream here cuts the connection with no reply.
        }
    });
    addr
}

#[test]
fn crashing_backend_fails_over_and_keeps_bytes_identical() {
    let healthy = start_server();
    let crash_addr = spawn_crash_backend();
    let endpoints = vec![healthy.addr().to_string(), crash_addr.to_string()];

    // Seeds chosen so the FNV shard homes at least one cell on each
    // backend (pinned below) — the crash backend's cells MUST fail over.
    let seeds: Vec<u64> = (1..=6).collect();
    let homes: std::collections::BTreeSet<usize> = ARCHS
        .iter()
        .flat_map(|a| seeds.iter().map(move |&s| (a, s)))
        .map(|(a, s)| sibia_fleet::backend_for_cell(a, NETWORKS[0], s, 2))
        .collect();
    assert_eq!(homes.len(), 2, "grid must span both backends");

    let failovers_before = registry().counter("fleet.failover_total").get();
    let fleet = Fleet::new(fleet_config(endpoints)).unwrap();
    let (json, stats) = fleet
        .sweep_with_stats(&owned(&ARCHS), &owned(&NETWORKS), &seeds, Some(SAMPLE_CAP))
        .expect("sweep must survive the crashing backend");

    assert_eq!(json.to_string(), direct_grid_bytes(&seeds));
    assert!(
        stats.failovers >= 1,
        "cells homed on the crash backend must fail over (stats: {stats:?})"
    );
    assert!(
        registry().counter("fleet.failover_total").get() - failovers_before >= 1,
        "fleet.failover_total must record the failover"
    );
    // Every completed cell was computed by the healthy backend.
    assert_eq!(stats.per_backend_cells[0], stats.cells as u64);
    assert_eq!(stats.per_backend_cells[1], 0);
    healthy.shutdown();
}

/// A backend that answers every request with a well-formed `overloaded`
/// error (echoing the request id, as the client requires), forever.
fn spawn_overloaded_backend() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind overloaded backend");
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        for stream in listener.incoming().flatten() {
            let mut writer = stream.try_clone().expect("clone stream");
            let mut reader = BufReader::new(stream);
            loop {
                let mut line = String::new();
                match reader.read_line(&mut line) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {}
                }
                let id = Json::parse(line.trim_end())
                    .ok()
                    .and_then(|v| v.get("id").cloned());
                let mut reply = error_response(
                    id.as_ref(),
                    None,
                    &ServeError::new(ErrorCode::Overloaded, "synthetic overload"),
                )
                .to_string();
                reply.push('\n');
                if writer.write_all(reply.as_bytes()).is_err() {
                    break;
                }
            }
        }
    });
    addr
}

#[test]
fn overloaded_backend_is_retried_then_failed_over_with_identical_bytes() {
    let healthy = start_server();
    let busy_addr = spawn_overloaded_backend();
    let endpoints = vec![healthy.addr().to_string(), busy_addr.to_string()];

    let seeds: Vec<u64> = (1..=6).collect();
    let fleet = Fleet::new(fleet_config(endpoints)).unwrap();
    let (json, stats) = fleet
        .sweep_with_stats(&owned(&ARCHS), &owned(&NETWORKS), &seeds, Some(SAMPLE_CAP))
        .expect("sweep must route around the overloaded backend");

    assert_eq!(json.to_string(), direct_grid_bytes(&seeds));
    assert!(
        stats.retries >= 1,
        "overloaded answers must be retried on the same backend first (stats: {stats:?})"
    );
    assert!(
        stats.failovers >= 1,
        "an always-overloaded backend must eventually lose its cells"
    );
    assert_eq!(stats.per_backend_cells[0], stats.cells as u64);
    assert!(registry().counter("fleet.overloaded_total").get() >= 1);
    healthy.shutdown();
}

#[test]
fn real_backend_shut_down_mid_sweep_keeps_bytes_identical() {
    let survivor = start_server();
    let victim = start_server();
    let endpoints = vec![survivor.addr().to_string(), victim.addr().to_string()];

    // A grid big enough to still be in flight when the victim goes down.
    let seeds: Vec<u64> = (1..=10).collect();
    let fleet = Fleet::new(fleet_config(endpoints)).unwrap();

    let bytes = std::thread::scope(|s| {
        let fleet = &fleet;
        let seeds_ref = &seeds;
        let sweep = s.spawn(move || fleet_sweep_bytes(fleet, seeds_ref));
        std::thread::sleep(Duration::from_millis(150));
        victim.shutdown();
        sweep.join().expect("sweep thread")
    });
    assert_eq!(bytes, direct_grid_bytes(&seeds));
    survivor.shutdown();
}

#[test]
fn store_backed_backends_serve_the_second_sweep_warm() {
    fn temp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sibia-fleet-store-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        p
    }
    // One store directory per backend: the store is single-process.
    let dirs = [temp_dir("b0"), temp_dir("b1")];
    let servers: Vec<Server> = dirs
        .iter()
        .map(|d| {
            Server::start(ServeConfig {
                workers: 2,
                engine_threads: 1,
                store_dir: Some(d.clone()),
                ..ServeConfig::default()
            })
            .expect("bind")
        })
        .collect();
    let endpoints: Vec<String> = servers.iter().map(|s| s.addr().to_string()).collect();

    let fleet = Fleet::new(fleet_config(endpoints)).unwrap();
    let cold = fleet_sweep_bytes(&fleet, &SEEDS);
    let warm = fleet_sweep_bytes(&fleet, &SEEDS);
    assert_eq!(cold, warm, "warm sweep must be byte-identical to cold");
    assert_eq!(cold, direct_grid_bytes(&SEEDS));

    // The deterministic shard sends each cell to the same backend both
    // times, so the second sweep is served from the stores.
    let mut total_hits = 0;
    for server in &servers {
        let mut client = Client::connect(server.addr()).expect("connect");
        let metrics = client.metrics().expect("metrics");
        if let Some(store) = metrics.get("store") {
            total_hits += store.get("hits").and_then(|v| v.as_u64()).unwrap_or(0);
        }
    }
    assert!(
        total_hits >= 1,
        "the warm sweep must hit the backends' stores"
    );
    for s in servers {
        s.shutdown();
    }
    for d in &dirs {
        let _ = std::fs::remove_dir_all(d);
    }
}

#[test]
fn unknown_arch_aborts_the_sweep_with_a_typed_rejection() {
    let server = start_server();
    let fleet = Fleet::new(fleet_config(vec![server.addr().to_string()])).unwrap();
    match fleet.sweep(
        &["not-an-arch".to_string()],
        &owned(&NETWORKS),
        &[1],
        Some(SAMPLE_CAP),
    ) {
        Err(FleetError::Rejected(e)) => assert_eq!(e.code, ErrorCode::UnknownArch),
        other => panic!("expected Rejected(unknown_arch), got {other:?}"),
    }
    server.shutdown();
}

/// Replays a seeded [`ChaosPlan`] — kill + join + stalls/heals — against
/// live backends while a sweep runs, and pins the merged output
/// byte-identical to the direct grid. Three seeds, three different
/// schedules; "chaos" never means "flaky" because the plan is a pure
/// function of the seed.
#[test]
fn seeded_chaos_schedules_keep_bytes_identical() {
    use sibia_fleet::{ChaosAction, ChaosPlan, SlowProxy};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;
    use std::time::Instant;

    let seeds: Vec<u64> = (1..=12).collect();
    let expected = direct_grid_bytes(&seeds);
    for chaos_seed in [7u64, 11, 13] {
        let servers: Vec<Mutex<Option<Server>>> =
            (0..3).map(|_| Mutex::new(Some(start_server()))).collect();
        let spare = start_server();
        let proxies: Vec<SlowProxy> = servers
            .iter()
            .map(|s| {
                SlowProxy::start(s.lock().unwrap().as_ref().unwrap().addr()).expect("start proxy")
            })
            .collect();
        // A small base delay stretches the sweep so the plan's events have
        // a window to land in; a loaded machine only widens it.
        for p in &proxies {
            p.set_delay(Duration::from_millis(25));
        }
        let endpoints: Vec<String> = proxies.iter().map(|p| p.addr().to_string()).collect();
        let plan = ChaosPlan::generate(chaos_seed, 3, Duration::from_millis(500));
        let fleet = Fleet::new(fleet_config(endpoints)).unwrap();

        let done = AtomicBool::new(false);
        let bytes = std::thread::scope(|s| {
            let sweep = s.spawn(|| {
                let bytes = fleet_sweep_bytes(&fleet, &seeds);
                done.store(true, Ordering::SeqCst);
                bytes
            });
            s.spawn(|| {
                let started = Instant::now();
                for event in &plan.events {
                    while started.elapsed() < event.at {
                        if done.load(Ordering::SeqCst) {
                            return;
                        }
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    if done.load(Ordering::SeqCst) {
                        return;
                    }
                    match event.action {
                        ChaosAction::Kill(i) => {
                            if let Some(server) = servers[i].lock().unwrap().take() {
                                server.shutdown();
                            }
                        }
                        ChaosAction::Join => fleet.join(spare.addr().to_string()),
                        ChaosAction::Stall(i, delay) => proxies[i].set_delay(delay),
                        ChaosAction::Heal(i) => proxies[i].set_delay(Duration::ZERO),
                    }
                }
            });
            sweep.join().expect("sweep thread")
        });
        assert_eq!(
            bytes, expected,
            "chaos seed {chaos_seed} must not change the merged bytes"
        );
        spare.shutdown();
        for s in &servers {
            if let Some(server) = s.lock().unwrap().take() {
                server.shutdown();
            }
        }
        for p in proxies {
            p.stop();
        }
    }
}

/// A member joined mid-sweep (planned event) must actually take work —
/// stealing pulls cells to it — and the merge must not notice.
#[test]
fn planned_join_steals_work_for_the_new_member() {
    use sibia_fleet::{MembershipAction, PlannedEvent, SlowProxy};

    let s0 = start_server();
    let s1 = start_server();
    let spare = start_server();
    let p0 = SlowProxy::start(s0.addr()).expect("proxy");
    let p1 = SlowProxy::start(s1.addr()).expect("proxy");
    // 24 cells at ≥40 ms each over 4 workers: the sweep cannot finish
    // before the 100 ms join, however fast the machine.
    p0.set_delay(Duration::from_millis(40));
    p1.set_delay(Duration::from_millis(40));
    let seeds: Vec<u64> = (1..=12).collect();
    let mut config = fleet_config(vec![p0.addr().to_string(), p1.addr().to_string()]);
    config.membership_plan = vec![PlannedEvent {
        at: Duration::from_millis(100),
        action: MembershipAction::Join(spare.addr().to_string()),
    }];
    let fleet = Fleet::new(config).unwrap();
    let (json, stats) = fleet
        .sweep_with_stats(&owned(&ARCHS), &owned(&NETWORKS), &seeds, Some(SAMPLE_CAP))
        .expect("sweep with mid-sweep join");

    assert_eq!(json.to_string(), direct_grid_bytes(&seeds));
    assert_eq!(stats.joins, 1, "stats: {stats:?}");
    assert_eq!(stats.backends, 3, "the joined member gets a roster slot");
    assert!(
        stats.per_backend_cells[2] > 0,
        "the joined member must complete stolen cells: {stats:?}"
    );
    assert!(stats.steals >= 1, "joins take work by stealing: {stats:?}");
    assert_eq!(stats.membership[2].0, spare.addr().to_string());
    assert_eq!(stats.membership[2].1, "active");
    s0.shutdown();
    s1.shutdown();
    spare.shutdown();
    p0.stop();
    p1.stop();
}

/// A member drained out mid-sweep (planned leave) hands its queued cells
/// to the survivors and ends the sweep out of rotation.
#[test]
fn planned_leave_reshards_the_queue_and_drains_out() {
    use sibia_fleet::{MembershipAction, PlannedEvent, SlowProxy};

    let s0 = start_server();
    let s1 = start_server();
    let p0 = SlowProxy::start(s0.addr()).expect("proxy");
    let p1 = SlowProxy::start(s1.addr()).expect("proxy");
    p0.set_delay(Duration::from_millis(40));
    p1.set_delay(Duration::from_millis(40));
    let seeds: Vec<u64> = (1..=12).collect();
    let mut config = fleet_config(vec![p0.addr().to_string(), p1.addr().to_string()]);
    // Stealing off so the departing member's queue is still populated at
    // the 50 ms mark and the reshard path itself is what gets exercised.
    config.steal = false;
    config.membership_plan = vec![PlannedEvent {
        at: Duration::from_millis(50),
        action: MembershipAction::Leave(p0.addr().to_string()),
    }];
    let fleet = Fleet::new(config).unwrap();
    let (json, stats) = fleet
        .sweep_with_stats(&owned(&ARCHS), &owned(&NETWORKS), &seeds, Some(SAMPLE_CAP))
        .expect("sweep with mid-sweep leave");

    assert_eq!(json.to_string(), direct_grid_bytes(&seeds));
    assert_eq!(stats.leaves, 1, "stats: {stats:?}");
    assert!(
        stats.resharded_cells >= 1,
        "the departing member's queue must move to survivors: {stats:?}"
    );
    assert_ne!(
        stats.membership[0].1, "active",
        "a departed member must be out of rotation: {stats:?}"
    );
    s0.shutdown();
    s1.shutdown();
    p0.stop();
    p1.stop();
}

/// A stalled backend's in-flight cells are rescued by hedged dispatch:
/// the duplicate wins on the healthy backend, the straggling copy is
/// cancelled, and the straggler is never blamed (its breaker stays shut,
/// its membership stays Active).
#[test]
fn hedged_dispatch_rescues_a_stalled_backend() {
    use sibia_fleet::SlowProxy;

    let stalled = start_server();
    let healthy = start_server();
    let proxy = SlowProxy::start(stalled.addr()).expect("proxy");
    proxy.set_delay(Duration::from_millis(400));
    let seeds: Vec<u64> = (1..=6).collect();
    let mut config = fleet_config(vec![proxy.addr().to_string(), healthy.addr().to_string()]);
    // One connection per backend and no stealing: the only way past the
    // straggler is the hedge path. Fixed 100 ms deadline from the first
    // dispatch (what the CLI's --hedge-ms compiles to).
    config.connections_per_backend = 1;
    config.steal = false;
    config.hedge.min_completions = 0;
    config.hedge.min_deadline = Duration::from_millis(100);
    let fleet = Fleet::new(config).unwrap();
    let (json, stats) = fleet
        .sweep_with_stats(&owned(&ARCHS), &owned(&NETWORKS), &seeds, Some(SAMPLE_CAP))
        .expect("sweep with a stalled backend");

    assert_eq!(json.to_string(), direct_grid_bytes(&seeds));
    assert!(stats.hedges >= 1, "overdue cells must be hedged: {stats:?}");
    assert!(
        stats.hedge_wins >= 1,
        "the duplicate must win at least one race: {stats:?}"
    );
    assert_eq!(
        stats.membership[0].1, "active",
        "cancelled losers must not feed the straggler's breaker: {stats:?}"
    );
    assert_eq!(
        stats.per_backend_cells.iter().sum::<u64>(),
        stats.cells as u64
    );
    assert!(registry().counter("fleet.hedge_total").get() >= 1);
    stalled.shutdown();
    healthy.shutdown();
    proxy.stop();
}
