//! Property test for hedge deduplication: racing duplicate completions
//! never double-write the store and never perturb merge order.
//!
//! The completion board is the single dedup point for hedged dispatch —
//! every store write-back downstream is gated on [`Completion::Win`]. This
//! suite races two identical "twins" per cell with SynthRng-jittered
//! timing (deterministic schedule per seed, genuinely concurrent threads)
//! and pins the three invariants the byte-identity argument rests on:
//!
//! 1. exactly one twin per cell wins; the other is counted as a duplicate;
//! 2. the backing store receives exactly one `put` per cell — duplicate
//!    completions never double-write, however the race interleaves;
//! 3. the merged result order is the flat row-major grid order, untouched
//!    by which twin won or when.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use sibia_fleet::control::{Completion, CompletionBoard};
use sibia_nn::rng::SynthRng;
use sibia_obs::Json;
use sibia_store::{Store, StoreKey};

const CELLS: usize = 48;

/// The canonical payload both twins of `flat` compute — identical by
/// construction, as the determinism contract guarantees for real cells.
fn cell_value(flat: usize) -> Json {
    Json::obj(vec![
        ("cell", Json::from(flat)),
        (
            "payload",
            Json::from((flat as u64).wrapping_mul(0x9E37_79B9)),
        ),
    ])
}

fn cell_key(flat: usize) -> StoreKey {
    StoreKey::new(
        "test.cell",
        format!("net{flat}"),
        flat as u64,
        "sbr",
        "dedup",
    )
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("sibia-hedge-dedup-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

#[test]
fn racing_twins_write_the_store_once_and_keep_merge_order() {
    for race_seed in [3u64, 17, 901] {
        let dir = temp_dir(&race_seed.to_string());
        let store = Store::open(&dir).expect("open store");
        let board = CompletionBoard::new(CELLS);
        let wins = AtomicU64::new(0);
        let duplicates_seen = AtomicU64::new(0);

        std::thread::scope(|s| {
            for flat in 0..CELLS {
                for twin in 0..2u64 {
                    let board = &board;
                    let store = &store;
                    let wins = &wins;
                    let duplicates_seen = &duplicates_seen;
                    s.spawn(move || {
                        // Deterministic per-(seed, cell, twin) jitter makes
                        // the interleaving different every seed while the
                        // schedule itself replays exactly.
                        let mut rng = SynthRng::for_stream(race_seed, (flat as u64) << 1 | twin);
                        std::thread::sleep(Duration::from_micros(rng.next_u64() % 3000));
                        let latency = Duration::from_micros(100 + rng.next_u64() % 900);
                        match board.complete(flat, cell_value(flat), latency) {
                            Completion::Win => {
                                // The write-back is gated on winning — this
                                // is the exact pattern the coordinator and
                                // the serve store path use.
                                store
                                    .put(&cell_key(flat), &cell_value(flat))
                                    .expect("store put");
                                wins.fetch_add(1, Ordering::SeqCst);
                            }
                            Completion::Duplicate => {
                                duplicates_seen.fetch_add(1, Ordering::SeqCst);
                            }
                        }
                    });
                }
            }
        });

        assert_eq!(
            wins.load(Ordering::SeqCst),
            CELLS as u64,
            "seed {race_seed}: exactly one twin per cell must win"
        );
        assert_eq!(
            duplicates_seen.load(Ordering::SeqCst),
            CELLS as u64,
            "seed {race_seed}: the losing twin must be deduped, not dropped"
        );
        assert_eq!(
            board.duplicates.load(Ordering::SeqCst),
            CELLS as u64,
            "seed {race_seed}: the board must count every duplicate"
        );
        assert_eq!(board.remaining(), 0);

        // One put per cell: duplicate completions never reached the store.
        let stats = store.stats();
        assert_eq!(
            stats.puts, CELLS as u64,
            "seed {race_seed}: the store must see exactly one put per cell"
        );
        for flat in 0..CELLS {
            assert_eq!(
                store.get(&cell_key(flat)),
                Some(cell_value(flat)),
                "seed {race_seed}: cell {flat} must be stored with winning bytes"
            );
        }

        // Merge order is flat row-major order, independent of race outcome.
        let results = board.into_results();
        assert_eq!(results.len(), CELLS);
        for (flat, result) in results.iter().enumerate() {
            assert_eq!(
                result.to_string(),
                cell_value(flat).to_string(),
                "seed {race_seed}: merge slot {flat} must hold cell {flat}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
