//! Bounded exponential backoff with deterministic jitter.
//!
//! Retry delays grow as `base * 2^attempt`, capped at `cap`, with
//! *equal jitter*: the delay is `exp/2 + uniform(0, exp/2)`, so retries
//! never collapse to zero (which would hammer an overloaded backend) and
//! never exceed the exponential envelope.
//!
//! The jitter is **deterministic**: it is drawn from a [`SynthRng`] stream
//! keyed by `(policy seed, cell, attempt)` — the same in-repo xoshiro256++
//! generator the tensor synthesizer uses, not `rand` — so a coordinator run
//! is exactly reproducible (the retry *schedule* is a pure function of the
//! config and the observed failures), while distinct cells still spread
//! their retries instead of thundering in lockstep.

use std::time::Duration;

use sibia_nn::rng::SynthRng;

/// The retry delay policy: exponential envelope plus deterministic jitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// First-retry envelope.
    pub base: Duration,
    /// Upper bound on the envelope regardless of attempt count.
    pub cap: Duration,
    /// Jitter stream seed; two policies with the same seed produce the same
    /// schedule.
    pub seed: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        Self {
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
            seed: 0xF1EE7,
        }
    }
}

impl BackoffPolicy {
    /// The delay before retry number `attempt` (0-based) of `cell`.
    ///
    /// Pure function of `(self, cell, attempt)`: the jitter comes from an
    /// independent `SynthRng` stream per `(cell, attempt)`, so callers need
    /// no mutable generator state and concurrent cells cannot perturb each
    /// other's schedules.
    pub fn delay(&self, cell: u64, attempt: u32) -> Duration {
        let base_us = self.base.as_micros().min(u128::from(u64::MAX)) as u64;
        let cap_us = self.cap.as_micros().min(u128::from(u64::MAX)) as u64;
        let exp_us = base_us
            .saturating_mul(1u64 << attempt.min(20))
            .min(cap_us)
            .max(2);
        let mut rng = SynthRng::for_stream(
            self.seed,
            cell.wrapping_mul(1021).wrapping_add(u64::from(attempt)),
        );
        let half = exp_us / 2;
        Duration::from_micros(half + (rng.unit_f64() * half as f64) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_are_deterministic() {
        let p = BackoffPolicy::default();
        for cell in 0..8 {
            for attempt in 0..6 {
                assert_eq!(p.delay(cell, attempt), p.delay(cell, attempt));
            }
        }
    }

    #[test]
    fn delays_stay_inside_the_equal_jitter_envelope() {
        let p = BackoffPolicy {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(500),
            seed: 7,
        };
        for attempt in 0..10 {
            let env_us = (10_000u64 << attempt.min(20)).min(500_000);
            for cell in 0..32 {
                let d = p.delay(cell, attempt).as_micros() as u64;
                assert!(d >= env_us / 2, "attempt {attempt}: {d} < {}", env_us / 2);
                assert!(d <= env_us, "attempt {attempt}: {d} > {env_us}");
            }
        }
    }

    #[test]
    fn distinct_cells_jitter_apart() {
        let p = BackoffPolicy::default();
        let distinct: std::collections::BTreeSet<u64> = (0..64)
            .map(|cell| p.delay(cell, 2).as_micros() as u64)
            .collect();
        assert!(
            distinct.len() > 32,
            "only {} distinct delays",
            distinct.len()
        );
    }

    #[test]
    fn huge_attempt_counts_saturate_at_the_cap() {
        let p = BackoffPolicy::default();
        let d = p.delay(3, u32::MAX);
        assert!(d <= p.cap);
        assert!(d >= p.cap / 2);
    }
}
