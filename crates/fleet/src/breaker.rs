//! Per-backend circuit breaker.
//!
//! Classic three-state machine:
//!
//! ```text
//!            threshold consecutive failures
//!   Closed ─────────────────────────────────▶ Open
//!     ▲                                        │ cooldown elapsed
//!     │ success                                ▼
//!     └─────────────────────────────────── HalfOpen
//!                (failure in HalfOpen re-opens, cooldown restarts)
//! ```
//!
//! The breaker is fed from two directions: request outcomes observed by the
//! dispatch workers, and background `ping` probes. Overload rejections do
//! *not* trip it — an overloaded backend is healthy-but-busy and the right
//! response is backoff, not failover; only transport errors and server-side
//! faults count. Shard targeting consults [`CircuitBreaker::is_available`]
//! so cells skip backends that are known-dead instead of burning a
//! connect timeout each.

use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Closed { consecutive_failures: u32 },
    Open { opened_at: Instant },
    HalfOpen,
}

/// Health state for one backend.
#[derive(Debug)]
pub struct CircuitBreaker {
    state: State,
    threshold: u32,
    cooldown: Duration,
}

impl CircuitBreaker {
    /// A closed breaker that opens after `threshold` consecutive failures
    /// and allows a half-open trial after `cooldown`.
    pub fn new(threshold: u32, cooldown: Duration) -> Self {
        Self {
            state: State::Closed {
                consecutive_failures: 0,
            },
            threshold: threshold.max(1),
            cooldown,
        }
    }

    /// Whether a request may be sent to this backend right now.
    ///
    /// An `Open` breaker whose cooldown has elapsed transitions to
    /// `HalfOpen` and admits exactly this caller as the trial request.
    pub fn is_available(&mut self) -> bool {
        match self.state {
            State::Closed { .. } | State::HalfOpen => true,
            State::Open { opened_at } => {
                if opened_at.elapsed() >= self.cooldown {
                    self.state = State::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Record a successful request or probe; fully closes the breaker.
    pub fn record_success(&mut self) {
        self.state = State::Closed {
            consecutive_failures: 0,
        };
    }

    /// Record a failed request or probe. Returns `true` when this failure
    /// is the one that opened the breaker (for the `fleet.breaker_open_total`
    /// counter — re-opening from `HalfOpen` counts too).
    pub fn record_failure(&mut self) -> bool {
        match self.state {
            State::Closed {
                consecutive_failures,
            } => {
                let n = consecutive_failures + 1;
                if n >= self.threshold {
                    self.state = State::Open {
                        opened_at: Instant::now(),
                    };
                    true
                } else {
                    self.state = State::Closed {
                        consecutive_failures: n,
                    };
                    false
                }
            }
            State::HalfOpen => {
                self.state = State::Open {
                    opened_at: Instant::now(),
                };
                true
            }
            State::Open { .. } => false,
        }
    }

    /// Whether the breaker is currently open (no trial admitted yet).
    pub fn is_open(&self) -> bool {
        matches!(self.state, State::Open { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opens_after_threshold_consecutive_failures() {
        let mut b = CircuitBreaker::new(3, Duration::from_secs(60));
        assert!(!b.record_failure());
        assert!(!b.record_failure());
        assert!(b.is_available());
        assert!(b.record_failure());
        assert!(b.is_open());
        assert!(!b.is_available());
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut b = CircuitBreaker::new(2, Duration::from_secs(60));
        assert!(!b.record_failure());
        b.record_success();
        assert!(!b.record_failure());
        assert!(b.record_failure());
    }

    #[test]
    fn cooldown_admits_a_half_open_trial() {
        let mut b = CircuitBreaker::new(1, Duration::from_millis(20));
        assert!(b.record_failure());
        assert!(!b.is_available());
        std::thread::sleep(Duration::from_millis(30));
        assert!(b.is_available());
        // Trial succeeds: fully closed again.
        b.record_success();
        assert!(b.is_available());
        assert!(!b.is_open());
    }

    #[test]
    fn half_open_failure_reopens_and_restarts_the_cooldown() {
        let mut b = CircuitBreaker::new(1, Duration::from_millis(30));
        assert!(b.record_failure());
        std::thread::sleep(Duration::from_millis(40));
        assert!(b.is_available()); // now HalfOpen
        assert!(b.record_failure()); // trial failed -> reopened, counts as open
        assert!(!b.is_available());
        std::thread::sleep(Duration::from_millis(40));
        assert!(b.is_available());
    }

    #[test]
    fn threshold_zero_is_clamped_to_one() {
        let mut b = CircuitBreaker::new(0, Duration::from_secs(60));
        assert!(b.record_failure());
        assert!(b.is_open());
    }
}
