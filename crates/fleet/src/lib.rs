//! # sibia-fleet — sharded multi-backend sweep coordination
//!
//! The first horizontal-scaling layer of the Sibia stack: a std-only
//! coordinator that takes a sweep grid, shards its cells across a static
//! list of `sibia-serve` backends, and merges the answers into a document
//! **byte-identical** to a direct [`sibia_sim::ParallelEngine`] grid run —
//! regardless of backend count, failures, retries, or completion order.
//!
//! | module | what it provides |
//! |---|---|
//! | [`shard`] | deterministic FNV-1a cell → backend assignment |
//! | [`backoff`] | bounded exponential backoff with deterministic jitter (SynthRng, no `rand`) |
//! | [`breaker`] | per-backend Closed/Open/HalfOpen circuit breaker |
//! | [`pool`] | per-backend blocking connection pool over [`sibia_serve::Client`] |
//! | [`coordinator`] | the [`Fleet`] itself: dispatch workers, retry/failover policy, ping prober, result merge |
//! | [`telemetry`] | fleet-wide Chrome trace assembly: per-process `pid` lanes, global span ids, propagated parent links |
//!
//! ## Failure policy in one paragraph
//!
//! `overloaded` and `deadline_exceeded` mean *healthy but busy*: the cell
//! retries the **same** backend after a deterministic-jitter backoff and
//! the circuit breaker is not touched. Transport faults and server faults
//! (`internal`, `shutting_down`) mean *backend in trouble*: the breaker
//! records the failure and the cell **fails over** to the next healthy
//! backend. Deterministic rejections (`bad_request`, `unknown_arch`,
//! `unknown_network`) abort the whole sweep — every backend would answer
//! identically, so retrying anywhere is futile. A background `ping`
//! prober keeps breaker state honest even for backends no request is
//! currently reaching.
//!
//! Everything is observable through the global [`sibia_obs`] registry
//! (`fleet.*` counters and histograms — `fleet.failover_total` is the one
//! the integration suite pins) and tracer (`fleet.sweep`,
//! `fleet.dispatch`, `fleet.retry` spans).

pub mod backoff;
pub mod breaker;
pub mod coordinator;
pub mod pool;
pub mod shard;
pub mod telemetry;

pub use backoff::BackoffPolicy;
pub use breaker::CircuitBreaker;
pub use coordinator::{Fleet, FleetConfig, FleetError, SweepStats};
pub use pool::ClientPool;
pub use shard::{backend_for_cell, cell_key};
pub use telemetry::{backend_pid, merge_chrome_trace, COORDINATOR_PID};
