//! # sibia-fleet — dynamically scheduled multi-backend sweep coordination
//!
//! The first horizontal-scaling layer of the Sibia stack: a std-only
//! coordinator that takes a sweep grid, shards its cells across a dynamic
//! roster of `sibia-serve` backends, and merges the answers into a
//! document **byte-identical** to a direct [`sibia_sim::ParallelEngine`]
//! grid run — regardless of backend count, membership churn, failures,
//! steals, hedges, retries, or completion order.
//!
//! | module | what it provides |
//! |---|---|
//! | [`shard`] | deterministic FNV-1a cell → backend assignment |
//! | [`backoff`] | bounded exponential backoff with deterministic jitter (SynthRng, no `rand`) |
//! | [`breaker`] | per-backend Closed/Open/HalfOpen circuit breaker |
//! | [`pool`] | per-backend blocking connection pool over [`sibia_serve::Client`] |
//! | [`control`] | the control plane: membership state machine, work-stealing queues, hedged dispatch, chaos harness |
//! | [`coordinator`] | the [`Fleet`] itself: dispatch workers, retry/failover policy, hedge monitor, ping prober, result merge |
//! | [`telemetry`] | fleet-wide Chrome trace assembly: per-process `pid` lanes, global span ids, propagated parent links |
//!
//! ## Failure policy in one paragraph
//!
//! `overloaded` and `deadline_exceeded` mean *healthy but busy*: the cell
//! retries the **same** backend after a deterministic-jitter backoff and
//! the circuit breaker is not touched. Transport faults and server faults
//! (`internal`, `shutting_down`) mean *backend in trouble*: the breaker
//! records the failure, a newly opened breaker marks the member Dead and
//! reshards its queue, and the cell **fails over** to the next
//! dispatchable member. Deterministic rejections (`bad_request`,
//! `unknown_arch`, `unknown_network`) abort the whole sweep — every
//! backend would answer identically, so retrying anywhere is futile. A
//! background `ping` prober keeps breaker state honest even for backends
//! no request is currently reaching, and resurrects Dead members that did
//! not explicitly leave.
//!
//! ## Scheduling policy in one paragraph
//!
//! Every cell starts on its FNV-sharded home queue. Idle workers steal
//! from the back of the deepest dispatchable queue
//! ([`control::stealing`]), so a straggler sheds its backlog instead of
//! serializing the sweep's tail. A cell in flight past the windowed-p99
//! hedge deadline ([`control::hedging`]) is duplicated onto the
//! least-loaded other member; the first completion wins the cell on the
//! [`control::CompletionBoard`], the loser's socket is cancelled via
//! [`sibia_serve::CancelHandle`], and a loser that answers anyway is
//! deduped — never double-written. Members join and leave mid-sweep
//! ([`control::membership`]); a departing member's queue is drained and
//! resharded across the survivors.
//!
//! Everything is observable through the global [`sibia_obs`] registry
//! (`fleet.*` counters and histograms — `fleet.failover_total`,
//! `fleet.steal_total`, and `fleet.hedge_total` are ones the integration
//! suite pins) and tracer (`fleet.sweep`, `fleet.dispatch`, `fleet.retry`,
//! `fleet.steal`, `fleet.hedge`, `fleet.membership` spans).

pub mod backoff;
pub mod breaker;
pub mod control;
pub mod coordinator;
pub mod pool;
pub mod shard;
pub mod telemetry;

pub use backoff::BackoffPolicy;
pub use breaker::CircuitBreaker;
pub use control::{
    ChaosAction, ChaosEvent, ChaosPlan, CompletionBoard, HedgeConfig, MemberState, Membership,
    MembershipAction, PlannedEvent, SlowProxy,
};
pub use coordinator::{Fleet, FleetConfig, FleetError, SweepStats};
pub use pool::ClientPool;
pub use shard::{backend_for_cell, cell_key};
pub use telemetry::{backend_pid, merge_chrome_trace, COORDINATOR_PID};
