//! Per-backend connection pool.
//!
//! A [`ClientPool`] owns one endpoint and a small stack of idle
//! [`Client`] connections. Dispatch workers `checkout` a connection,
//! run a request, and `checkin` it on success; on any transport or
//! server-side fault the connection is simply dropped (the next checkout
//! dials fresh), so a poisoned stream can never be handed to another cell.
//!
//! The pool never blocks waiting for a free connection — the coordinator
//! bounds concurrency by its worker-thread count, so an empty idle stack
//! just means "dial". Dial and reuse counts feed the `fleet.pool.*`
//! counters for observability.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use sibia_serve::{Client, ClientError};

/// A pool of blocking connections to one backend endpoint.
pub struct ClientPool {
    endpoint: String,
    connect_timeout: Duration,
    io_timeout: Duration,
    idle: Mutex<Vec<Client>>,
    max_idle: usize,
    dials: AtomicU64,
    reuses: AtomicU64,
}

impl std::fmt::Debug for ClientPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientPool")
            .field("endpoint", &self.endpoint)
            .field("max_idle", &self.max_idle)
            .field("dials", &self.dials.load(Ordering::Relaxed))
            .field("reuses", &self.reuses.load(Ordering::Relaxed))
            .finish()
    }
}

impl ClientPool {
    /// A pool for `endpoint` (`host:port`) holding at most `max_idle`
    /// parked connections.
    pub fn new(
        endpoint: impl Into<String>,
        connect_timeout: Duration,
        io_timeout: Duration,
        max_idle: usize,
    ) -> Self {
        Self {
            endpoint: endpoint.into(),
            connect_timeout,
            io_timeout,
            idle: Mutex::new(Vec::new()),
            max_idle: max_idle.max(1),
            dials: AtomicU64::new(0),
            reuses: AtomicU64::new(0),
        }
    }

    /// The `host:port` this pool dials.
    pub fn endpoint(&self) -> &str {
        &self.endpoint
    }

    /// An idle connection if one is parked, otherwise a fresh dial.
    pub fn checkout(&self) -> Result<Client, ClientError> {
        if let Some(client) = self.idle.lock().expect("pool lock").pop() {
            self.reuses.fetch_add(1, Ordering::Relaxed);
            return Ok(client);
        }
        self.dials.fetch_add(1, Ordering::Relaxed);
        Client::with_timeouts(
            self.endpoint.as_str(),
            Some(self.connect_timeout),
            Some(self.io_timeout),
            Some(self.io_timeout),
        )
    }

    /// Parks a healthy connection for reuse (dropped if the pool is full).
    pub fn checkin(&self, client: Client) {
        let mut idle = self.idle.lock().expect("pool lock");
        if idle.len() < self.max_idle {
            idle.push(client);
        }
    }

    /// Drops every parked connection.
    pub fn drain(&self) {
        self.idle.lock().expect("pool lock").clear();
    }

    /// Lifetime (dials, reuses) counts.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.dials.load(Ordering::Relaxed),
            self.reuses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn local_pool(addr: std::net::SocketAddr) -> ClientPool {
        ClientPool::new(
            addr.to_string(),
            Duration::from_secs(2),
            Duration::from_secs(2),
            4,
        )
    }

    #[test]
    fn checkout_dials_and_checkin_parks_for_reuse() {
        // A bare listener is enough: Client construction does no handshake.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let pool = local_pool(listener.local_addr().unwrap());

        let c = pool.checkout().expect("dial");
        assert_eq!(pool.stats(), (1, 0));
        pool.checkin(c);
        let _again = pool.checkout().expect("reuse");
        assert_eq!(pool.stats(), (1, 1));
    }

    #[test]
    fn dead_endpoint_fails_fast_instead_of_hanging() {
        // Bind, grab the port, drop the listener: dialing it must error.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);
        let pool = local_pool(addr);
        let started = std::time::Instant::now();
        assert!(pool.checkout().is_err());
        assert!(started.elapsed() < Duration::from_secs(10));
    }

    #[test]
    fn full_pool_drops_extra_checkins() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let pool = ClientPool::new(
            addr.to_string(),
            Duration::from_secs(2),
            Duration::from_secs(2),
            1,
        );
        let a = pool.checkout().unwrap();
        let b = pool.checkout().unwrap();
        pool.checkin(a);
        pool.checkin(b); // over capacity: dropped
        let _ = pool.checkout().unwrap(); // the parked one
        let _ = pool.checkout().unwrap(); // forces a new dial
        assert_eq!(pool.stats().0, 3, "third dial after over-capacity drop");
    }
}
