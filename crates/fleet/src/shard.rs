//! Deterministic cell → backend assignment.
//!
//! A sweep grid's cells are sharded across backends by an FNV-1a-64 hash of
//! the cell coordinates `(arch, network, seed)` — the same hash family the
//! persistent store uses for config fingerprints ([`sibia_store::key::fnv64`]),
//! reused here so the whole stack agrees on one deterministic, platform-
//! independent hash. Properties the coordinator relies on:
//!
//! * **deterministic** — the assignment is a pure function of the cell key
//!   and the backend count, so two coordinator runs over the same grid and
//!   endpoint list dispatch identically (modulo failover);
//! * **independent of grid shape** — the hash sees the cell coordinates,
//!   not the flat index, so adding a seed to the sweep does not reshuffle
//!   every other cell;
//! * **balanced** — FNV-1a spreads the handful-of-cells-per-backend case
//!   well enough that a fig10-style grid never lands entirely on one
//!   backend (pinned by a test below).
//!
//! Failover re-dispatch (a cell moving to a survivor when its home backend
//! dies) is layered on top by the coordinator and never changes result
//! bytes — only which machine computes them.

use sibia_store::key::fnv64;

/// The hash key of one grid cell: `arch NUL network NUL seed_le`.
///
/// NUL separators keep the key unambiguous (`("ab","c")` and `("a","bc")`
/// must not collide by construction); the seed rides as fixed-width
/// little-endian bytes so numeric formatting can never perturb the hash.
pub fn cell_key(arch: &str, network: &str, seed: u64) -> u64 {
    let mut key = Vec::with_capacity(arch.len() + network.len() + 10);
    key.extend_from_slice(arch.as_bytes());
    key.push(0);
    key.extend_from_slice(network.as_bytes());
    key.push(0);
    key.extend_from_slice(&seed.to_le_bytes());
    fnv64(&key)
}

/// The home backend of a cell: `cell_key % backends`.
///
/// # Panics
///
/// Panics if `backends == 0` — a fleet without backends cannot exist (the
/// coordinator's constructor rejects an empty endpoint list).
pub fn backend_for_cell(arch: &str, network: &str, seed: u64, backends: usize) -> usize {
    assert!(backends > 0, "need at least one backend");
    (cell_key(arch, network, seed) % backends as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_is_deterministic_and_in_range() {
        for backends in [1, 2, 3, 4, 7] {
            for seed in 0..32 {
                let a = backend_for_cell("sibia", "dgcnn", seed, backends);
                let b = backend_for_cell("sibia", "dgcnn", seed, backends);
                assert_eq!(a, b);
                assert!(a < backends);
            }
        }
    }

    #[test]
    fn coordinates_are_unambiguous() {
        // The NUL framing keeps adjacent fields from bleeding into each
        // other: these would collide under naive concatenation.
        assert_ne!(cell_key("ab", "c", 1), cell_key("a", "bc", 1));
        assert_ne!(cell_key("sibia", "dgcnn", 1), cell_key("sibia", "dgcnn", 2));
        assert_ne!(
            cell_key("sibia", "dgcnn", 1),
            cell_key("bitfusion", "dgcnn", 1)
        );
    }

    #[test]
    fn a_fig10_style_grid_spreads_over_backends() {
        // 5 archs x 2 networks x 3 seeds = 30 cells over 2 and 4 backends:
        // every backend must receive at least one cell.
        let archs = ["bitfusion", "hnpu", "no-sbr", "input-skip", "sibia"];
        let nets = ["dgcnn", "alexnet"];
        let seeds = [1u64, 2, 3];
        for backends in [2usize, 4] {
            let mut hit = vec![0usize; backends];
            for a in archs {
                for n in nets {
                    for &s in &seeds {
                        hit[backend_for_cell(a, n, s, backends)] += 1;
                    }
                }
            }
            assert!(
                hit.iter().all(|&c| c > 0),
                "{backends} backends, load {hit:?}"
            );
        }
    }

    #[test]
    fn single_backend_takes_everything() {
        for seed in 0..16 {
            assert_eq!(backend_for_cell("sibia", "dgcnn", seed, 1), 0);
        }
    }
}
