//! Dynamic fleet membership: who is in the fleet, and in what state.
//!
//! ## The member state machine
//!
//! ```text
//!             first success / probe ok
//!   Joining ────────────────────────────► Active
//!                                          │  │
//!                 leave (CLI or API)       │  │  breaker newly opened
//!                 ┌────────────────────────┘  │  (fault or probe)
//!                 ▼                           ▼
//!             Draining ──────────────────► Dead ──► Active
//!              in-flight done               ▲        (probe ok again,
//!              + queue resharded            │         unless it *left*)
//!                                           └─ queue resharded
//! ```
//!
//! * **Joining** — added mid-sweep (CLI `--join` or [`super::super::Fleet`]
//!   API); dispatchable immediately (stealing pulls work to it), promoted
//!   to Active by its first completed cell or successful probe.
//! * **Active** — the steady state.
//! * **Draining** — asked to leave: takes no new work, its home queue is
//!   drained and resharded across survivors, in-flight dispatches finish.
//! * **Dead** — drained out, or its circuit breaker opened. A Dead member
//!   that did **not** explicitly leave is still probed and resurrects to
//!   Active when the probe succeeds; a member that left stays gone.
//!
//! Members are never removed from the roster vector: indexes are handed
//! out once and stay stable, so per-backend metrics, failover rotation,
//! and the status file all keep meaning across joins and leaves.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

use crate::breaker::CircuitBreaker;
use crate::pool::ClientPool;

use super::stealing::StealQueue;

/// Where a member is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberState {
    /// Added mid-sweep; not yet confirmed healthy.
    Joining,
    /// Healthy steady state.
    Active,
    /// Leaving: no new work, finishing what is in flight.
    Draining,
    /// Out of rotation (drained out, or breaker open).
    Dead,
}

impl MemberState {
    /// The status-file / `top` spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            MemberState::Joining => "joining",
            MemberState::Active => "active",
            MemberState::Draining => "draining",
            MemberState::Dead => "dead",
        }
    }

    /// May this member be given new work (home dispatch, steals, hedges,
    /// failover targets)?
    pub fn is_dispatchable(self) -> bool {
        matches!(self, MemberState::Joining | MemberState::Active)
    }

    fn from_u8(v: u8) -> Self {
        match v {
            0 => MemberState::Joining,
            1 => MemberState::Active,
            2 => MemberState::Draining,
            _ => MemberState::Dead,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            MemberState::Joining => 0,
            MemberState::Active => 1,
            MemberState::Draining => 2,
            MemberState::Dead => 3,
        }
    }
}

/// One backend in the fleet: its connections, health, home queue, and
/// per-sweep accounting.
#[derive(Debug)]
pub struct Member {
    /// Stable roster index (never reused).
    pub index: usize,
    /// The backend's `host:port`.
    pub endpoint: String,
    /// Pooled connections to this backend.
    pub pool: Arc<ClientPool>,
    /// This backend's circuit breaker.
    pub breaker: Mutex<CircuitBreaker>,
    /// Cells currently homed here (front = owner, back = thieves).
    pub queue: StealQueue,
    state: AtomicU8,
    /// Set once by an explicit leave: a left member is never resurrected
    /// by the prober, however healthy it looks.
    left: AtomicBool,
    /// Cells this member completed (won the board race).
    pub completed: AtomicU64,
    /// Cells this member executed after stealing them from another queue.
    pub stolen: AtomicU64,
    /// Hedge duplicates placed on this member.
    pub hedged: AtomicU64,
    /// Dispatches currently executing against this backend.
    pub inflight: AtomicU64,
}

impl Member {
    fn new(index: usize, endpoint: String, state: MemberState, config: &MemberConfig) -> Self {
        Self {
            index,
            endpoint: endpoint.clone(),
            pool: Arc::new(ClientPool::new(
                endpoint,
                config.connect_timeout,
                config.io_timeout,
                config.max_idle,
            )),
            breaker: Mutex::new(CircuitBreaker::new(
                config.breaker_threshold,
                config.breaker_cooldown,
            )),
            queue: StealQueue::new(),
            state: AtomicU8::new(state.as_u8()),
            left: AtomicBool::new(false),
            completed: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
            hedged: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
        }
    }

    /// The current lifecycle state.
    pub fn state(&self) -> MemberState {
        MemberState::from_u8(self.state.load(Ordering::SeqCst))
    }

    /// Moves to `state` unconditionally.
    pub fn set_state(&self, state: MemberState) {
        self.state.store(state.as_u8(), Ordering::SeqCst);
    }

    /// Did this member explicitly leave (as opposed to failing)?
    pub fn has_left(&self) -> bool {
        self.left.load(Ordering::SeqCst)
    }

    /// Marks the member as explicitly departed; it will never resurrect.
    pub fn mark_left(&self) {
        self.left.store(true, Ordering::SeqCst);
    }

    /// Breaker check without holding the lock across IO.
    pub fn breaker_available(&self) -> bool {
        self.breaker.lock().unwrap().is_available()
    }
}

/// The pool/breaker parameters every member is built with (a projection
/// of `FleetConfig`, so this module does not depend on the coordinator).
#[derive(Debug, Clone)]
pub struct MemberConfig {
    /// Dial timeout per connection.
    pub connect_timeout: Duration,
    /// Read/write timeout per request.
    pub io_timeout: Duration,
    /// Idle connections kept per backend.
    pub max_idle: usize,
    /// Consecutive faults before the breaker opens.
    pub breaker_threshold: u32,
    /// How long an open breaker blocks dispatch before half-opening.
    pub breaker_cooldown: Duration,
}

/// A planned membership change, relative to sweep start — the CLI's
/// `--join MS:ENDPOINT` / `--leave MS:ENDPOINT` compile to these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedEvent {
    /// When, measured from the sweep's first dispatch.
    pub at: Duration,
    /// What happens.
    pub action: MembershipAction,
}

/// What a membership event does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MembershipAction {
    /// Add a backend (new roster entry, state Joining).
    Join(String),
    /// Drain a backend out (state Draining, queue resharded).
    Leave(String),
}

/// The fleet roster: an append-only vector of members behind a lock.
#[derive(Debug, Default)]
pub struct Membership {
    members: RwLock<Vec<Arc<Member>>>,
}

impl Membership {
    /// A roster of `endpoints`, all Active (the static starting set).
    pub fn new(endpoints: &[String], config: &MemberConfig) -> Self {
        let members = endpoints
            .iter()
            .enumerate()
            .map(|(i, ep)| Arc::new(Member::new(i, ep.clone(), MemberState::Active, config)))
            .collect();
        Self {
            members: RwLock::new(members),
        }
    }

    /// A point-in-time copy of the roster (cheap: `Arc` clones).
    pub fn snapshot(&self) -> Vec<Arc<Member>> {
        self.members.read().unwrap().clone()
    }

    /// Roster size, including Draining/Dead members.
    pub fn len(&self) -> usize {
        self.members.read().unwrap().len()
    }

    /// True when the roster is empty (never, after construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The member at a stable roster index.
    pub fn get(&self, index: usize) -> Option<Arc<Member>> {
        self.members.read().unwrap().get(index).cloned()
    }

    /// The not-yet-departed member serving `endpoint`, if any.
    pub fn find(&self, endpoint: &str) -> Option<Arc<Member>> {
        self.members
            .read()
            .unwrap()
            .iter()
            .find(|m| m.endpoint == endpoint && !m.has_left())
            .cloned()
    }

    /// Appends a fresh member in state Joining and returns it. The caller
    /// (the coordinator's control loop) spawns its dispatch workers.
    pub fn join(&self, endpoint: String, config: &MemberConfig) -> Arc<Member> {
        let mut members = self.members.write().unwrap();
        let member = Arc::new(Member::new(
            members.len(),
            endpoint,
            MemberState::Joining,
            config,
        ));
        members.push(Arc::clone(&member));
        member
    }

    /// Members that may take new work right now.
    pub fn dispatchable(&self) -> Vec<Arc<Member>> {
        self.members
            .read()
            .unwrap()
            .iter()
            .filter(|m| m.state().is_dispatchable())
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> MemberConfig {
        MemberConfig {
            connect_timeout: Duration::from_millis(100),
            io_timeout: Duration::from_millis(100),
            max_idle: 1,
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(100),
        }
    }

    #[test]
    fn join_appends_with_stable_indexes() {
        let roster = Membership::new(&["a:1".into(), "b:2".into()], &config());
        let joined = roster.join("c:3".into(), &config());
        assert_eq!(joined.index, 2);
        assert_eq!(joined.state(), MemberState::Joining);
        assert_eq!(roster.len(), 3);
        assert_eq!(roster.get(0).unwrap().endpoint, "a:1");
    }

    #[test]
    fn left_members_stay_dead_and_unfindable() {
        let roster = Membership::new(&["a:1".into()], &config());
        let m = roster.find("a:1").unwrap();
        m.mark_left();
        m.set_state(MemberState::Dead);
        assert!(roster.find("a:1").is_none());
        assert_eq!(roster.len(), 1, "roster entries are never removed");
        assert!(!m.state().is_dispatchable());
    }

    #[test]
    fn dispatchable_filters_by_state() {
        let roster = Membership::new(&["a:1".into(), "b:2".into()], &config());
        roster.get(1).unwrap().set_state(MemberState::Draining);
        let dispatchable = roster.dispatchable();
        assert_eq!(dispatchable.len(), 1);
        assert_eq!(dispatchable[0].endpoint, "a:1");
    }
}
