//! Per-backend home queues with two-ended access for work stealing.
//!
//! Each member owns a [`StealQueue`] of the cells currently homed on it.
//! The owner drains from the **front** (preserving the dispatch order the
//! shard assigned); an idle worker on another backend steals from the
//! **back**, so the two ends contend on different cells and the victim
//! keeps the work it is about to start. The steal policy itself lives in
//! [`pick_victim`]: steal from the *deepest* queue, so the backend most
//! behind sheds load first and a straggler can never serialize the tail
//! of a sweep on its own.
//!
//! Hedge duplicates jump the line: [`StealQueue::push_front`] puts them
//! ahead of un-started home work, because a hedged cell is by definition
//! already past the sweep's deadline estimate.

use std::collections::VecDeque;
use std::sync::Mutex;

use super::membership::Member;
use std::sync::Arc;

/// One unit of dispatch work: a flat cell index plus its retry history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellJob {
    /// Flat row-major index into the sweep grid.
    pub flat: usize,
    /// Attempts consumed so far, across every backend this cell visited.
    pub attempts: u32,
    /// True for the duplicate copy created by hedged dispatch: it races
    /// the original, the completion board dedups whichever loses, and a
    /// worker drops it unrun if the original already won.
    pub hedge: bool,
}

impl CellJob {
    /// A fresh, never-attempted home assignment for `flat`.
    pub fn new(flat: usize) -> Self {
        Self {
            flat,
            attempts: 0,
            hedge: false,
        }
    }
}

/// A member's home queue: front for the owner, back for thieves.
#[derive(Debug, Default)]
pub struct StealQueue {
    jobs: Mutex<VecDeque<CellJob>>,
}

impl StealQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a job in home-dispatch order.
    pub fn push_back(&self, job: CellJob) {
        self.jobs.lock().unwrap().push_back(job);
    }

    /// Front-inserts a job ahead of un-started work (hedge duplicates).
    pub fn push_front(&self, job: CellJob) {
        self.jobs.lock().unwrap().push_front(job);
    }

    /// The owner's end.
    pub fn pop_front(&self) -> Option<CellJob> {
        self.jobs.lock().unwrap().pop_front()
    }

    /// The thief's end — but only never-attempted jobs are stealable. A
    /// job that already bounced between members (retry exhaustion,
    /// failover) stays with its current owner: otherwise an
    /// always-overloaded member's idle workers would keep pulling back
    /// the very cells they just failed to run, burning each cell's
    /// attempt budget on steal ping-pong instead of letting a healthy
    /// owner finish it.
    pub fn steal_back(&self) -> Option<CellJob> {
        let mut jobs = self.jobs.lock().unwrap();
        match jobs.back() {
            Some(job) if job.attempts == 0 => jobs.pop_back(),
            _ => None,
        }
    }

    /// Queued (not yet dispatched) cells.
    pub fn len(&self) -> usize {
        self.jobs.lock().unwrap().len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Empties the queue, returning every job — the drain half of a
    /// leave/reshard.
    pub fn drain(&self) -> Vec<CellJob> {
        self.jobs.lock().unwrap().drain(..).collect()
    }
}

/// The steal policy: among `members`, the dispatchable member (Active or
/// Joining, see [`super::membership::MemberState::is_dispatchable`]) with the **deepest**
/// non-empty queue that is not the thief itself. `None` means there is
/// nothing worth stealing anywhere.
pub fn pick_victim(members: &[Arc<Member>], thief: usize) -> Option<Arc<Member>> {
    members
        .iter()
        .filter(|m| m.index != thief && m.state().is_dispatchable())
        .map(|m| (m.queue.len(), m))
        .filter(|(depth, _)| *depth > 0)
        .max_by_key(|(depth, _)| *depth)
        .map(|(_, m)| Arc::clone(m))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_is_fifo_for_owner_and_lifo_for_thief() {
        let q = StealQueue::new();
        for flat in 0..4 {
            q.push_back(CellJob::new(flat));
        }
        assert_eq!(q.pop_front().unwrap().flat, 0);
        assert_eq!(q.steal_back().unwrap().flat, 3);
        assert_eq!(q.pop_front().unwrap().flat, 1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn hedge_jobs_jump_the_line() {
        let q = StealQueue::new();
        q.push_back(CellJob::new(0));
        let hedge = CellJob {
            flat: 9,
            attempts: 0,
            hedge: true,
        };
        q.push_front(hedge);
        assert_eq!(q.pop_front().unwrap().flat, 9);
    }

    #[test]
    fn drain_empties_in_order() {
        let q = StealQueue::new();
        for flat in 0..3 {
            q.push_back(CellJob::new(flat));
        }
        let drained: Vec<usize> = q.drain().iter().map(|j| j.flat).collect();
        assert_eq!(drained, vec![0, 1, 2]);
        assert!(q.is_empty());
    }
}
