//! Deterministic chaos tooling for the failover suite and the bench.
//!
//! Two pieces:
//!
//! * [`ChaosPlan`] — a SynthRng-derived schedule of kill/stall/heal/join
//!   events. Same seed, same plan, bit for bit: the failover suite replays
//!   a plan against live backends and pins the sweep output byte-identical
//!   to the direct grid, so "chaos" never means "flaky".
//! * [`SlowProxy`] — a line-forwarding TCP proxy with a settable
//!   per-request delay, standing between the coordinator and one backend.
//!   The delay is pure sleep, which is exactly what a straggler looks
//!   like from the outside: the backend is healthy and correct, just
//!   late. Stall events flip the delay up, heal events drop it to zero,
//!   and the bench parks one on its straggler leg.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use sibia_nn::rng::SynthRng;

/// What one chaos event does to the fleet under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Hard-kill backend `i` (the suite shuts the server down mid-sweep).
    Kill(usize),
    /// Join the spare backend into the sweep.
    Join,
    /// Set backend `i`'s proxy delay (per request).
    Stall(usize, Duration),
    /// Drop backend `i`'s proxy delay back to zero.
    Heal(usize),
}

/// One scheduled action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosEvent {
    /// When, measured from sweep start.
    pub at: Duration,
    /// What.
    pub action: ChaosAction,
}

/// A deterministic, seed-derived chaos schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Events in firing order.
    pub events: Vec<ChaosEvent>,
}

impl ChaosPlan {
    /// Derives a plan from `seed` for a fleet of `backends` backends over
    /// roughly `horizon` of sweep time. Always contains at least one kill
    /// and one join (the membership paths under test), plus 1–3 stall
    /// events with matching heals; the victims, delays, and times are all
    /// SynthRng picks, so two runs with one seed agree exactly.
    pub fn generate(seed: u64, backends: usize, horizon: Duration) -> Self {
        assert!(backends >= 2, "chaos needs at least two backends");
        let mut rng = SynthRng::for_stream(seed, 0xC4A0);
        let h = horizon.as_millis().max(10) as u64;
        // Times land in [h/8, h): never at zero (the sweep must actually
        // start first) and never past the nominal horizon.
        let at = |rng: &mut SynthRng| Duration::from_millis(h / 8 + rng.next_u64() % (h - h / 8));
        let kill_victim = (rng.next_u64() % backends as u64) as usize;
        let mut events = vec![
            ChaosEvent {
                at: at(&mut rng),
                action: ChaosAction::Kill(kill_victim),
            },
            ChaosEvent {
                at: at(&mut rng),
                action: ChaosAction::Join,
            },
        ];
        let stalls = 1 + (rng.next_u64() % 3) as usize;
        for _ in 0..stalls {
            // Stall a backend other than the kill victim, so the stalled
            // path and the dead path stay distinguishable in the stats.
            let victim = (rng.next_u64() % backends as u64) as usize;
            let victim = if victim == kill_victim {
                (victim + 1) % backends
            } else {
                victim
            };
            let delay = Duration::from_millis(50 + rng.next_u64() % 200);
            let start = at(&mut rng);
            events.push(ChaosEvent {
                at: start,
                action: ChaosAction::Stall(victim, delay),
            });
            events.push(ChaosEvent {
                at: start + Duration::from_millis(50 + rng.next_u64() % (h / 2)),
                action: ChaosAction::Heal(victim),
            });
        }
        events.sort_by_key(|e| e.at);
        Self { events }
    }
}

/// A blocking line proxy with a settable per-request delay.
///
/// One thread accepts; each connection gets a forwarding thread that
/// reads a request line from the client, sleeps the current delay, relays
/// it upstream, and relays the response line back. The NDJSON protocol is
/// strictly request/response per connection on the blocking front, so
/// line-at-a-time forwarding preserves the framing exactly. A cancelled
/// client (socket shutdown) surfaces as a read/write error and tears the
/// pair down, which is precisely how hedge cancellation is supposed to
/// look from the backend's side of the proxy.
#[derive(Debug)]
pub struct SlowProxy {
    addr: SocketAddr,
    delay_ms: Arc<AtomicU64>,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl SlowProxy {
    /// Starts a proxy on an ephemeral local port forwarding to `upstream`,
    /// with zero initial delay.
    pub fn start(upstream: SocketAddr) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        // Poll accept so shutdown is prompt without an extra wake-up dance.
        listener.set_nonblocking(true)?;
        let delay_ms = Arc::new(AtomicU64::new(0));
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let delay_ms = Arc::clone(&delay_ms);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                while !shutdown.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((client, _)) => {
                            let delay_ms = Arc::clone(&delay_ms);
                            let shutdown = Arc::clone(&shutdown);
                            std::thread::spawn(move || {
                                forward(client, upstream, &delay_ms, &shutdown);
                            });
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            })
        };
        Ok(Self {
            addr,
            delay_ms,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// Where clients should connect.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sets the per-request delay (applied before relaying upstream).
    pub fn set_delay(&self, delay: Duration) {
        self.delay_ms.store(
            delay.as_millis().min(u128::from(u64::MAX)) as u64,
            Ordering::SeqCst,
        );
    }

    /// Stops accepting. Existing forwarding threads notice on their next
    /// request boundary (or when either side hangs up).
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for SlowProxy {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn forward(client: TcpStream, upstream: SocketAddr, delay_ms: &AtomicU64, shutdown: &AtomicBool) {
    let Ok(server) = TcpStream::connect_timeout(&upstream, Duration::from_secs(5)) else {
        return;
    };
    let _ = client.set_nodelay(true);
    let _ = server.set_nodelay(true);
    let mut client_reader = BufReader::new(match client.try_clone() {
        Ok(c) => c,
        Err(_) => return,
    });
    let mut server_reader = BufReader::new(match server.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut request = String::new();
    let mut response = String::new();
    while !shutdown.load(Ordering::SeqCst) {
        request.clear();
        match client_reader.read_line(&mut request) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        // The straggler's whole pathology, in one line.
        let delay = delay_ms.load(Ordering::SeqCst);
        if delay > 0 {
            std::thread::sleep(Duration::from_millis(delay));
        }
        if (&server).write_all(request.as_bytes()).is_err() {
            return;
        }
        response.clear();
        match server_reader.read_line(&mut response) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        if (&client).write_all(response.as_bytes()).is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_per_seed() {
        let a = ChaosPlan::generate(7, 3, Duration::from_millis(400));
        let b = ChaosPlan::generate(7, 3, Duration::from_millis(400));
        assert_eq!(a, b);
        let c = ChaosPlan::generate(8, 3, Duration::from_millis(400));
        assert_ne!(a, c, "different seeds should differ (xoshiro streams)");
    }

    #[test]
    fn plans_always_exercise_kill_and_join() {
        for seed in 0..16 {
            let plan = ChaosPlan::generate(seed, 4, Duration::from_millis(300));
            assert!(plan
                .events
                .iter()
                .any(|e| matches!(e.action, ChaosAction::Kill(_))));
            assert!(plan.events.iter().any(|e| e.action == ChaosAction::Join));
            let mut sorted = plan.events.clone();
            sorted.sort_by_key(|e| e.at);
            assert_eq!(plan.events, sorted, "events arrive in firing order");
        }
    }
}
