//! Hedged dispatch: duplicate the slow tail, keep the first answer.
//!
//! ## Protocol
//!
//! A cell whose dispatch has been in flight longer than the sweep's
//! deadline estimate gets a **hedge duplicate** pushed to the front of
//! another backend's queue. Original and duplicate then race; whichever
//! reaches [`CompletionBoard::complete`] first **wins** the cell, and the
//! loser is cancelled twice over:
//!
//! * *before dispatch* — a worker popping a hedge job for an
//!   already-complete cell drops it unrun;
//! * *in flight* — the winner's thread shuts down the loser's socket via
//!   the [`sibia_serve::CancelHandle`] registered in the
//!   [`InFlightTable`], so the losing worker unblocks immediately instead
//!   of waiting out the straggler.
//!
//! A loser that completes anyway (the race is real) is **deduped** here:
//! the board's slot is written once, by the winner, and the duplicate is
//! only counted. Determinism makes this safe — both copies compute the
//! same bytes (the debug assertion in [`CompletionBoard::complete`]
//! documents exactly that claim) — and the backends' stores stay
//! byte-identical because each write-back stores the same canonical value
//! under the same key.
//!
//! ## Deadline
//!
//! The hedge deadline is a **windowed p99**: the 99th percentile of the
//! last [`LATENCY_WINDOW`] completed cell latencies (the same sliding
//! -window view the obs time-series layer takes of `fleet.cell_us`),
//! scaled by [`HedgeConfig::multiplier`] and floored at
//! [`HedgeConfig::min_deadline`]. Until [`HedgeConfig::min_completions`]
//! cells have completed the estimate would be noise, so no hedging
//! happens at all.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use sibia_obs::Json;
use sibia_serve::CancelHandle;

/// Completed-latency window feeding the deadline estimate.
pub const LATENCY_WINDOW: usize = 64;

/// Hedging policy knobs (a projection of `FleetConfig`).
#[derive(Debug, Clone)]
pub struct HedgeConfig {
    /// Master switch; off means the monitor never hedges.
    pub enabled: bool,
    /// Deadline = windowed p99 × this.
    pub multiplier: f64,
    /// Deadline floor — also the fixed deadline while the window is
    /// too small only if `min_completions` is 0.
    pub min_deadline: Duration,
    /// Completions required before the p99 estimate is trusted. 0 means
    /// "hedge from the first dispatch, using `min_deadline` alone" (what
    /// the CLI's `--hedge-ms` compiles to).
    pub min_completions: usize,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            multiplier: 2.0,
            min_deadline: Duration::from_millis(50),
            min_completions: 8,
        }
    }
}

/// What [`CompletionBoard::complete`] decided about one arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completion {
    /// First arrival: the slot was written, the cell is done.
    Win,
    /// A hedge twin already won; this copy was discarded (after the
    /// byte-identity debug check).
    Duplicate,
}

/// First-writer-wins result table for one sweep, indexed by flat cell
/// position. The merge step reads the slots back in flat order, which is
/// what pins the output byte-identical regardless of which backend won
/// which race.
#[derive(Debug)]
pub struct CompletionBoard {
    slots: Vec<Mutex<Option<Json>>>,
    remaining: AtomicUsize,
    /// Ring of the last [`LATENCY_WINDOW`] winning latencies.
    window: Mutex<Vec<Duration>>,
    completions: AtomicUsize,
    /// Duplicate completions discarded (the dedup count).
    pub duplicates: AtomicU64,
}

impl CompletionBoard {
    /// A board for `cells` empty slots.
    pub fn new(cells: usize) -> Self {
        Self {
            slots: (0..cells).map(|_| Mutex::new(None)).collect(),
            remaining: AtomicUsize::new(cells),
            window: Mutex::new(Vec::with_capacity(LATENCY_WINDOW)),
            completions: AtomicUsize::new(0),
            duplicates: AtomicU64::new(0),
        }
    }

    /// Records one completed dispatch. The first writer wins the slot and
    /// decrements the remaining count exactly once; every later arrival
    /// is a duplicate and only counted. Never double-writes: whoever
    /// writes back to a store downstream must gate on [`Completion::Win`].
    pub fn complete(&self, flat: usize, result: Json, latency: Duration) -> Completion {
        let mut slot = self.slots[flat].lock().unwrap();
        match &*slot {
            Some(winner) => {
                // Both copies are the same pure function of the cell
                // coordinates; a mismatch would mean the determinism
                // contract is broken, not that hedging misfired.
                debug_assert_eq!(
                    winner.to_string(),
                    result.to_string(),
                    "hedge twins disagreed for cell {flat}"
                );
                self.duplicates.fetch_add(1, Ordering::SeqCst);
                Completion::Duplicate
            }
            None => {
                *slot = Some(result);
                drop(slot);
                self.remaining.fetch_sub(1, Ordering::SeqCst);
                self.completions.fetch_add(1, Ordering::SeqCst);
                let mut window = self.window.lock().unwrap();
                if window.len() == LATENCY_WINDOW {
                    window.remove(0);
                }
                window.push(latency);
                Completion::Win
            }
        }
    }

    /// Is this cell's slot already won?
    pub fn is_complete(&self, flat: usize) -> bool {
        self.slots[flat].lock().unwrap().is_some()
    }

    /// Cells still without a winner.
    pub fn remaining(&self) -> usize {
        self.remaining.load(Ordering::SeqCst)
    }

    /// Total winning completions so far.
    pub fn completions(&self) -> usize {
        self.completions.load(Ordering::SeqCst)
    }

    /// The current hedge deadline, or `None` while hedging is off or the
    /// window is still too small to trust.
    pub fn deadline(&self, config: &HedgeConfig) -> Option<Duration> {
        if !config.enabled {
            return None;
        }
        if self.completions() < config.min_completions {
            return if config.min_completions == 0 {
                Some(config.min_deadline)
            } else {
                None
            };
        }
        let window = self.window.lock().unwrap();
        if window.is_empty() {
            return Some(config.min_deadline);
        }
        let mut sorted: Vec<Duration> = window.clone();
        drop(window);
        sorted.sort_unstable();
        // Exact rank-ceil p99, matching the bench's quantile convention.
        let rank = ((sorted.len() as f64) * 0.99).ceil() as usize;
        let p99 = sorted[rank.clamp(1, sorted.len()) - 1];
        let scaled = p99.mul_f64(config.multiplier.max(1.0));
        Some(scaled.max(config.min_deadline))
    }

    /// Consumes the board into the slot table, for the merge. Panics if a
    /// slot is empty — the coordinator only merges after `remaining() == 0`.
    pub fn into_results(self) -> Vec<Json> {
        self.slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap()
                    .expect("merge reached with an incomplete cell")
            })
            .collect()
    }
}

/// One live dispatch (or a racing pair of them).
#[derive(Debug, Default)]
struct InFlight {
    /// When the first copy went out.
    started: Option<Instant>,
    /// Roster indexes currently executing this cell.
    backends: Vec<usize>,
    /// Cancel handles for the copies in flight, keyed by backend.
    cancels: Vec<(usize, CancelHandle)>,
    /// Has a hedge duplicate already been issued? One per cell, ever.
    hedged: bool,
}

/// Registry of cells currently being executed, so the hedge monitor can
/// find the overdue ones and the winner can cancel its loser.
#[derive(Debug, Default)]
pub struct InFlightTable {
    entries: Mutex<HashMap<usize, InFlight>>,
}

impl InFlightTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks `backend` as executing `flat`. The first registration stamps
    /// the cell's hedge clock; a duplicate's registration does not reset
    /// it.
    pub fn register(&self, flat: usize, backend: usize) {
        let mut entries = self.entries.lock().unwrap();
        let entry = entries.entry(flat).or_default();
        entry.started.get_or_insert_with(Instant::now);
        entry.backends.push(backend);
    }

    /// Attaches the in-flight call's cancel handle.
    pub fn attach_cancel(&self, flat: usize, backend: usize, handle: CancelHandle) {
        let mut entries = self.entries.lock().unwrap();
        if let Some(entry) = entries.get_mut(&flat) {
            entry.cancels.push((backend, handle));
        }
    }

    /// Detaches `backend`'s cancel handle (its call returned on its own).
    pub fn detach_cancel(&self, flat: usize, backend: usize) {
        let mut entries = self.entries.lock().unwrap();
        if let Some(entry) = entries.get_mut(&flat) {
            entry.cancels.retain(|(b, _)| *b != backend);
        }
    }

    /// Removes `backend` from the cell's live set; drops the entry when
    /// nothing is in flight anymore.
    pub fn deregister(&self, flat: usize, backend: usize) {
        let mut entries = self.entries.lock().unwrap();
        if let Some(entry) = entries.get_mut(&flat) {
            if let Some(pos) = entry.backends.iter().position(|&b| b == backend) {
                entry.backends.remove(pos);
            }
            entry.cancels.retain(|(b, _)| *b != backend);
            if entry.backends.is_empty() {
                entries.remove(&flat);
            }
        }
    }

    /// Copies of `flat` currently in flight.
    pub fn live(&self, flat: usize) -> usize {
        self.entries
            .lock()
            .unwrap()
            .get(&flat)
            .map_or(0, |e| e.backends.len())
    }

    /// Shuts down every other copy's socket after `winner` won the cell:
    /// the losing workers' blocked reads fail immediately instead of
    /// riding out the straggler.
    pub fn cancel_others(&self, flat: usize, winner: usize) {
        let mut entries = self.entries.lock().unwrap();
        if let Some(entry) = entries.get_mut(&flat) {
            for (backend, handle) in &entry.cancels {
                if *backend != winner {
                    handle.cancel();
                }
            }
            entry.cancels.retain(|(b, _)| *b == winner);
        }
    }

    /// Cells in flight longer than `deadline` that have not been hedged
    /// yet, with the backends already working on them (so the monitor
    /// picks a different one).
    pub fn overdue(&self, deadline: Duration) -> Vec<(usize, Vec<usize>)> {
        let entries = self.entries.lock().unwrap();
        entries
            .iter()
            .filter(|(_, e)| !e.hedged)
            .filter(|(_, e)| e.started.is_some_and(|s| s.elapsed() >= deadline))
            .map(|(flat, e)| (*flat, e.backends.clone()))
            .collect()
    }

    /// Marks a cell as hedged so it is never duplicated twice.
    pub fn mark_hedged(&self, flat: usize) {
        let mut entries = self.entries.lock().unwrap();
        if let Some(entry) = entries.get_mut(&flat) {
            entry.hedged = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(v: i64) -> Json {
        Json::obj(vec![("v", Json::Int(v))])
    }

    #[test]
    fn first_completion_wins_and_twin_is_deduped() {
        let board = CompletionBoard::new(2);
        assert_eq!(
            board.complete(0, cell(7), Duration::from_millis(1)),
            Completion::Win
        );
        assert_eq!(
            board.complete(0, cell(7), Duration::from_millis(9)),
            Completion::Duplicate
        );
        assert_eq!(board.remaining(), 1);
        assert_eq!(board.duplicates.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn deadline_needs_min_completions_then_tracks_p99() {
        let board = CompletionBoard::new(16);
        let config = HedgeConfig {
            enabled: true,
            multiplier: 2.0,
            min_deadline: Duration::from_millis(1),
            min_completions: 4,
        };
        assert_eq!(board.deadline(&config), None);
        for flat in 0..4 {
            board.complete(flat, cell(flat as i64), Duration::from_millis(10));
        }
        // p99 of a flat 10 ms window is 10 ms; ×2 = 20 ms.
        assert_eq!(board.deadline(&config), Some(Duration::from_millis(20)));
    }

    #[test]
    fn fixed_deadline_mode_hedges_from_the_start() {
        let board = CompletionBoard::new(1);
        let config = HedgeConfig {
            enabled: true,
            multiplier: 1.0,
            min_deadline: Duration::from_millis(123),
            min_completions: 0,
        };
        assert_eq!(board.deadline(&config), Some(Duration::from_millis(123)));
    }

    #[test]
    fn inflight_tracks_live_copies_and_hedge_flag() {
        let table = InFlightTable::new();
        table.register(3, 0);
        table.register(3, 1);
        assert_eq!(table.live(3), 2);
        assert!(table.overdue(Duration::ZERO).len() == 1);
        table.mark_hedged(3);
        assert!(table.overdue(Duration::ZERO).is_empty());
        table.deregister(3, 0);
        assert_eq!(table.live(3), 1);
        table.deregister(3, 1);
        assert_eq!(table.live(3), 0);
    }
}
