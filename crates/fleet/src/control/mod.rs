//! The fleet control plane: dynamic membership, work stealing, and
//! hedged dispatch (DESIGN.md §13).
//!
//! The coordinator's dispatch machinery used to be static — a fixed
//! endpoint list, one FNV-sharded queue per backend, and nothing but the
//! circuit breakers reacting to trouble. This module turns it into a
//! dynamic scheduler while leaving the *output* contract untouched: the
//! merged sweep document stays byte-identical to a direct
//! `simulate_grid`, because everything here only changes **which backend
//! computes a cell and when**, never what a cell computes.
//!
//! | module | what it provides |
//! |---|---|
//! | [`membership`] | the roster: Joining/Active/Draining/Dead state machine, mid-sweep join/leave |
//! | [`stealing`] | two-ended home queues + the deepest-queue steal policy |
//! | [`hedging`] | first-writer-wins completion board, in-flight registry, windowed-p99 hedge deadline |
//! | [`chaos`] | SynthRng chaos schedules and the [`chaos::SlowProxy`] straggler harness |

pub mod chaos;
pub mod hedging;
pub mod membership;
pub mod stealing;

pub use chaos::{ChaosAction, ChaosEvent, ChaosPlan, SlowProxy};
pub use hedging::{Completion, CompletionBoard, HedgeConfig, InFlightTable};
pub use membership::{
    Member, MemberConfig, MemberState, Membership, MembershipAction, PlannedEvent,
};
pub use stealing::{pick_victim, CellJob, StealQueue};
