//! The sweep coordinator: shard, dispatch, steal, hedge, fail over, merge.
//!
//! A [`Fleet`] owns a dynamic roster of `sibia-serve` backends (the
//! [`crate::control`] plane) and runs a sweep grid across them as
//! independent per-cell `simulate` requests:
//!
//! 1. every `(arch, network, seed)` cell is assigned a *home* backend by
//!    the deterministic FNV shard ([`crate::shard`]) over the members
//!    dispatchable at sweep start, and queued on that member's
//!    [`crate::control::StealQueue`];
//! 2. per-member dispatch workers drain their home queue front-first over
//!    pooled connections with a per-request deadline (`timeout_ms` on the
//!    wire); an **idle** worker steals from the back of the deepest
//!    dispatchable queue instead of sleeping, so a straggler cannot
//!    serialize the tail of a sweep;
//! 3. `overloaded` / `deadline_exceeded` answers retry the **same**
//!    backend after a deterministic-jitter backoff ([`crate::backoff`]) —
//!    the backend is healthy, just busy;
//! 4. transport faults and server-side faults (`internal`,
//!    `shutting_down`) trip the member's circuit breaker
//!    ([`crate::breaker`]), mark it Dead, reshard its queue across the
//!    survivors, and **fail the cell over** to the next dispatchable
//!    member;
//! 5. deterministic rejections (`bad_request`, `unknown_arch`,
//!    `unknown_network`) abort the whole sweep — every backend would
//!    reject the same way, so retrying anywhere is futile;
//! 6. a cell in flight longer than the windowed-p99 hedge deadline gets a
//!    duplicate raced on a second member; the first completion wins the
//!    cell on the [`CompletionBoard`], the loser's socket is cancelled,
//!    and a loser that answers anyway is deduped (counted, not written);
//! 7. members can join and leave mid-sweep — planned
//!    ([`FleetConfig::membership_plan`]), requested ([`Fleet::join`] /
//!    [`Fleet::leave`]), or forced by failure — with a departing member's
//!    queue drained and resharded across the survivors;
//! 8. completed cells land on the completion board indexed by flat grid
//!    position, and the merged document is emitted in row-major
//!    (arch, network, seed) order.
//!
//! ## Why the merge is still byte-identical
//!
//! The server's `simulate` handler computes each cell with the same
//! `Simulator` configuration the grid engine gives a cell (same seed
//! override, same default sample cap) and serializes it with the *pure*
//! [`sibia_serve::protocol::network_result_to_json`]; the canonical JSON
//! layer makes `parse ∘ serialize` the identity on canonical text, so the
//! `result` payload the coordinator reads back is byte-for-byte what
//! `grid_to_json` would have embedded for that cell. Everything the
//! control plane does — stealing, hedging, joins, leaves, breaker-driven
//! reshards — only changes **which backend computes a cell and when**,
//! never the cell's bytes; hedge twins are first-writer-wins deduped on
//! the board, and the merge reads the slots back in flat order.
//! Reassembling therefore reproduces `grid_to_json(simulate_grid(…))`
//! exactly — regardless of backend count, membership churn, steals,
//! hedges, retries, or completion order. The integration suite pins this
//! against live servers, including seeded chaos schedules (mid-sweep
//! kill + join + stalls).

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use sibia_obs::{registry, tracer, Counter, Histogram, Json, TraceContext};
use sibia_serve::{Client, ClientError, ErrorCode, ServeError};

use crate::backoff::BackoffPolicy;
use crate::control::{
    pick_victim, CellJob, Completion, CompletionBoard, HedgeConfig, InFlightTable, Member,
    MemberConfig, MemberState, Membership, MembershipAction, PlannedEvent,
};
use crate::shard::backend_for_cell;

/// How a sweep can fail, from the caller's point of view.
#[derive(Debug)]
pub enum FleetError {
    /// The endpoint list was empty (or every member left before dispatch).
    NoEndpoints,
    /// `archs`, `networks`, or `seeds` was empty.
    EmptyGrid,
    /// A backend deterministically rejected a cell (`bad_request`,
    /// `unknown_arch`, `unknown_network`): every backend would answer the
    /// same, so the sweep aborts instead of retrying.
    Rejected(ServeError),
    /// One cell exhausted its attempt budget across all backends.
    CellFailed {
        /// Architecture name of the failed cell.
        arch: String,
        /// Network name of the failed cell.
        network: String,
        /// Seed of the failed cell.
        seed: u64,
        /// Total dispatch attempts spent on the cell.
        attempts: u32,
        /// The last error observed, for the log.
        last_error: String,
    },
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::NoEndpoints => write!(f, "fleet has no endpoints"),
            FleetError::EmptyGrid => write!(f, "sweep grid is empty"),
            FleetError::Rejected(e) => {
                write!(f, "backend rejected sweep [{}]: {}", e.code.as_str(), e.message)
            }
            FleetError::CellFailed {
                arch,
                network,
                seed,
                attempts,
                last_error,
            } => write!(
                f,
                "cell ({arch}, {network}, seed {seed}) failed after {attempts} attempts: {last_error}"
            ),
        }
    }
}

impl std::error::Error for FleetError {}

/// Coordinator configuration. [`FleetConfig::new`] gives defaults tuned
/// for LAN backends; every knob is public.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Initial backend endpoints (`host:port`), order-significant: the
    /// shard assignment and failover rotation are relative to the roster
    /// built from this list (joins append to it).
    pub endpoints: Vec<String>,
    /// Concurrent dispatch workers (and pooled connections) per backend.
    pub connections_per_backend: usize,
    /// TCP connect timeout per dial.
    pub connect_timeout: Duration,
    /// Per-request deadline, sent as `timeout_ms` and enforced locally via
    /// the socket read timeout (with slack for transit).
    pub request_timeout: Duration,
    /// Retry budget *per backend* for back-off-able answers
    /// (`overloaded`, `deadline_exceeded`); the total attempt budget of a
    /// cell is `max_attempts_per_backend × roster size`.
    pub max_attempts_per_backend: u32,
    /// Retry delay policy (deterministic jitter).
    pub backoff: BackoffPolicy,
    /// Consecutive faults that open a backend's circuit breaker.
    pub breaker_threshold: u32,
    /// How long an open breaker rejects before admitting a trial.
    pub breaker_cooldown: Duration,
    /// Health-probe (`ping`) period; probes feed the breakers and
    /// resurrect Dead-but-reachable members.
    pub probe_interval: Duration,
    /// Work stealing: idle workers pull cells from the deepest
    /// dispatchable queue instead of sleeping.
    pub steal: bool,
    /// Hedged-dispatch policy (windowed-p99 deadline, duplication).
    pub hedge: HedgeConfig,
    /// Membership changes scheduled relative to sweep start (the CLI's
    /// `--join MS:ENDPOINT` / `--leave MS:ENDPOINT` compile to these).
    pub membership_plan: Vec<PlannedEvent>,
    /// When set, the coordinator atomically rewrites this file with a
    /// live JSON snapshot of the roster every ~200 ms during a sweep
    /// (`sibia top --fleet-status` reads it).
    pub status_path: Option<PathBuf>,
    /// Simulation tile granularity (sub-words per tile), forwarded as the
    /// revision-6 `tile` field on every dispatched `simulate` request.
    /// `None` keeps backends on their layer-at-a-time default. Results are
    /// byte-identical either way — this only changes backend scheduling
    /// grain and tile-cache reuse.
    pub tile: Option<usize>,
}

impl FleetConfig {
    /// Defaults for the given endpoints.
    pub fn new(endpoints: Vec<String>) -> Self {
        Self {
            endpoints,
            connections_per_backend: 2,
            connect_timeout: Duration::from_secs(5),
            request_timeout: Duration::from_secs(60),
            max_attempts_per_backend: 3,
            backoff: BackoffPolicy::default(),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(500),
            probe_interval: Duration::from_millis(200),
            steal: true,
            hedge: HedgeConfig::default(),
            membership_plan: Vec::new(),
            status_path: None,
            tile: None,
        }
    }
}

/// The [`MemberConfig`] projection of a [`FleetConfig`].
/// Schedule debugging: set `SIBIA_FLEET_DEBUG=1` to get a per-event log
/// of dispatches, steals, hedges, and wins on stderr, stamped with
/// milliseconds since the sweep started.
fn debug_enabled() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| std::env::var_os("SIBIA_FLEET_DEBUG").is_some())
}

macro_rules! sched_debug {
    ($state:expr, $($arg:tt)*) => {
        if debug_enabled() {
            eprintln!(
                "fleet[{:>6.1}ms] {}",
                $state.started.elapsed().as_secs_f64() * 1e3,
                format_args!($($arg)*)
            );
        }
    };
}

fn member_config(config: &FleetConfig) -> MemberConfig {
    MemberConfig {
        connect_timeout: config.connect_timeout,
        // Socket read timeout = request deadline + slack, so the server
        // gets to answer `deadline_exceeded` itself before the client cuts
        // the connection (a typed answer retries; a cut connection would
        // needlessly count as a backend fault).
        io_timeout: config.request_timeout + Duration::from_secs(10),
        max_idle: config.connections_per_backend,
        breaker_threshold: config.breaker_threshold,
        breaker_cooldown: config.breaker_cooldown,
    }
}

/// What one sweep did, beyond the result document.
#[derive(Debug, Clone)]
pub struct SweepStats {
    /// Grid cells dispatched.
    pub cells: usize,
    /// Roster size at merge time (initial endpoints + joins; Dead and
    /// departed members keep their slots).
    pub backends: usize,
    /// Total dispatch attempts (incl. retries, failovers, hedges).
    pub attempts: u64,
    /// Same-backend retries after `overloaded`/`deadline_exceeded`.
    pub retries: u64,
    /// Cells re-dispatched to a different backend.
    pub failovers: u64,
    /// Cells pulled off another member's queue by an idle worker.
    pub steals: u64,
    /// Hedge duplicates issued for overdue cells.
    pub hedges: u64,
    /// Cells won by their hedge duplicate (the original lost the race).
    pub hedge_wins: u64,
    /// Duplicate completions discarded by the board (never written).
    pub hedge_duplicates: u64,
    /// Members that joined mid-sweep.
    pub joins: u64,
    /// Members that left mid-sweep (explicit leaves, not failures).
    pub leaves: u64,
    /// Queued cells moved to a survivor when a member died or drained.
    pub resharded_cells: u64,
    /// Cells completed per member (by stable roster index).
    pub per_backend_cells: Vec<u64>,
    /// Stolen cells executed per member (by stable roster index).
    pub per_backend_stolen: Vec<u64>,
    /// Hedge duplicates placed per member (by stable roster index).
    pub per_backend_hedged: Vec<u64>,
    /// Final `(endpoint, state)` of every roster member, in index order.
    pub membership: Vec<(String, String)>,
    /// End-to-end latency of every completed cell (dispatch to slot),
    /// unsorted.
    pub cell_latencies: Vec<Duration>,
}

/// Cached handles to the `fleet.*` instruments in the global registry.
struct FleetMetrics {
    cells_total: Arc<Counter>,
    dispatch_total: Arc<Counter>,
    retry_total: Arc<Counter>,
    failover_total: Arc<Counter>,
    overloaded_total: Arc<Counter>,
    breaker_open_total: Arc<Counter>,
    probe_total: Arc<Counter>,
    probe_failures: Arc<Counter>,
    pool_dials: Arc<Counter>,
    pool_reuses: Arc<Counter>,
    steal_total: Arc<Counter>,
    hedge_total: Arc<Counter>,
    hedge_win_total: Arc<Counter>,
    hedge_duplicate_total: Arc<Counter>,
    join_total: Arc<Counter>,
    leave_total: Arc<Counter>,
    reshard_cells_total: Arc<Counter>,
    cell_us: Arc<Histogram>,
    attempt_us: Arc<Histogram>,
}

impl FleetMetrics {
    fn new() -> Self {
        let r = registry();
        Self {
            cells_total: r.counter("fleet.cells_total"),
            dispatch_total: r.counter("fleet.dispatch_total"),
            retry_total: r.counter("fleet.retry_total"),
            failover_total: r.counter("fleet.failover_total"),
            overloaded_total: r.counter("fleet.overloaded_total"),
            breaker_open_total: r.counter("fleet.breaker_open_total"),
            probe_total: r.counter("fleet.probe_total"),
            probe_failures: r.counter("fleet.probe_failures"),
            pool_dials: r.counter("fleet.pool.dials"),
            pool_reuses: r.counter("fleet.pool.reuses"),
            steal_total: r.counter("fleet.steal_total"),
            hedge_total: r.counter("fleet.hedge_total"),
            hedge_win_total: r.counter("fleet.hedge_win_total"),
            hedge_duplicate_total: r.counter("fleet.hedge_duplicate_total"),
            join_total: r.counter("fleet.join_total"),
            leave_total: r.counter("fleet.leave_total"),
            reshard_cells_total: r.counter("fleet.reshard_cells_total"),
            cell_us: r.histogram("fleet.cell_us"),
            attempt_us: r.histogram("fleet.attempt_us"),
        }
    }
}

/// Process-wide sweep sequence feeding per-sweep trace ids (`fs1`,
/// `fs2`, …). Process-wide rather than per-fleet so two coordinators in
/// one process never mint the same id.
static SWEEP_SEQ: AtomicU64 = AtomicU64::new(0);

/// What one dispatch attempt concluded.
enum Attempt {
    /// The cell's canonical result payload.
    Done(Json),
    /// Back off and retry the same backend (`true` = overloaded,
    /// `false` = deadline).
    Retry(bool),
    /// Deterministic rejection: abort the sweep.
    Reject(ServeError),
    /// Transport or server fault: trip the breaker, move the cell.
    Fault(String),
}

/// How [`Fleet::drive_cell`] left a job.
enum Verdict {
    /// Nothing more to do for this copy (won, deduped, cancelled, or the
    /// sweep aborted).
    Settled,
    /// The member cannot finish this cell: move it elsewhere.
    Failover(String),
}

/// Shared per-sweep state, borrowed by the worker scope.
struct SweepState<'a> {
    archs: &'a [String],
    networks: &'a [String],
    seeds: &'a [u64],
    sample_cap: Option<usize>,
    /// This sweep's propagated trace id: rides every dispatched request's
    /// envelope, so backend spans are pullable (`spans` verb) under it.
    trace_id: &'a str,
    /// First-writer-wins result slots + the hedge-deadline window.
    board: CompletionBoard,
    /// Cells currently executing, for the hedge monitor and cancellation.
    inflight: InFlightTable,
    fatal: Mutex<Option<FleetError>>,
    abort: AtomicBool,
    attempts: AtomicU64,
    retries: AtomicU64,
    failovers: AtomicU64,
    steals: AtomicU64,
    hedges: AtomicU64,
    hedge_wins: AtomicU64,
    joins: AtomicU64,
    leaves: AtomicU64,
    resharded: AtomicU64,
    latencies: Mutex<Vec<Duration>>,
    /// The most recently completed cell as `"arch/network/seed"`, surfaced
    /// through the status file's `progress` object so `top` can show what
    /// the fleet last finished.
    last_cell: Mutex<Option<String>>,
    /// The in-flight probe's cancel handle, so the end of a sweep never
    /// waits out a ping that is riding a stalled backend (the prober is a
    /// scoped thread; scope exit joins it).
    probe_cancel: Mutex<Option<sibia_serve::CancelHandle>>,
    /// Sweep start, the clock for planned membership events.
    started: Instant,
}

impl SweepState<'_> {
    fn cell_coords(&self, flat: usize) -> (&str, &str, u64) {
        let per_arch = self.networks.len() * self.seeds.len();
        (
            &self.archs[flat / per_arch],
            &self.networks[(flat / self.seeds.len()) % self.networks.len()],
            self.seeds[flat % self.seeds.len()],
        )
    }

    fn done(&self) -> bool {
        self.abort.load(Ordering::Relaxed) || self.board.remaining() == 0
    }

    fn fail(&self, err: FleetError) {
        let mut fatal = self.fatal.lock().expect("fatal lock");
        if fatal.is_none() {
            *fatal = Some(err);
        }
        self.abort.store(true, Ordering::Relaxed);
    }

    /// Abort-aware sleep in small increments so workers stay responsive.
    fn sleep(&self, total: Duration) {
        let mut left = total;
        while !left.is_zero() && !self.done() {
            let step = left.min(Duration::from_millis(20));
            thread::sleep(step);
            left = left.saturating_sub(step);
        }
    }
}

/// A dynamically-scheduled multi-backend sweep coordinator.
pub struct Fleet {
    config: FleetConfig,
    membership: Membership,
    metrics: FleetMetrics,
    /// Join/leave requests made between control-loop ticks (or between
    /// sweeps), drained by the next tick.
    commands: Mutex<Vec<MembershipAction>>,
    /// Trace id of the most recently started sweep (see
    /// [`Fleet::last_trace_id`]).
    last_trace_id: Mutex<Option<String>>,
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("endpoints", &self.config.endpoints)
            .finish()
    }
}

impl Fleet {
    /// Builds a coordinator over the configured endpoints. No connection
    /// is dialed yet — backends may come up later; the breakers and the
    /// per-cell retry budget absorb a slow start.
    pub fn new(config: FleetConfig) -> Result<Self, FleetError> {
        if config.endpoints.is_empty() {
            return Err(FleetError::NoEndpoints);
        }
        let membership = Membership::new(&config.endpoints, &member_config(&config));
        registry()
            .gauge("fleet.backends")
            .set(config.endpoints.len() as i64);
        Ok(Self {
            config,
            membership,
            metrics: FleetMetrics::new(),
            commands: Mutex::new(Vec::new()),
            last_trace_id: Mutex::new(None),
        })
    }

    /// The initially configured endpoints (joins do not appear here; see
    /// [`Fleet::members`] for the live roster).
    pub fn endpoints(&self) -> &[String] {
        &self.config.endpoints
    }

    /// The live roster as `(endpoint, state)` pairs, in stable roster
    /// index order.
    pub fn members(&self) -> Vec<(String, MemberState)> {
        self.membership
            .snapshot()
            .iter()
            .map(|m| (m.endpoint.clone(), m.state()))
            .collect()
    }

    /// Requests that `endpoint` join the fleet. Applied by the next
    /// control-loop tick of the running sweep (or at the start of the
    /// next one): a brand-new endpoint is appended in state Joining; a
    /// Dead-but-known endpoint is put back in rotation.
    pub fn join(&self, endpoint: impl Into<String>) {
        self.commands
            .lock()
            .expect("commands lock")
            .push(MembershipAction::Join(endpoint.into()));
    }

    /// Requests that `endpoint` drain out of the fleet: no new work, its
    /// home queue resharded across the survivors, in-flight dispatches
    /// allowed to finish. A departed member never rejoins under the same
    /// roster slot ([`Fleet::join`] appends a fresh one).
    pub fn leave(&self, endpoint: impl Into<String>) {
        self.commands
            .lock()
            .expect("commands lock")
            .push(MembershipAction::Leave(endpoint.into()));
    }

    /// The propagated trace id of the most recently started sweep (`fs1`,
    /// `fs2`, …). Always set by a sweep; backend spans exist under it only
    /// when the backends (and this process) run with tracing enabled.
    pub fn last_trace_id(&self) -> Option<String> {
        self.last_trace_id.lock().expect("trace id lock").clone()
    }

    /// Pulls hierarchy spans recorded under `trace_id` from every roster
    /// member (the `spans` verb), in roster order. A backend that cannot
    /// answer yields `Err(message)` — the merger skips it rather than
    /// failing the whole export.
    #[allow(clippy::type_complexity)]
    pub fn pull_spans(
        &self,
        trace_id: &str,
        limit: Option<usize>,
    ) -> Vec<(String, Result<Json, String>)> {
        self.membership
            .snapshot()
            .iter()
            .map(|member| {
                let outcome = member
                    .pool
                    .checkout()
                    .map_err(|e| format!("connect: {e}"))
                    .and_then(|mut client| {
                        let pulled = client
                            .spans(limit, Some(trace_id))
                            .map_err(|e| e.to_string());
                        if pulled.is_ok() {
                            member.pool.checkin(client);
                        }
                        pulled
                    });
                (member.endpoint.clone(), outcome)
            })
            .collect()
    }

    /// Assembles the fleet-wide Chrome trace for `trace_id`: this process's
    /// `fleet.*` spans plus every backend's pulled spans, each process in
    /// its own `pid` lane with ids rewritten globally unique and propagated
    /// parent links resolved (see [`crate::telemetry::merge_chrome_trace`]).
    pub fn merged_chrome_trace(&self, trace_id: &str, limit: Option<usize>) -> Json {
        let coordinator = tracer().records();
        let backends = self.pull_spans(trace_id, limit);
        crate::telemetry::merge_chrome_trace(trace_id, &coordinator, &backends)
    }
}

impl Fleet {
    /// Runs the (archs × networks × seeds) grid and returns the merged
    /// document — byte-identical to `grid_to_json` of a direct
    /// `simulate_grid` call — plus dispatch statistics.
    pub fn sweep_with_stats(
        &self,
        archs: &[String],
        networks: &[String],
        seeds: &[u64],
        sample_cap: Option<usize>,
    ) -> Result<(Json, SweepStats), FleetError> {
        if archs.is_empty() || networks.is_empty() || seeds.is_empty() {
            return Err(FleetError::EmptyGrid);
        }
        let trace_id = format!("fs{}", SWEEP_SEQ.fetch_add(1, Ordering::Relaxed) + 1);
        *self.last_trace_id.lock().expect("trace id lock") = Some(trace_id.clone());
        let cells = archs.len() * networks.len() * seeds.len();
        let mut sweep_span = tracer().span("fleet.sweep");
        sweep_span.attr("trace_id", &trace_id);
        sweep_span.attr("cells", cells);
        sweep_span.attr("backends", self.membership.len());
        self.metrics.cells_total.add(cells as u64);

        let state = SweepState {
            archs,
            networks,
            seeds,
            sample_cap,
            trace_id: &trace_id,
            board: CompletionBoard::new(cells),
            inflight: InFlightTable::new(),
            fatal: Mutex::new(None),
            abort: AtomicBool::new(false),
            attempts: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            hedges: AtomicU64::new(0),
            hedge_wins: AtomicU64::new(0),
            joins: AtomicU64::new(0),
            leaves: AtomicU64::new(0),
            resharded: AtomicU64::new(0),
            latencies: Mutex::new(Vec::with_capacity(cells)),
            last_cell: Mutex::new(None),
            probe_cancel: Mutex::new(None),
            started: Instant::now(),
        };

        // Membership requests made between sweeps apply before sharding.
        let pending: Vec<MembershipAction> =
            std::mem::take(&mut *self.commands.lock().expect("commands lock"));
        for action in pending {
            self.apply_membership(action, &state);
        }

        // Shard every cell onto its home member among the ones that can
        // take work right now; later joins pick cells up by stealing.
        let initial = self.membership.dispatchable();
        if initial.is_empty() {
            return Err(FleetError::NoEndpoints);
        }
        for flat in 0..cells {
            let (arch, network, seed) = state.cell_coords(flat);
            let home = backend_for_cell(arch, network, seed, initial.len());
            initial[home].queue.push_back(CellJob::new(flat));
        }

        // Per-member baselines, so one Fleet can run many sweeps and the
        // stats still report this sweep's deltas.
        let roster_before = self.membership.snapshot();
        let counters_before: Vec<(u64, u64, u64)> = roster_before
            .iter()
            .map(|m| {
                (
                    m.completed.load(Ordering::SeqCst),
                    m.stolen.load(Ordering::SeqCst),
                    m.hedged.load(Ordering::SeqCst),
                )
            })
            .collect();
        let pool_before: Vec<(u64, u64)> = roster_before.iter().map(|m| m.pool.stats()).collect();

        let mut plan = self.config.membership_plan.clone();
        plan.sort_by_key(|e| e.at);
        let mut next_event = 0usize;

        thread::scope(|s| {
            {
                let state = &state;
                s.spawn(move || self.prober_loop(state));
            }
            // The control loop runs right here on the sweeping thread:
            // spawn workers for every member (including mid-sweep joins),
            // fire planned membership events, drain join/leave requests,
            // finish drains, hedge the overdue, publish status.
            let mut spawned = 0usize;
            let mut tick = 0u64;
            loop {
                let roster = self.membership.snapshot();
                for member in roster.iter().skip(spawned) {
                    for _ in 0..self.config.connections_per_backend.max(1) {
                        let member = Arc::clone(member);
                        let state = &state;
                        s.spawn(move || self.worker_loop(member, state));
                    }
                }
                spawned = roster.len();
                if state.done() {
                    break;
                }

                let elapsed = state.started.elapsed();
                while next_event < plan.len() && plan[next_event].at <= elapsed {
                    self.apply_membership(plan[next_event].action.clone(), &state);
                    next_event += 1;
                }
                let pending: Vec<MembershipAction> =
                    std::mem::take(&mut *self.commands.lock().expect("commands lock"));
                for action in pending {
                    self.apply_membership(action, &state);
                }

                for m in &roster {
                    if m.state() == MemberState::Draining
                        && m.queue.is_empty()
                        && m.inflight.load(Ordering::SeqCst) == 0
                    {
                        m.set_state(MemberState::Dead);
                    }
                }

                if let Some(deadline) = state.board.deadline(&self.config.hedge) {
                    for (flat, busy) in state.inflight.overdue(deadline) {
                        if state.board.is_complete(flat) {
                            continue;
                        }
                        sched_debug!(
                            state,
                            "overdue cell {flat} (deadline {:.1}ms, busy {busy:?})",
                            deadline.as_secs_f64() * 1e3
                        );
                        self.hedge_cell(flat, &busy, &state);
                    }
                }

                registry()
                    .gauge("fleet.backends")
                    .set(self.membership.dispatchable().len() as i64);
                if tick % 20 == 0 {
                    self.write_status(&state);
                }
                tick += 1;
                thread::sleep(Duration::from_millis(10));
            }
            state.abort.store(true, Ordering::Relaxed);
            if let Some(handle) = state.probe_cancel.lock().expect("probe cancel lock").take() {
                handle.cancel();
            }
            self.write_status(&state);
        });

        if let Some(err) = state.fatal.lock().expect("fatal lock").take() {
            return Err(err);
        }

        let roster = self.membership.snapshot();
        for m in &roster {
            let (dials, reuses) = m.pool.stats();
            let (bd, br) = pool_before.get(m.index).copied().unwrap_or((0, 0));
            self.metrics.pool_dials.add(dials - bd);
            self.metrics.pool_reuses.add(reuses - br);
        }
        let delta = |i: usize, now: u64, which: fn(&(u64, u64, u64)) -> u64| {
            now - counters_before.get(i).map_or(0, which)
        };
        let stats = SweepStats {
            cells,
            backends: roster.len(),
            attempts: state.attempts.load(Ordering::Relaxed),
            retries: state.retries.load(Ordering::Relaxed),
            failovers: state.failovers.load(Ordering::Relaxed),
            steals: state.steals.load(Ordering::Relaxed),
            hedges: state.hedges.load(Ordering::Relaxed),
            hedge_wins: state.hedge_wins.load(Ordering::Relaxed),
            hedge_duplicates: state.board.duplicates.load(Ordering::SeqCst),
            joins: state.joins.load(Ordering::Relaxed),
            leaves: state.leaves.load(Ordering::Relaxed),
            resharded_cells: state.resharded.load(Ordering::Relaxed),
            per_backend_cells: roster
                .iter()
                .map(|m| delta(m.index, m.completed.load(Ordering::SeqCst), |c| c.0))
                .collect(),
            per_backend_stolen: roster
                .iter()
                .map(|m| delta(m.index, m.stolen.load(Ordering::SeqCst), |c| c.1))
                .collect(),
            per_backend_hedged: roster
                .iter()
                .map(|m| delta(m.index, m.hedged.load(Ordering::SeqCst), |c| c.2))
                .collect(),
            membership: roster
                .iter()
                .map(|m| (m.endpoint.clone(), m.state().as_str().to_string()))
                .collect(),
            cell_latencies: state.latencies.lock().expect("latency lock").clone(),
        };
        sweep_span.attr("attempts", stats.attempts);
        sweep_span.attr("failovers", stats.failovers);
        sweep_span.attr("steals", stats.steals);
        sweep_span.attr("hedges", stats.hedges);

        let results = state.board.into_results();
        let per_arch = networks.len() * seeds.len();
        let merged = Json::obj(vec![(
            "cells",
            Json::Array(
                results
                    .into_iter()
                    .enumerate()
                    .map(|(flat, result)| {
                        Json::obj(vec![
                            ("arch_index", Json::from(flat / per_arch)),
                            (
                                "network_index",
                                Json::from((flat / seeds.len()) % networks.len()),
                            ),
                            ("seed", Json::from(seeds[flat % seeds.len()])),
                            ("result", result),
                        ])
                    })
                    .collect(),
            ),
        )]);
        Ok((merged, stats))
    }

    /// [`Fleet::sweep_with_stats`] without the statistics.
    pub fn sweep(
        &self,
        archs: &[String],
        networks: &[String],
        seeds: &[u64],
        sample_cap: Option<usize>,
    ) -> Result<Json, FleetError> {
        self.sweep_with_stats(archs, networks, seeds, sample_cap)
            .map(|(json, _)| json)
    }

    fn worker_loop(&self, member: Arc<Member>, state: &SweepState<'_>) {
        loop {
            if state.done() {
                return;
            }
            if let Some(mut job) = member.queue.pop_front() {
                if !member.state().is_dispatchable() {
                    // The member died or drained with this still queued
                    // (e.g. pushed by a failover fallback): bounce it, at
                    // the cost of one attempt so dead fleets fail typed
                    // instead of ping-ponging forever.
                    job.attempts += 1;
                    self.failover(member.index, job, "member out of rotation", state);
                } else {
                    self.run_cell(&member, job, state);
                }
                continue;
            }
            if self.config.steal && member.state().is_dispatchable() {
                if let Some(job) = self.steal_job(&member, state) {
                    self.run_cell(&member, job, state);
                    continue;
                }
            }
            thread::sleep(Duration::from_millis(5));
        }
    }

    /// An idle worker's steal: pull from the back of the deepest
    /// dispatchable queue that is not our own.
    fn steal_job(&self, thief: &Member, state: &SweepState<'_>) -> Option<CellJob> {
        let members = self.membership.snapshot();
        let victim = pick_victim(&members, thief.index)?;
        let job = victim.queue.steal_back()?;
        sched_debug!(
            state,
            "steal: member {} took cell {} from member {}",
            thief.index,
            job.flat,
            victim.index
        );
        thief.stolen.fetch_add(1, Ordering::SeqCst);
        state.steals.fetch_add(1, Ordering::Relaxed);
        self.metrics.steal_total.inc();
        let mut span = tracer().span("fleet.steal");
        span.attr("trace_id", state.trace_id);
        span.attr("thief", thief.index);
        span.attr("victim", victim.index);
        span.attr("cell", job.flat);
        drop(span);
        Some(job)
    }

    /// Executes one job on `member`: register in flight, drive it to a
    /// settled outcome, then fail over if the member couldn't finish it.
    fn run_cell(&self, member: &Arc<Member>, mut job: CellJob, state: &SweepState<'_>) {
        if state.board.is_complete(job.flat) {
            // A hedge loser popped after its twin already won: drop unrun.
            return;
        }
        if !member.breaker_available() {
            // The skip consumes attempt budget: when every breaker is open
            // the cell bounces at most `budget` times and then fails,
            // instead of ping-ponging between dead backends forever.
            job.attempts += 1;
            self.failover(member.index, job, "circuit breaker open", state);
            return;
        }
        sched_debug!(
            state,
            "run: cell {} on member {} (attempts {}, hedge {})",
            job.flat,
            member.index,
            job.attempts,
            job.hedge
        );
        state.inflight.register(job.flat, member.index);
        member.inflight.fetch_add(1, Ordering::SeqCst);
        let verdict = self.drive_cell(member, &mut job, state);
        member.inflight.fetch_sub(1, Ordering::SeqCst);
        // Deregister *before* failing over, so the budget-exhausted check
        // in `failover` counts only the *other* copies still in flight.
        state.inflight.deregister(job.flat, member.index);
        if let Verdict::Failover(why) = verdict {
            self.failover(member.index, job, &why, state);
        }
    }

    /// Drives one cell on `member` until it completes, is out-raced by its
    /// hedge twin, retries out its same-backend budget, or aborts the
    /// sweep.
    fn drive_cell(&self, member: &Member, job: &mut CellJob, state: &SweepState<'_>) -> Verdict {
        let started = Instant::now();
        let mut local_attempt = 0u32;
        loop {
            if state.done() || state.board.is_complete(job.flat) {
                return Verdict::Settled;
            }
            job.attempts += 1;
            state.attempts.fetch_add(1, Ordering::Relaxed);
            self.metrics.dispatch_total.inc();
            let attempt_start = Instant::now();
            let outcome = {
                let mut span = tracer().span("fleet.dispatch");
                span.attr("trace_id", state.trace_id);
                span.attr("backend", member.index);
                span.attr("cell", job.flat);
                span.attr("attempt", job.attempts);
                span.attr("hedge", u64::from(job.hedge));
                self.attempt_cell(member, job.flat, span.id(), state)
            };
            self.metrics.attempt_us.record(attempt_start.elapsed());
            match outcome {
                Attempt::Done(result) => {
                    member
                        .breaker
                        .lock()
                        .expect("breaker lock")
                        .record_success();
                    if member.state() == MemberState::Joining {
                        member.set_state(MemberState::Active);
                    }
                    let latency = started.elapsed();
                    sched_debug!(
                        state,
                        "done: cell {} on member {} in {:.1}ms (hedge {})",
                        job.flat,
                        member.index,
                        latency.as_secs_f64() * 1e3,
                        job.hedge
                    );
                    match state.board.complete(job.flat, result, latency) {
                        Completion::Win => {
                            member.completed.fetch_add(1, Ordering::SeqCst);
                            self.metrics.cell_us.record(latency);
                            state.latencies.lock().expect("latency lock").push(latency);
                            if job.hedge {
                                state.hedge_wins.fetch_add(1, Ordering::Relaxed);
                                self.metrics.hedge_win_total.inc();
                            }
                            let (arch, network, seed) = state.cell_coords(job.flat);
                            *state.last_cell.lock().expect("last cell lock") =
                                Some(format!("{arch}/{network}/{seed}"));
                            // Unblock the losing copy right now instead of
                            // letting it ride out the straggler.
                            state.inflight.cancel_others(job.flat, member.index);
                        }
                        Completion::Duplicate => {
                            self.metrics.hedge_duplicate_total.inc();
                        }
                    }
                    return Verdict::Settled;
                }
                Attempt::Retry(overloaded) => {
                    // Healthy-but-busy: the breaker is NOT fed, the cell
                    // stays on its backend, and the retry waits out a
                    // deterministic-jitter backoff.
                    if overloaded {
                        self.metrics.overloaded_total.inc();
                    }
                    state.retries.fetch_add(1, Ordering::Relaxed);
                    self.metrics.retry_total.inc();
                    local_attempt += 1;
                    if local_attempt >= self.config.max_attempts_per_backend {
                        return Verdict::Failover(
                            if overloaded {
                                "overloaded"
                            } else {
                                "deadline exceeded"
                            }
                            .to_owned(),
                        );
                    }
                    let delay = self
                        .config
                        .backoff
                        .delay(job.flat as u64, local_attempt - 1);
                    let mut span = tracer().span("fleet.retry");
                    span.attr("backend", member.index);
                    span.attr("cell", job.flat);
                    span.attr("delay_us", delay.as_micros());
                    drop(span);
                    state.sleep(delay);
                }
                Attempt::Reject(err) => {
                    state.fail(FleetError::Rejected(err));
                    return Verdict::Settled;
                }
                Attempt::Fault(message) => {
                    if state.board.is_complete(job.flat) {
                        // Our socket was shut down by the winning twin;
                        // the backend did nothing wrong, so the breaker
                        // is not fed and the cell needs no failover.
                        return Verdict::Settled;
                    }
                    let newly_opened = member
                        .breaker
                        .lock()
                        .expect("breaker lock")
                        .record_failure();
                    if newly_opened {
                        self.metrics.breaker_open_total.inc();
                        self.on_breaker_opened(member, state);
                    }
                    return Verdict::Failover(message);
                }
            }
        }
    }

    /// One wire round trip for one cell against one member.
    fn attempt_cell(
        &self,
        member: &Member,
        flat: usize,
        dispatch_span: Option<u64>,
        state: &SweepState<'_>,
    ) -> Attempt {
        let mut client = match member.pool.checkout() {
            Ok(c) => c,
            Err(e) => return Attempt::Fault(format!("connect: {e}")),
        };
        // Park a cancel handle so a winning hedge twin can cut this call
        // short; detached the moment the call returns on its own.
        if let Ok(handle) = client.cancel_handle() {
            state.inflight.attach_cancel(flat, member.index, handle);
        }
        let (arch, network, seed) = state.cell_coords(flat);
        let mut fields = vec![
            ("kind", Json::from("simulate")),
            ("arch", Json::from(arch)),
            ("network", Json::from(network)),
            ("seed", Json::from(seed)),
            (
                "timeout_ms",
                Json::from(
                    self.config
                        .request_timeout
                        .as_millis()
                        .min(u128::from(u64::MAX)) as u64,
                ),
            ),
        ];
        if let Some(cap) = state.sample_cap {
            fields.push(("sample_cap", Json::from(cap)));
        }
        if let Some(tile) = self.config.tile {
            fields.push(("tile", Json::from(tile)));
        }
        // Trace context rides the request *envelope*, never the result, so
        // the merged document stays byte-identical whether or not anyone is
        // tracing. The parent link is present only when the coordinator's
        // tracer recorded the dispatch span.
        if let Some(ctx) = TraceContext::new(state.trace_id.to_owned(), dispatch_span) {
            fields.push(("trace", ctx.to_json()));
        }
        let outcome = client.call(Json::obj(fields));
        state.inflight.detach_cancel(flat, member.index);
        match outcome {
            Ok(result) => {
                member.pool.checkin(client);
                Attempt::Done(result)
            }
            Err(ClientError::Overloaded(_)) => {
                // The connection is fine — the admission queue was full.
                member.pool.checkin(client);
                Attempt::Retry(true)
            }
            Err(ClientError::Server(e)) => match e.code {
                ErrorCode::DeadlineExceeded => {
                    member.pool.checkin(client);
                    Attempt::Retry(false)
                }
                ErrorCode::BadRequest | ErrorCode::UnknownArch | ErrorCode::UnknownNetwork => {
                    member.pool.checkin(client);
                    Attempt::Reject(e)
                }
                // shutting_down, internal, and anything future-unknown:
                // the backend is in trouble; connection dropped.
                _ => Attempt::Fault(format!("server fault [{}]: {}", e.code.as_str(), e.message)),
            },
            Err(ClientError::Io(e)) => Attempt::Fault(format!("io: {e}")),
            Err(ClientError::Protocol(msg)) => Attempt::Fault(format!("protocol: {msg}")),
            // A desynced stream cannot be trusted for further calls:
            // treat it like a broken connection.
            Err(e @ ClientError::IdMismatch { .. }) => Attempt::Fault(format!("protocol: {e}")),
        }
    }

    /// Moves a cell to the next dispatchable member (or the next roster
    /// slot outright when nobody qualifies — the attempt cap, not the
    /// roster state, is what finally fails a cell).
    fn failover(&self, from: usize, job: CellJob, why: &str, state: &SweepState<'_>) {
        let members = self.membership.snapshot();
        let n = members.len().max(1);
        let budget = self.config.max_attempts_per_backend * n as u32;
        if job.attempts >= budget {
            // A hedge twin may still be computing this cell; the sweep is
            // only lost when the slot is empty AND nobody is on it.
            if state.board.is_complete(job.flat) || state.inflight.live(job.flat) > 0 {
                return;
            }
            let (arch, network, seed) = state.cell_coords(job.flat);
            state.fail(FleetError::CellFailed {
                arch: arch.to_owned(),
                network: network.to_owned(),
                seed,
                attempts: job.attempts,
                last_error: why.to_owned(),
            });
            return;
        }
        state.failovers.fetch_add(1, Ordering::Relaxed);
        self.metrics.failover_total.inc();
        // Rotation from the next slot: prefer dispatchable members whose
        // breaker admits traffic, then any dispatchable member, then the
        // next slot outright (its worker will bounce the job back here,
        // burning budget toward a typed CellFailed instead of a hang).
        let mut target = None;
        for k in 1..=n {
            let candidate = &members[(from + k) % n];
            if candidate.state().is_dispatchable() && candidate.breaker_available() {
                target = Some(Arc::clone(candidate));
                break;
            }
        }
        if target.is_none() {
            for k in 1..=n {
                let candidate = &members[(from + k) % n];
                if candidate.state().is_dispatchable() {
                    target = Some(Arc::clone(candidate));
                    break;
                }
            }
        }
        let target = target.unwrap_or_else(|| Arc::clone(&members[(from + 1) % n]));
        target.queue.push_back(job);
    }
}

impl Fleet {
    /// A member's breaker just opened: take it out of rotation and move
    /// its queued work to the survivors. The prober keeps pinging it (it
    /// did not *leave*) and resurrects it on the first successful probe.
    fn on_breaker_opened(&self, member: &Member, state: &SweepState<'_>) {
        if member.state() == MemberState::Dead {
            return;
        }
        member.set_state(MemberState::Dead);
        let mut span = tracer().span("fleet.membership");
        span.attr("trace_id", state.trace_id);
        span.attr("action", "dead");
        span.attr("endpoint", member.endpoint.as_str());
        drop(span);
        self.reshard(member, state);
        registry()
            .gauge("fleet.backends")
            .set(self.membership.dispatchable().len() as i64);
    }

    /// Drains `member`'s home queue and re-homes the cells across the
    /// dispatchable survivors with the same FNV shard (over the survivor
    /// list), so the redistribution is itself deterministic.
    fn reshard(&self, member: &Member, state: &SweepState<'_>) {
        let jobs = member.queue.drain();
        if jobs.is_empty() {
            return;
        }
        let survivors: Vec<Arc<Member>> = self
            .membership
            .snapshot()
            .into_iter()
            .filter(|m| m.index != member.index && m.state().is_dispatchable())
            .collect();
        if survivors.is_empty() {
            // Nobody to take the work: put it back. The member's own
            // workers will bounce each job through `failover`, burning
            // budget toward a typed CellFailed instead of hanging.
            for job in jobs {
                member.queue.push_back(job);
            }
            return;
        }
        state
            .resharded
            .fetch_add(jobs.len() as u64, Ordering::Relaxed);
        self.metrics.reshard_cells_total.add(jobs.len() as u64);
        for job in jobs {
            let (arch, network, seed) = state.cell_coords(job.flat);
            let target = &survivors[backend_for_cell(arch, network, seed, survivors.len())];
            target.queue.push_back(job);
        }
    }

    /// Duplicates an overdue cell onto the least-loaded dispatchable
    /// member not already working on it. The duplicate jumps its target's
    /// queue (the cell is past the deadline by definition).
    fn hedge_cell(&self, flat: usize, busy: &[usize], state: &SweepState<'_>) {
        let members = self.membership.snapshot();
        let target = members
            .iter()
            .filter(|m| !busy.contains(&m.index))
            .filter(|m| m.state().is_dispatchable() && m.breaker_available())
            .min_by_key(|m| m.queue.len())
            .map(Arc::clone);
        let Some(target) = target else {
            // Nowhere to hedge right now; the next monitor tick retries.
            return;
        };
        // Mark before pushing: the monitor must never double-hedge a cell
        // it sees overdue on two consecutive ticks.
        state.inflight.mark_hedged(flat);
        target.hedged.fetch_add(1, Ordering::SeqCst);
        state.hedges.fetch_add(1, Ordering::Relaxed);
        self.metrics.hedge_total.inc();
        let mut span = tracer().span("fleet.hedge");
        span.attr("trace_id", state.trace_id);
        span.attr("cell", flat);
        span.attr("target", target.index);
        drop(span);
        target.queue.push_front(CellJob {
            flat,
            attempts: 0,
            hedge: true,
        });
    }

    /// Applies one join/leave to the roster.
    fn apply_membership(&self, action: MembershipAction, state: &SweepState<'_>) {
        match action {
            MembershipAction::Join(endpoint) => {
                if let Some(existing) = self.membership.find(&endpoint) {
                    if existing.state() != MemberState::Dead {
                        return; // already in rotation
                    }
                    existing.set_state(MemberState::Joining);
                } else {
                    self.membership
                        .join(endpoint.clone(), &member_config(&self.config));
                }
                state.joins.fetch_add(1, Ordering::Relaxed);
                self.metrics.join_total.inc();
                let mut span = tracer().span("fleet.membership");
                span.attr("trace_id", state.trace_id);
                span.attr("action", "join");
                span.attr("endpoint", endpoint.as_str());
            }
            MembershipAction::Leave(endpoint) => {
                let Some(member) = self.membership.find(&endpoint) else {
                    return; // unknown or already departed
                };
                member.mark_left();
                member.set_state(MemberState::Draining);
                self.reshard(&member, state);
                state.leaves.fetch_add(1, Ordering::Relaxed);
                self.metrics.leave_total.inc();
                let mut span = tracer().span("fleet.membership");
                span.attr("trace_id", state.trace_id);
                span.attr("action", "leave");
                span.attr("endpoint", endpoint.as_str());
            }
        }
        registry()
            .gauge("fleet.backends")
            .set(self.membership.dispatchable().len() as i64);
    }

    /// Atomically rewrites the status file (tmp + rename) with a roster
    /// snapshot, when [`FleetConfig::status_path`] is set.
    fn write_status(&self, state: &SweepState<'_>) {
        let Some(path) = &self.config.status_path else {
            return;
        };
        let members: Vec<Json> = self
            .membership
            .snapshot()
            .iter()
            .map(|m| {
                Json::obj(vec![
                    ("endpoint", Json::from(m.endpoint.as_str())),
                    ("state", Json::from(m.state().as_str())),
                    ("queued", Json::from(m.queue.len())),
                    ("inflight", Json::from(m.inflight.load(Ordering::SeqCst))),
                    ("completed", Json::from(m.completed.load(Ordering::SeqCst))),
                    ("stolen", Json::from(m.stolen.load(Ordering::SeqCst))),
                    ("hedged", Json::from(m.hedged.load(Ordering::SeqCst))),
                ])
            })
            .collect();
        let total = state.archs.len() * state.networks.len() * state.seeds.len();
        let remaining = state.board.remaining();
        let last_cell = state
            .last_cell
            .lock()
            .expect("last cell lock")
            .clone()
            .unwrap_or_default();
        let doc = Json::obj(vec![
            ("trace_id", Json::from(state.trace_id)),
            ("remaining", Json::from(remaining)),
            (
                "progress",
                Json::obj(vec![
                    ("done", Json::from(total.saturating_sub(remaining))),
                    ("total", Json::from(total)),
                    ("cell", Json::from(last_cell.as_str())),
                ]),
            ),
            ("members", Json::Array(members)),
        ]);
        let tmp = path.with_extension("status.tmp");
        if std::fs::write(&tmp, doc.to_string()).is_ok() {
            let _ = std::fs::rename(&tmp, path);
        }
    }

    /// Background `ping` prober: keeps breaker and membership state honest
    /// even while no requests are flowing to a member (e.g. everything
    /// failed over away from it), and resurrects Dead members that did not
    /// explicitly leave.
    fn prober_loop(&self, state: &SweepState<'_>) {
        loop {
            state.sleep(self.config.probe_interval);
            if state.done() {
                return;
            }
            for member in self.membership.snapshot() {
                if state.done() {
                    return;
                }
                if member.has_left() {
                    continue;
                }
                self.metrics.probe_total.inc();
                let alive = Client::with_timeouts(
                    member.endpoint.as_str(),
                    Some(self.config.connect_timeout.min(Duration::from_millis(500))),
                    Some(Duration::from_secs(1)),
                    Some(Duration::from_secs(1)),
                )
                .and_then(|mut c| {
                    // Publish the in-flight probe's cancel handle: when the
                    // sweep completes while this ping is riding a stalled
                    // backend, the control loop shuts the socket instead of
                    // letting scope-join wait out the stall.
                    if let Ok(handle) = c.cancel_handle() {
                        *state.probe_cancel.lock().expect("probe cancel lock") = Some(handle);
                    }
                    let outcome = c.ping();
                    state.probe_cancel.lock().expect("probe cancel lock").take();
                    outcome
                })
                .is_ok();
                if state.done() {
                    // A cancelled probe's failure is an artifact of sweep
                    // shutdown, not a backend signal: never feed the breaker.
                    return;
                }
                if alive {
                    member
                        .breaker
                        .lock()
                        .expect("breaker lock")
                        .record_success();
                    match member.state() {
                        MemberState::Dead => {
                            member.set_state(MemberState::Active);
                            let mut span = tracer().span("fleet.membership");
                            span.attr("trace_id", state.trace_id);
                            span.attr("action", "resurrect");
                            span.attr("endpoint", member.endpoint.as_str());
                        }
                        MemberState::Joining => member.set_state(MemberState::Active),
                        _ => {}
                    }
                } else {
                    self.metrics.probe_failures.inc();
                    let newly_opened = member
                        .breaker
                        .lock()
                        .expect("breaker lock")
                        .record_failure();
                    if newly_opened {
                        self.metrics.breaker_open_total.inc();
                        self.on_breaker_opened(&member, state);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_endpoint_list_is_rejected() {
        assert!(matches!(
            Fleet::new(FleetConfig::new(vec![])),
            Err(FleetError::NoEndpoints)
        ));
    }

    #[test]
    fn empty_grid_is_rejected_without_dialing() {
        // The endpoint is a black hole; an empty grid must error before
        // any connection attempt.
        let fleet = Fleet::new(FleetConfig::new(vec!["127.0.0.1:1".into()])).unwrap();
        assert!(matches!(
            fleet.sweep(&[], &["dgcnn".into()], &[1], None),
            Err(FleetError::EmptyGrid)
        ));
        assert!(matches!(
            fleet.sweep(&["sibia".into()], &[], &[1], None),
            Err(FleetError::EmptyGrid)
        ));
        assert!(matches!(
            fleet.sweep(&["sibia".into()], &["dgcnn".into()], &[], None),
            Err(FleetError::EmptyGrid)
        ));
    }

    fn bare_state<'a>(
        archs: &'a [String],
        networks: &'a [String],
        seeds: &'a [u64],
    ) -> SweepState<'a> {
        SweepState {
            archs,
            networks,
            seeds,
            sample_cap: None,
            trace_id: "fs-test",
            board: CompletionBoard::new(0),
            inflight: InFlightTable::new(),
            fatal: Mutex::new(None),
            abort: AtomicBool::new(false),
            attempts: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            hedges: AtomicU64::new(0),
            hedge_wins: AtomicU64::new(0),
            joins: AtomicU64::new(0),
            leaves: AtomicU64::new(0),
            resharded: AtomicU64::new(0),
            latencies: Mutex::new(Vec::new()),
            probe_cancel: Mutex::new(None),
            started: Instant::now(),
            last_cell: Mutex::new(None),
        }
    }

    #[test]
    fn cell_coords_walk_the_grid_row_major() {
        let archs = vec!["a".to_string(), "b".to_string()];
        let networks = vec!["x".to_string(), "y".to_string()];
        let seeds = vec![1u64, 2];
        let state = bare_state(&archs, &networks, &seeds);
        let mut flat = 0;
        for a in ["a", "b"] {
            for n in ["x", "y"] {
                for s in [1u64, 2] {
                    assert_eq!(state.cell_coords(flat), (a, n, s));
                    flat += 1;
                }
            }
        }
    }

    #[test]
    fn all_endpoints_dead_fails_with_cell_failed_not_a_hang() {
        // Two unreachable backends: the cell must burn its budget and the
        // sweep must return CellFailed (never deadlock).
        let l1 = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let l2 = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let (a1, a2) = (l1.local_addr().unwrap(), l2.local_addr().unwrap());
        drop((l1, l2));
        let mut config = FleetConfig::new(vec![a1.to_string(), a2.to_string()]);
        config.max_attempts_per_backend = 1;
        config.connect_timeout = Duration::from_millis(200);
        config.probe_interval = Duration::from_secs(30); // stay out of the way
        let fleet = Fleet::new(config).unwrap();
        match fleet.sweep(&["sibia".into()], &["dgcnn".into()], &[1], Some(64)) {
            Err(FleetError::CellFailed { attempts, .. }) => assert!(attempts >= 2),
            other => panic!("expected CellFailed, got {other:?}"),
        }
    }

    #[test]
    fn join_and_leave_requests_survive_until_the_next_sweep() {
        let fleet = Fleet::new(FleetConfig::new(vec!["127.0.0.1:1".into()])).unwrap();
        fleet.join("127.0.0.1:2");
        fleet.leave("127.0.0.1:1");
        // Nothing applied yet: commands wait for a control-loop tick.
        assert_eq!(fleet.members().len(), 1);
        assert_eq!(fleet.members()[0].1, MemberState::Active);
        assert_eq!(fleet.commands.lock().unwrap().len(), 2);
    }
}
