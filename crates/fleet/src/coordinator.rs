//! The sweep coordinator: shard, dispatch, retry, fail over, merge.
//!
//! A [`Fleet`] owns a static list of `sibia-serve` endpoints and runs a
//! sweep grid across them as independent per-cell `simulate` requests:
//!
//! 1. every `(arch, network, seed)` cell is assigned a *home* backend by
//!    the deterministic FNV shard ([`crate::shard`]);
//! 2. per-backend dispatch workers drain their queue over pooled
//!    connections with a per-request deadline (`timeout_ms` on the wire);
//! 3. `overloaded` / `deadline_exceeded` answers retry the **same**
//!    backend after a deterministic-jitter backoff ([`crate::backoff`]) —
//!    the backend is healthy, just busy;
//! 4. transport faults and server-side faults (`internal`,
//!    `shutting_down`) trip the backend's circuit breaker
//!    ([`crate::breaker`]) and **fail the cell over** to the next healthy
//!    backend;
//! 5. deterministic rejections (`bad_request`, `unknown_arch`,
//!    `unknown_network`) abort the whole sweep — every backend would
//!    reject the same way, so retrying anywhere is futile;
//! 6. completed cells land in a slot table indexed by the cell's flat
//!    grid position, and the merged document is emitted in row-major
//!    (arch, network, seed) order.
//!
//! ## Why the merge is byte-identical
//!
//! The server's `simulate` handler computes each cell with the same
//! `Simulator` configuration the grid engine gives a cell (same seed
//! override, same default sample cap) and serializes it with the *pure*
//! [`sibia_serve::protocol::network_result_to_json`]; the canonical JSON
//! layer makes `parse ∘ serialize` the identity on canonical text, so the
//! `result` payload the coordinator reads back is byte-for-byte what
//! `grid_to_json` would have embedded for that cell. Reassembling the
//! slots in flat order therefore reproduces `grid_to_json(simulate_grid(…))`
//! exactly — regardless of backend count, which backend computed which
//! cell, how often a cell was retried, or the order cells completed in.
//! The integration suite pins this against live servers, including a
//! mid-sweep kill.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use sibia_obs::{registry, tracer, Counter, Histogram, Json, TraceContext};
use sibia_serve::{Client, ClientError, ErrorCode, ServeError};

use crate::backoff::BackoffPolicy;
use crate::breaker::CircuitBreaker;
use crate::pool::ClientPool;
use crate::shard::backend_for_cell;

/// How a sweep can fail, from the caller's point of view.
#[derive(Debug)]
pub enum FleetError {
    /// The endpoint list was empty.
    NoEndpoints,
    /// `archs`, `networks`, or `seeds` was empty.
    EmptyGrid,
    /// A backend deterministically rejected a cell (`bad_request`,
    /// `unknown_arch`, `unknown_network`): every backend would answer the
    /// same, so the sweep aborts instead of retrying.
    Rejected(ServeError),
    /// One cell exhausted its attempt budget across all backends.
    CellFailed {
        /// Architecture name of the failed cell.
        arch: String,
        /// Network name of the failed cell.
        network: String,
        /// Seed of the failed cell.
        seed: u64,
        /// Total dispatch attempts spent on the cell.
        attempts: u32,
        /// The last error observed, for the log.
        last_error: String,
    },
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::NoEndpoints => write!(f, "fleet has no endpoints"),
            FleetError::EmptyGrid => write!(f, "sweep grid is empty"),
            FleetError::Rejected(e) => {
                write!(f, "backend rejected sweep [{}]: {}", e.code.as_str(), e.message)
            }
            FleetError::CellFailed {
                arch,
                network,
                seed,
                attempts,
                last_error,
            } => write!(
                f,
                "cell ({arch}, {network}, seed {seed}) failed after {attempts} attempts: {last_error}"
            ),
        }
    }
}

impl std::error::Error for FleetError {}

/// Coordinator configuration. [`FleetConfig::new`] gives defaults tuned
/// for LAN backends; every knob is public.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Backend endpoints (`host:port`), order-significant: the shard
    /// assignment and failover rotation are relative to this list.
    pub endpoints: Vec<String>,
    /// Concurrent dispatch workers (and pooled connections) per backend.
    pub connections_per_backend: usize,
    /// TCP connect timeout per dial.
    pub connect_timeout: Duration,
    /// Per-request deadline, sent as `timeout_ms` and enforced locally via
    /// the socket read timeout (with slack for transit).
    pub request_timeout: Duration,
    /// Retry budget *per backend* for back-off-able answers
    /// (`overloaded`, `deadline_exceeded`); the total attempt budget of a
    /// cell is `max_attempts_per_backend × endpoints.len()`.
    pub max_attempts_per_backend: u32,
    /// Retry delay policy (deterministic jitter).
    pub backoff: BackoffPolicy,
    /// Consecutive faults that open a backend's circuit breaker.
    pub breaker_threshold: u32,
    /// How long an open breaker rejects before admitting a trial.
    pub breaker_cooldown: Duration,
    /// Health-probe (`ping`) period; probes feed the breakers.
    pub probe_interval: Duration,
}

impl FleetConfig {
    /// Defaults for the given endpoints.
    pub fn new(endpoints: Vec<String>) -> Self {
        Self {
            endpoints,
            connections_per_backend: 2,
            connect_timeout: Duration::from_secs(5),
            request_timeout: Duration::from_secs(60),
            max_attempts_per_backend: 3,
            backoff: BackoffPolicy::default(),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(500),
            probe_interval: Duration::from_millis(200),
        }
    }
}

/// What one sweep did, beyond the result document.
#[derive(Debug, Clone)]
pub struct SweepStats {
    /// Grid cells dispatched.
    pub cells: usize,
    /// Backends configured.
    pub backends: usize,
    /// Total dispatch attempts (incl. retries and failovers).
    pub attempts: u64,
    /// Same-backend retries after `overloaded`/`deadline_exceeded`.
    pub retries: u64,
    /// Cells re-dispatched to a different backend.
    pub failovers: u64,
    /// Cells completed per backend (by endpoint index).
    pub per_backend_cells: Vec<u64>,
    /// End-to-end latency of every completed cell (dispatch to slot),
    /// unsorted.
    pub cell_latencies: Vec<Duration>,
}

/// Cached handles to the `fleet.*` instruments in the global registry.
struct FleetMetrics {
    cells_total: Arc<Counter>,
    dispatch_total: Arc<Counter>,
    retry_total: Arc<Counter>,
    failover_total: Arc<Counter>,
    overloaded_total: Arc<Counter>,
    breaker_open_total: Arc<Counter>,
    probe_total: Arc<Counter>,
    probe_failures: Arc<Counter>,
    pool_dials: Arc<Counter>,
    pool_reuses: Arc<Counter>,
    cell_us: Arc<Histogram>,
    attempt_us: Arc<Histogram>,
}

impl FleetMetrics {
    fn new() -> Self {
        let r = registry();
        Self {
            cells_total: r.counter("fleet.cells_total"),
            dispatch_total: r.counter("fleet.dispatch_total"),
            retry_total: r.counter("fleet.retry_total"),
            failover_total: r.counter("fleet.failover_total"),
            overloaded_total: r.counter("fleet.overloaded_total"),
            breaker_open_total: r.counter("fleet.breaker_open_total"),
            probe_total: r.counter("fleet.probe_total"),
            probe_failures: r.counter("fleet.probe_failures"),
            pool_dials: r.counter("fleet.pool.dials"),
            pool_reuses: r.counter("fleet.pool.reuses"),
            cell_us: r.histogram("fleet.cell_us"),
            attempt_us: r.histogram("fleet.attempt_us"),
        }
    }
}

/// Process-wide sweep sequence feeding per-sweep trace ids (`fs1`,
/// `fs2`, …). Process-wide rather than per-fleet so two coordinators in
/// one process never mint the same id.
static SWEEP_SEQ: AtomicU64 = AtomicU64::new(0);

/// One cell traveling through the dispatch machinery.
#[derive(Debug, Clone, Copy)]
struct CellJob {
    /// Flat row-major grid index (also the slot index).
    flat: usize,
    /// Dispatch attempts spent so far, across all backends.
    attempts: u32,
}

/// What one dispatch attempt concluded.
enum Attempt {
    /// The cell's canonical result payload.
    Done(Json),
    /// Back off and retry the same backend (`true` = overloaded,
    /// `false` = deadline).
    Retry(bool),
    /// Deterministic rejection: abort the sweep.
    Reject(ServeError),
    /// Transport or server fault: trip the breaker, move the cell.
    Fault(String),
}

/// Shared per-sweep state, borrowed by the worker scope.
struct SweepState<'a> {
    archs: &'a [String],
    networks: &'a [String],
    seeds: &'a [u64],
    sample_cap: Option<usize>,
    /// This sweep's propagated trace id: rides every dispatched request's
    /// envelope, so backend spans are pullable (`spans` verb) under it.
    trace_id: &'a str,
    slots: Vec<Mutex<Option<Json>>>,
    senders: Vec<Sender<CellJob>>,
    remaining: AtomicUsize,
    fatal: Mutex<Option<FleetError>>,
    abort: AtomicBool,
    attempts: AtomicU64,
    retries: AtomicU64,
    failovers: AtomicU64,
    per_backend_cells: Vec<AtomicU64>,
    latencies: Mutex<Vec<Duration>>,
}

impl SweepState<'_> {
    fn cell_coords(&self, flat: usize) -> (&str, &str, u64) {
        let per_arch = self.networks.len() * self.seeds.len();
        (
            &self.archs[flat / per_arch],
            &self.networks[(flat / self.seeds.len()) % self.networks.len()],
            self.seeds[flat % self.seeds.len()],
        )
    }

    fn done(&self) -> bool {
        self.abort.load(Ordering::Relaxed) || self.remaining.load(Ordering::Relaxed) == 0
    }

    fn fail(&self, err: FleetError) {
        let mut fatal = self.fatal.lock().expect("fatal lock");
        if fatal.is_none() {
            *fatal = Some(err);
        }
        self.abort.store(true, Ordering::Relaxed);
    }

    /// Abort-aware sleep in small increments so workers stay responsive.
    fn sleep(&self, total: Duration) {
        let mut left = total;
        while !left.is_zero() && !self.done() {
            let step = left.min(Duration::from_millis(20));
            thread::sleep(step);
            left = left.saturating_sub(step);
        }
    }
}

/// A sharded multi-backend sweep coordinator.
pub struct Fleet {
    config: FleetConfig,
    pools: Vec<Arc<ClientPool>>,
    breakers: Vec<Mutex<CircuitBreaker>>,
    metrics: FleetMetrics,
    /// Trace id of the most recently started sweep (see
    /// [`Fleet::last_trace_id`]).
    last_trace_id: Mutex<Option<String>>,
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("endpoints", &self.config.endpoints)
            .finish()
    }
}

impl Fleet {
    /// Builds a coordinator over the configured endpoints. No connection
    /// is dialed yet — backends may come up later; the breakers and the
    /// per-cell retry budget absorb a slow start.
    pub fn new(config: FleetConfig) -> Result<Self, FleetError> {
        if config.endpoints.is_empty() {
            return Err(FleetError::NoEndpoints);
        }
        // Socket read timeout = request deadline + slack, so the server
        // gets to answer `deadline_exceeded` itself before the client cuts
        // the connection (a typed answer retries; a cut connection would
        // needlessly count as a backend fault).
        let io_timeout = config.request_timeout + Duration::from_secs(10);
        let pools = config
            .endpoints
            .iter()
            .map(|e| {
                Arc::new(ClientPool::new(
                    e.clone(),
                    config.connect_timeout,
                    io_timeout,
                    config.connections_per_backend,
                ))
            })
            .collect();
        let breakers = config
            .endpoints
            .iter()
            .map(|_| {
                Mutex::new(CircuitBreaker::new(
                    config.breaker_threshold,
                    config.breaker_cooldown,
                ))
            })
            .collect();
        registry()
            .gauge("fleet.backends")
            .set(config.endpoints.len() as i64);
        Ok(Self {
            config,
            pools,
            breakers,
            metrics: FleetMetrics::new(),
            last_trace_id: Mutex::new(None),
        })
    }

    /// The configured endpoints.
    pub fn endpoints(&self) -> &[String] {
        &self.config.endpoints
    }

    /// The propagated trace id of the most recently started sweep (`fs1`,
    /// `fs2`, …). Always set by a sweep; backend spans exist under it only
    /// when the backends (and this process) run with tracing enabled.
    pub fn last_trace_id(&self) -> Option<String> {
        self.last_trace_id.lock().expect("trace id lock").clone()
    }

    /// Pulls hierarchy spans recorded under `trace_id` from every backend
    /// (the `spans` verb), in endpoint order. A backend that cannot answer
    /// yields `Err(message)` — the merger skips it rather than failing the
    /// whole export.
    #[allow(clippy::type_complexity)]
    pub fn pull_spans(
        &self,
        trace_id: &str,
        limit: Option<usize>,
    ) -> Vec<(String, Result<Json, String>)> {
        self.config
            .endpoints
            .iter()
            .enumerate()
            .map(|(b, endpoint)| {
                let outcome = self.pools[b]
                    .checkout()
                    .map_err(|e| format!("connect: {e}"))
                    .and_then(|mut client| {
                        let pulled = client
                            .spans(limit, Some(trace_id))
                            .map_err(|e| e.to_string());
                        if pulled.is_ok() {
                            self.pools[b].checkin(client);
                        }
                        pulled
                    });
                (endpoint.clone(), outcome)
            })
            .collect()
    }

    /// Assembles the fleet-wide Chrome trace for `trace_id`: this process's
    /// `fleet.*` spans plus every backend's pulled spans, each process in
    /// its own `pid` lane with ids rewritten globally unique and propagated
    /// parent links resolved (see [`crate::telemetry::merge_chrome_trace`]).
    pub fn merged_chrome_trace(&self, trace_id: &str, limit: Option<usize>) -> Json {
        let coordinator = tracer().records();
        let backends = self.pull_spans(trace_id, limit);
        crate::telemetry::merge_chrome_trace(trace_id, &coordinator, &backends)
    }

    /// Runs the (archs × networks × seeds) grid and returns the merged
    /// document — byte-identical to `grid_to_json` of a direct
    /// `simulate_grid` call — plus dispatch statistics.
    pub fn sweep_with_stats(
        &self,
        archs: &[String],
        networks: &[String],
        seeds: &[u64],
        sample_cap: Option<usize>,
    ) -> Result<(Json, SweepStats), FleetError> {
        if archs.is_empty() || networks.is_empty() || seeds.is_empty() {
            return Err(FleetError::EmptyGrid);
        }
        let trace_id = format!("fs{}", SWEEP_SEQ.fetch_add(1, Ordering::Relaxed) + 1);
        *self.last_trace_id.lock().expect("trace id lock") = Some(trace_id.clone());
        let mut sweep_span = tracer().span("fleet.sweep");
        sweep_span.attr("trace_id", &trace_id);
        sweep_span.attr("cells", archs.len() * networks.len() * seeds.len());
        sweep_span.attr("backends", self.config.endpoints.len());

        let n_backends = self.config.endpoints.len();
        let cells = archs.len() * networks.len() * seeds.len();
        self.metrics.cells_total.add(cells as u64);
        let pool_before: Vec<(u64, u64)> = self.pools.iter().map(|p| p.stats()).collect();

        let mut senders = Vec::with_capacity(n_backends);
        let mut receivers = Vec::with_capacity(n_backends);
        for _ in 0..n_backends {
            let (tx, rx) = mpsc::channel::<CellJob>();
            senders.push(tx);
            receivers.push(Arc::new(Mutex::new(rx)));
        }

        let state = SweepState {
            archs,
            networks,
            seeds,
            sample_cap,
            trace_id: &trace_id,
            slots: (0..cells).map(|_| Mutex::new(None)).collect(),
            senders,
            remaining: AtomicUsize::new(cells),
            fatal: Mutex::new(None),
            abort: AtomicBool::new(false),
            attempts: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            per_backend_cells: (0..n_backends).map(|_| AtomicU64::new(0)).collect(),
            latencies: Mutex::new(Vec::with_capacity(cells)),
        };

        // Seed every cell into its home backend's queue.
        for flat in 0..cells {
            let (arch, network, seed) = state.cell_coords(flat);
            let home = backend_for_cell(arch, network, seed, n_backends);
            state.senders[home]
                .send(CellJob { flat, attempts: 0 })
                .expect("receiver alive");
        }

        thread::scope(|s| {
            for (b, rx) in receivers.iter().enumerate() {
                for _ in 0..self.config.connections_per_backend.max(1) {
                    let rx = Arc::clone(rx);
                    let state = &state;
                    s.spawn(move || self.worker_loop(b, &rx, state));
                }
            }
            {
                let state = &state;
                s.spawn(move || self.prober_loop(state));
            }

            while !state.done() {
                thread::sleep(Duration::from_millis(2));
            }
            state.abort.store(true, Ordering::Relaxed);
        });

        if let Some(err) = state.fatal.lock().expect("fatal lock").take() {
            return Err(err);
        }

        let merged = Json::obj(vec![(
            "cells",
            Json::Array(
                state
                    .slots
                    .iter()
                    .enumerate()
                    .map(|(flat, slot)| {
                        let result = slot
                            .lock()
                            .expect("slot lock")
                            .take()
                            .expect("all cells complete");
                        let per_arch = networks.len() * seeds.len();
                        Json::obj(vec![
                            ("arch_index", Json::from(flat / per_arch)),
                            (
                                "network_index",
                                Json::from((flat / seeds.len()) % networks.len()),
                            ),
                            ("seed", Json::from(seeds[flat % seeds.len()])),
                            ("result", result),
                        ])
                    })
                    .collect(),
            ),
        )]);

        for (pool, before) in self.pools.iter().zip(pool_before) {
            let (dials, reuses) = pool.stats();
            self.metrics.pool_dials.add(dials - before.0);
            self.metrics.pool_reuses.add(reuses - before.1);
        }
        let stats = SweepStats {
            cells,
            backends: n_backends,
            attempts: state.attempts.load(Ordering::Relaxed),
            retries: state.retries.load(Ordering::Relaxed),
            failovers: state.failovers.load(Ordering::Relaxed),
            per_backend_cells: state
                .per_backend_cells
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            cell_latencies: state.latencies.lock().expect("latency lock").clone(),
        };
        sweep_span.attr("attempts", stats.attempts);
        sweep_span.attr("failovers", stats.failovers);
        Ok((merged, stats))
    }

    /// [`Fleet::sweep_with_stats`] without the statistics.
    pub fn sweep(
        &self,
        archs: &[String],
        networks: &[String],
        seeds: &[u64],
        sample_cap: Option<usize>,
    ) -> Result<Json, FleetError> {
        self.sweep_with_stats(archs, networks, seeds, sample_cap)
            .map(|(json, _)| json)
    }

    fn worker_loop(&self, backend: usize, rx: &Mutex<Receiver<CellJob>>, state: &SweepState<'_>) {
        loop {
            if state.done() {
                return;
            }
            let job = {
                let rx = rx.lock().expect("queue lock");
                rx.recv_timeout(Duration::from_millis(20))
            };
            match job {
                Ok(job) => self.run_cell(backend, job, state),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return,
            }
        }
    }

    /// Drives one cell on `backend` until it completes, retries out its
    /// same-backend budget, fails over, or aborts the sweep.
    fn run_cell(&self, backend: usize, mut job: CellJob, state: &SweepState<'_>) {
        if !self.breakers[backend]
            .lock()
            .expect("breaker lock")
            .is_available()
        {
            // The skip consumes attempt budget: when every breaker is open
            // the cell bounces at most `budget` times and then fails,
            // instead of ping-ponging between dead backends forever.
            job.attempts += 1;
            self.failover(backend, job, "circuit breaker open", state);
            return;
        }
        let started = Instant::now();
        let mut local_attempt = 0u32;
        loop {
            if state.done() {
                return;
            }
            job.attempts += 1;
            state.attempts.fetch_add(1, Ordering::Relaxed);
            self.metrics.dispatch_total.inc();
            let attempt_start = Instant::now();
            let outcome = {
                let mut span = tracer().span("fleet.dispatch");
                span.attr("trace_id", state.trace_id);
                span.attr("backend", backend);
                span.attr("cell", job.flat);
                span.attr("attempt", job.attempts);
                self.attempt_cell(backend, job.flat, span.id(), state)
            };
            self.metrics.attempt_us.record(attempt_start.elapsed());
            match outcome {
                Attempt::Done(result) => {
                    self.breakers[backend]
                        .lock()
                        .expect("breaker lock")
                        .record_success();
                    *state.slots[job.flat].lock().expect("slot lock") = Some(result);
                    state.per_backend_cells[backend].fetch_add(1, Ordering::Relaxed);
                    let latency = started.elapsed();
                    self.metrics.cell_us.record(latency);
                    state.latencies.lock().expect("latency lock").push(latency);
                    state.remaining.fetch_sub(1, Ordering::Relaxed);
                    return;
                }
                Attempt::Retry(overloaded) => {
                    // Healthy-but-busy: the breaker is NOT fed, the cell
                    // stays on its backend, and the retry waits out a
                    // deterministic-jitter backoff.
                    if overloaded {
                        self.metrics.overloaded_total.inc();
                    }
                    state.retries.fetch_add(1, Ordering::Relaxed);
                    self.metrics.retry_total.inc();
                    local_attempt += 1;
                    if local_attempt >= self.config.max_attempts_per_backend {
                        self.failover(
                            backend,
                            job,
                            if overloaded {
                                "overloaded"
                            } else {
                                "deadline exceeded"
                            },
                            state,
                        );
                        return;
                    }
                    let delay = self
                        .config
                        .backoff
                        .delay(job.flat as u64, local_attempt - 1);
                    let mut span = tracer().span("fleet.retry");
                    span.attr("backend", backend);
                    span.attr("cell", job.flat);
                    span.attr("delay_us", delay.as_micros());
                    drop(span);
                    state.sleep(delay);
                }
                Attempt::Reject(err) => {
                    state.fail(FleetError::Rejected(err));
                    return;
                }
                Attempt::Fault(message) => {
                    let newly_opened = self.breakers[backend]
                        .lock()
                        .expect("breaker lock")
                        .record_failure();
                    if newly_opened {
                        self.metrics.breaker_open_total.inc();
                    }
                    self.failover(backend, job, &message, state);
                    return;
                }
            }
        }
    }

    /// One wire round trip for one cell against one backend.
    fn attempt_cell(
        &self,
        backend: usize,
        flat: usize,
        dispatch_span: Option<u64>,
        state: &SweepState<'_>,
    ) -> Attempt {
        let mut client = match self.pools[backend].checkout() {
            Ok(c) => c,
            Err(e) => return Attempt::Fault(format!("connect: {e}")),
        };
        let (arch, network, seed) = state.cell_coords(flat);
        let mut fields = vec![
            ("kind", Json::from("simulate")),
            ("arch", Json::from(arch)),
            ("network", Json::from(network)),
            ("seed", Json::from(seed)),
            (
                "timeout_ms",
                Json::from(
                    self.config
                        .request_timeout
                        .as_millis()
                        .min(u128::from(u64::MAX)) as u64,
                ),
            ),
        ];
        if let Some(cap) = state.sample_cap {
            fields.push(("sample_cap", Json::from(cap)));
        }
        // Trace context rides the request *envelope*, never the result, so
        // the merged document stays byte-identical whether or not anyone is
        // tracing. The parent link is present only when the coordinator's
        // tracer recorded the dispatch span.
        if let Some(ctx) = TraceContext::new(state.trace_id.to_owned(), dispatch_span) {
            fields.push(("trace", ctx.to_json()));
        }
        match client.call(Json::obj(fields)) {
            Ok(result) => {
                self.pools[backend].checkin(client);
                Attempt::Done(result)
            }
            Err(ClientError::Overloaded(_)) => {
                // The connection is fine — the admission queue was full.
                self.pools[backend].checkin(client);
                Attempt::Retry(true)
            }
            Err(ClientError::Server(e)) => match e.code {
                ErrorCode::DeadlineExceeded => {
                    self.pools[backend].checkin(client);
                    Attempt::Retry(false)
                }
                ErrorCode::BadRequest | ErrorCode::UnknownArch | ErrorCode::UnknownNetwork => {
                    self.pools[backend].checkin(client);
                    Attempt::Reject(e)
                }
                // shutting_down, internal, and anything future-unknown:
                // the backend is in trouble; connection dropped.
                _ => Attempt::Fault(format!("server fault [{}]: {}", e.code.as_str(), e.message)),
            },
            Err(ClientError::Io(e)) => Attempt::Fault(format!("io: {e}")),
            Err(ClientError::Protocol(msg)) => Attempt::Fault(format!("protocol: {msg}")),
            // A desynced stream cannot be trusted for further calls:
            // treat it like a broken connection.
            Err(e @ ClientError::IdMismatch { .. }) => Attempt::Fault(format!("protocol: {e}")),
        }
    }

    /// Moves a cell to the next healthy backend (or the next backend
    /// outright when every breaker is open — the attempt cap, not the
    /// breaker state, is what finally fails a cell).
    fn failover(&self, from: usize, job: CellJob, why: &str, state: &SweepState<'_>) {
        let budget =
            self.config.max_attempts_per_backend * self.config.endpoints.len().max(1) as u32;
        if job.attempts >= budget {
            let (arch, network, seed) = state.cell_coords(job.flat);
            state.fail(FleetError::CellFailed {
                arch: arch.to_owned(),
                network: network.to_owned(),
                seed,
                attempts: job.attempts,
                last_error: why.to_owned(),
            });
            return;
        }
        state.failovers.fetch_add(1, Ordering::Relaxed);
        self.metrics.failover_total.inc();
        let n = self.config.endpoints.len();
        let mut target = (from + 1) % n;
        for k in 1..=n {
            let candidate = (from + k) % n;
            if self.breakers[candidate]
                .lock()
                .expect("breaker lock")
                .is_available()
            {
                target = candidate;
                break;
            }
        }
        // The receiver can only be gone after abort; losing the job then
        // is fine because nobody will wait on it.
        let _ = state.senders[target].send(job);
    }

    /// Background `ping` prober: keeps breaker state honest even while no
    /// requests are flowing to a backend (e.g. everything failed over away
    /// from it and its cooldown is the only way back).
    fn prober_loop(&self, state: &SweepState<'_>) {
        loop {
            state.sleep(self.config.probe_interval);
            if state.done() {
                return;
            }
            for (b, endpoint) in self.config.endpoints.iter().enumerate() {
                self.metrics.probe_total.inc();
                let alive = Client::with_timeouts(
                    endpoint.as_str(),
                    Some(self.config.connect_timeout.min(Duration::from_millis(500))),
                    Some(Duration::from_secs(1)),
                    Some(Duration::from_secs(1)),
                )
                .and_then(|mut c| c.ping())
                .is_ok();
                let mut breaker = self.breakers[b].lock().expect("breaker lock");
                if alive {
                    breaker.record_success();
                } else {
                    self.metrics.probe_failures.inc();
                    if breaker.record_failure() {
                        self.metrics.breaker_open_total.inc();
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_endpoint_list_is_rejected() {
        assert!(matches!(
            Fleet::new(FleetConfig::new(vec![])),
            Err(FleetError::NoEndpoints)
        ));
    }

    #[test]
    fn empty_grid_is_rejected_without_dialing() {
        // The endpoint is a black hole; an empty grid must error before
        // any connection attempt.
        let fleet = Fleet::new(FleetConfig::new(vec!["127.0.0.1:1".into()])).unwrap();
        assert!(matches!(
            fleet.sweep(&[], &["dgcnn".into()], &[1], None),
            Err(FleetError::EmptyGrid)
        ));
        assert!(matches!(
            fleet.sweep(&["sibia".into()], &[], &[1], None),
            Err(FleetError::EmptyGrid)
        ));
        assert!(matches!(
            fleet.sweep(&["sibia".into()], &["dgcnn".into()], &[], None),
            Err(FleetError::EmptyGrid)
        ));
    }

    #[test]
    fn cell_coords_walk_the_grid_row_major() {
        let archs = vec!["a".to_string(), "b".to_string()];
        let networks = vec!["x".to_string(), "y".to_string()];
        let seeds = vec![1u64, 2];
        let state = SweepState {
            archs: &archs,
            networks: &networks,
            seeds: &seeds,
            sample_cap: None,
            trace_id: "fs-test",
            slots: Vec::new(),
            senders: Vec::new(),
            remaining: AtomicUsize::new(0),
            fatal: Mutex::new(None),
            abort: AtomicBool::new(false),
            attempts: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            per_backend_cells: Vec::new(),
            latencies: Mutex::new(Vec::new()),
        };
        let mut flat = 0;
        for a in ["a", "b"] {
            for n in ["x", "y"] {
                for s in [1u64, 2] {
                    assert_eq!(state.cell_coords(flat), (a, n, s));
                    flat += 1;
                }
            }
        }
    }

    #[test]
    fn all_endpoints_dead_fails_with_cell_failed_not_a_hang() {
        // Two unreachable backends: the cell must burn its budget and the
        // sweep must return CellFailed (never deadlock).
        let l1 = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let l2 = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let (a1, a2) = (l1.local_addr().unwrap(), l2.local_addr().unwrap());
        drop((l1, l2));
        let mut config = FleetConfig::new(vec![a1.to_string(), a2.to_string()]);
        config.max_attempts_per_backend = 1;
        config.connect_timeout = Duration::from_millis(200);
        config.probe_interval = Duration::from_secs(30); // stay out of the way
        let fleet = Fleet::new(config).unwrap();
        match fleet.sweep(&["sibia".into()], &["dgcnn".into()], &[1], Some(64)) {
            Err(FleetError::CellFailed { attempts, .. }) => assert!(attempts >= 2),
            other => panic!("expected CellFailed, got {other:?}"),
        }
    }
}
