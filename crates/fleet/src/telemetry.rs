//! Fleet-wide trace assembly: one Chrome trace covering coordinator and
//! backends.
//!
//! Every process records spans against its own tracer — its own id space
//! and its own monotonic epoch. The merger gives each process a `pid`
//! lane (coordinator = pid 1, backend *i* = pid *i + 2*, matching its
//! position in the endpoint list) and rewrites span ids to globally
//! unique values `gid = (pid << 32) | local_id`, so id collisions between
//! processes cannot alias parent links. A backend span that carries a
//! `remote_parent` (the coordinator's `fleet.dispatch` span id, injected
//! as the request's trace context) gets its `parent` rewritten to the
//! coordinator's gid — that cross-process edge is what makes the
//! coordinator's dispatch span the *ancestor* of the backend's
//! `serve.request` and `sim.*` spans in the merged view.
//!
//! Timestamps are **not** rebased: each process's `ts` values are µs
//! since its own tracer epoch, so nesting-by-time is only meaningful
//! within one `pid` lane (a validator must scope containment checks per
//! pid). Each lane is announced by a `"ph": "M"` `process_name` metadata
//! event that also carries the process's `dropped_spans` count, so a
//! reader can tell a complete lane from a truncated one.

use std::collections::HashMap;

use sibia_obs::{Json, SpanRecord};

/// The coordinator's fixed pid lane in a merged trace.
pub const COORDINATOR_PID: u64 = 1;

/// The pid lane of backend `index` (position in the endpoint list).
pub fn backend_pid(index: usize) -> u64 {
    index as u64 + 2
}

/// Globally unique span id: the pid lane in the high 32 bits. Stays below
/// `i64::MAX` (canonical JSON integers are i64) for any realistic pid.
fn gid(pid: u64, local: u64) -> u64 {
    (pid << 32) | (local & 0xFFFF_FFFF)
}

/// Selects the records belonging to `trace_id`: those whose `trace_id`
/// attribute matches, plus every span whose parent chain reaches one
/// (parent ids are always lower than child ids, so the walk terminates).
fn select_trace<'a>(records: &'a [SpanRecord], trace_id: &str) -> Vec<&'a SpanRecord> {
    let by_id: HashMap<u64, &SpanRecord> = records.iter().map(|r| (r.id, r)).collect();
    records
        .iter()
        .filter(|r| {
            let mut cur = Some(*r);
            while let Some(s) = cur {
                if s.attr("trace_id") == Some(trace_id) {
                    return true;
                }
                cur = s.parent.and_then(|p| by_id.get(&p).copied());
            }
            false
        })
        .collect()
}

/// One `process_name` metadata event announcing a pid lane.
fn process_meta(pid: u64, name: &str, dropped_spans: u64) -> Json {
    Json::obj(vec![
        ("name", Json::from("process_name")),
        ("ph", Json::from("M")),
        ("pid", Json::from(pid)),
        (
            "args",
            Json::obj(vec![
                ("name", Json::from(name)),
                ("dropped_spans", Json::from(dropped_spans)),
            ]),
        ),
    ])
}

/// Rewrites one already-serialized chrome event (as returned by a
/// backend's `spans` verb, pid 1 and local ids) into the merged id space:
/// `pid` becomes the lane, `args.id` / `args.parent` become gids, and a
/// `remote_parent` becomes the `parent` edge into the coordinator's lane.
fn rebase_event(event: &Json, pid: u64) -> Json {
    let Some(members) = event.as_object() else {
        return event.clone();
    };
    let rebased: Vec<(String, Json)> = members
        .iter()
        .map(|(k, v)| match k.as_str() {
            "pid" => (k.clone(), Json::from(pid)),
            "args" => {
                let Some(args) = v.as_object() else {
                    return (k.clone(), v.clone());
                };
                let remote = args
                    .iter()
                    .find(|(ak, _)| ak == "remote_parent")
                    .and_then(|(_, av)| av.as_u64());
                let mut out: Vec<(String, Json)> = Vec::with_capacity(args.len() + 1);
                for (ak, av) in args {
                    match (ak.as_str(), av.as_u64()) {
                        ("id", Some(local)) => out.push((ak.clone(), Json::from(gid(pid, local)))),
                        ("parent", Some(local)) => {
                            out.push((ak.clone(), Json::from(gid(pid, local))));
                        }
                        ("remote_parent", Some(remote_local)) => {
                            // The propagated edge: parent lives in the
                            // coordinator's lane.
                            out.push((
                                "remote_parent".to_owned(),
                                Json::from(gid(COORDINATOR_PID, remote_local)),
                            ));
                        }
                        _ => out.push((ak.clone(), av.clone())),
                    }
                }
                // A root-in-its-process span with a propagated parent
                // gains the cross-process parent edge.
                if let Some(remote_local) = remote {
                    if !args.iter().any(|(ak, _)| ak == "parent") {
                        let remote_gid = gid(COORDINATOR_PID, remote_local);
                        out.push(("parent".to_owned(), Json::from(remote_gid)));
                    }
                }
                (k.clone(), Json::Object(out))
            }
            _ => (k.clone(), v.clone()),
        })
        .collect();
    Json::Object(rebased)
}

/// Assembles the merged Chrome trace for one sweep.
///
/// * `coordinator` — this process's span records (typically
///   `sibia_obs::tracer().records()`); the sweep's spans are selected by
///   `trace_id` ancestry and serialized under [`COORDINATOR_PID`].
/// * `backends` — per-endpoint results of the `spans` verb, in endpoint
///   order: `Ok` payloads are `{"spans": [...], "dropped": n}` objects;
///   `Err` lanes are skipped but still announced (with the error message
///   as the process name suffix) so a missing backend is visible, not
///   silent.
///
/// Returns `{"trace_id": ..., "events": [...]}` where `events` holds the
/// metadata events followed by every span event. Callers wanting Chrome
/// JSONL write one event per line; callers wanting the array form wrap
/// `events` as `traceEvents`.
pub fn merge_chrome_trace(
    trace_id: &str,
    coordinator: &[SpanRecord],
    backends: &[(String, Result<Json, String>)],
) -> Json {
    let mut events: Vec<Json> = Vec::new();
    events.push(process_meta(
        COORDINATOR_PID,
        "coordinator",
        sibia_obs::tracer().dropped(),
    ));
    for (i, (endpoint, outcome)) in backends.iter().enumerate() {
        let pid = backend_pid(i);
        match outcome {
            Ok(payload) => {
                let dropped = payload.get("dropped").and_then(Json::as_u64).unwrap_or(0);
                events.push(process_meta(pid, endpoint, dropped));
            }
            Err(message) => {
                events.push(process_meta(
                    pid,
                    &format!("{endpoint} (unreachable: {message})"),
                    0,
                ));
            }
        }
    }
    for record in select_trace(coordinator, trace_id) {
        events.push(rebase_event(
            &record.to_chrome_json_pid(COORDINATOR_PID),
            COORDINATOR_PID,
        ));
    }
    for (i, (_, outcome)) in backends.iter().enumerate() {
        let Ok(payload) = outcome else { continue };
        let Some(spans) = payload.get("spans").and_then(Json::as_array) else {
            continue;
        };
        for event in spans {
            events.push(rebase_event(event, backend_pid(i)));
        }
    }
    Json::obj(vec![
        ("trace_id", Json::from(trace_id)),
        ("events", Json::Array(events)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(
        id: u64,
        parent: Option<u64>,
        name: &str,
        attrs: Vec<(String, String)>,
    ) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            remote_parent: None,
            name: name.to_owned(),
            tid: 1,
            start_us: id * 10,
            dur_us: 5,
            attrs,
        }
    }

    #[test]
    fn merges_coordinator_and_backend_lanes_with_resolved_parents() {
        let coordinator = vec![
            record(
                7,
                None,
                "fleet.sweep",
                vec![("trace_id".into(), "fs1".into())],
            ),
            record(
                9,
                Some(7),
                "fleet.dispatch",
                vec![("trace_id".into(), "fs1".into())],
            ),
            // A different sweep: must not leak into fs1's merge.
            record(
                11,
                None,
                "fleet.sweep",
                vec![("trace_id".into(), "fs2".into())],
            ),
        ];
        // What a backend's `spans` verb returns: pid-1 chrome events whose
        // serve.request carries the propagated remote parent (9).
        let mut serve_request = record(
            3,
            None,
            "serve.request",
            vec![("trace_id".into(), "fs1".into())],
        );
        serve_request.remote_parent = Some(9);
        let sim_network = record(4, Some(3), "sim.network", vec![]);
        let backend_payload = Json::obj(vec![
            (
                "spans",
                Json::Array(vec![
                    serve_request.to_chrome_json(),
                    sim_network.to_chrome_json(),
                ]),
            ),
            ("dropped", Json::from(2u64)),
        ]);
        let backends = vec![
            ("127.0.0.1:7001".to_owned(), Ok(backend_payload)),
            (
                "127.0.0.1:7002".to_owned(),
                Err("connect: refused".to_owned()),
            ),
        ];

        let merged = merge_chrome_trace("fs1", &coordinator, &backends);
        assert_eq!(merged.get("trace_id").and_then(Json::as_str), Some("fs1"));
        let events = merged.get("events").and_then(Json::as_array).unwrap();

        // Three lanes announced, the unreachable one visibly so.
        let metas: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .collect();
        assert_eq!(metas.len(), 3);
        assert_eq!(
            metas[1].get("args").unwrap().get("dropped_spans"),
            Some(&Json::Int(2))
        );
        assert!(metas[2]
            .get("args")
            .unwrap()
            .get("name")
            .and_then(Json::as_str)
            .unwrap()
            .contains("unreachable"));

        let spans: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        // fs2's span is excluded; fs1 keeps 2 coordinator + 2 backend.
        assert_eq!(spans.len(), 4);

        // The backend serve.request's parent resolves to the coordinator's
        // dispatch gid, across pids.
        let sr = spans
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("serve.request"))
            .unwrap();
        assert_eq!(sr.get("pid").and_then(Json::as_u64), Some(2));
        let args = sr.get("args").unwrap();
        assert_eq!(
            args.get("parent").and_then(Json::as_u64),
            Some(gid(COORDINATOR_PID, 9))
        );
        assert_eq!(args.get("id").and_then(Json::as_u64), Some(gid(2, 3)));

        // The backend's local child keeps its (rebased) local parent.
        let sn = spans
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("sim.network"))
            .unwrap();
        assert_eq!(
            sn.get("args").unwrap().get("parent").and_then(Json::as_u64),
            Some(gid(2, 3))
        );

        // Coordinator spans live in lane 1 with gid-rewritten ids.
        let dispatch = spans
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("fleet.dispatch"))
            .unwrap();
        assert_eq!(dispatch.get("pid").and_then(Json::as_u64), Some(1));
        assert_eq!(
            dispatch
                .get("args")
                .unwrap()
                .get("id")
                .and_then(Json::as_u64),
            Some(gid(1, 9))
        );
    }
}
