//! Property tests for the hardware models.

use proptest::prelude::*;
use sibia_arch::buffer::OperandBuffer;
use sibia_arch::mesh::{Mesh, Node};
use sibia_arch::noc::UniNoc;

fn arb_node(w: u8, h: u8) -> impl Strategy<Value = Node> {
    (0..w, 0..h).prop_map(|(x, y)| Node::new(x, y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// XY routes have Manhattan length and end at the destination.
    #[test]
    fn xy_routes_are_manhattan(
        (w, h) in (2u8..8, 2u8..8),
        seed in any::<u64>(),
    ) {
        let mut r = seed;
        let mut next = || { r = r.wrapping_mul(6364136223846793005).wrapping_add(1); r };
        let m = Mesh::new(w, h);
        let src = Node::new((next() % u64::from(w)) as u8, (next() % u64::from(h)) as u8);
        let dst = Node::new((next() % u64::from(w)) as u8, (next() % u64::from(h)) as u8);
        let path = m.xy_route(src, dst);
        prop_assert_eq!(path.len() as u64, m.hops(src, dst));
        if src != dst {
            prop_assert_eq!(*path.last().unwrap(), dst);
        } else {
            prop_assert!(path.is_empty());
        }
    }

    /// Multicast never costs more flit-hops than per-destination unicasts.
    #[test]
    fn multicast_is_never_worse(
        src in arb_node(4, 4),
        dsts in prop::collection::vec(arb_node(4, 4), 1..8),
        flits in 1u64..100,
    ) {
        let mut mc = Mesh::new(4, 4);
        let mc_cost = mc.multicast(src, &dsts, flits);
        let mut uc = Mesh::new(4, 4);
        let uc_cost: u64 = dsts.iter().map(|&d| uc.unicast(src, d, flits)).sum();
        prop_assert!(mc_cost <= uc_cost);
    }

    /// Buffer conservation: consumed never exceeds preload + streamed.
    #[test]
    fn buffer_conserves_subwords(
        cap in 1u32..64,
        refill in 1u32..8,
        period in 1u32..4,
        stream in 0u64..2000,
        want in 1u32..6,
        cycles in 1usize..800,
    ) {
        let mut b = OperandBuffer::new(cap, refill).with_refill_period(period);
        let mut remaining = stream;
        let mut consumed = 0u64;
        for _ in 0..cycles {
            consumed += u64::from(b.tick(want, &mut remaining));
        }
        prop_assert_eq!(consumed, b.consumed());
        prop_assert!(consumed <= u64::from(cap) + stream);
        prop_assert_eq!(stream - remaining + u64::from(cap) - u64::from(b.occupancy()), consumed);
    }

    /// The Uni-NoC shift always saves bandwidth on chains longer than one.
    #[test]
    fn shift_always_saves(psum_bits in 8usize..24, chain in 2usize..16) {
        let noc = UniNoc { psum_bits, chain_len: chain };
        prop_assert!(noc.bits_with_shift() < noc.bits_without_shift());
        let s = noc.bandwidth_saving();
        prop_assert!(s > 0.0 && s < 1.0);
    }
}
