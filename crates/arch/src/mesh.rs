//! Bi-directional 2-D mesh model for the Bi-NoC (paper §II-F, Fig. 4).
//!
//! The coarse [`crate::noc::BiNoc`] model charges an average hop count per
//! flit; this module models the actual mesh: routers at grid coordinates,
//! XY dimension-ordered routing, per-link flit accounting, and
//! unicast/multicast/broadcast delivery with fan-out duplication at the
//! routers (a multicast flit traverses each link at most once).

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// A router coordinate on the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Node {
    /// Column.
    pub x: u8,
    /// Row.
    pub y: u8,
}

impl Node {
    /// Creates a node.
    pub fn new(x: u8, y: u8) -> Self {
        Self { x, y }
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// A directed mesh link between adjacent routers.
pub type Link = (Node, Node);

/// The Bi-NoC mesh.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mesh {
    width: u8,
    height: u8,
    /// Flits carried per link over the accounted transfers.
    link_flits: BTreeMap<Link, u64>,
}

impl Mesh {
    /// Creates a `width × height` mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u8, height: u8) -> Self {
        assert!(width > 0 && height > 0, "mesh must be non-empty");
        Self {
            width,
            height,
            link_flits: BTreeMap::new(),
        }
    }

    /// The Sibia top-level mesh: 4 MPU cores + 2 DMU cores arranged 3×2.
    pub fn sibia_top() -> Self {
        Self::new(3, 2)
    }

    /// Mesh dimensions.
    pub fn size(&self) -> (u8, u8) {
        (self.width, self.height)
    }

    fn check(&self, n: Node) {
        assert!(
            n.x < self.width && n.y < self.height,
            "node {n} outside {}x{} mesh",
            self.width,
            self.height
        );
    }

    /// The XY dimension-ordered route from `src` to `dst` (exclusive of
    /// `src`, inclusive of `dst`).
    pub fn xy_route(&self, src: Node, dst: Node) -> Vec<Node> {
        self.check(src);
        self.check(dst);
        let mut path = Vec::new();
        let mut cur = src;
        while cur.x != dst.x {
            cur.x = if dst.x > cur.x { cur.x + 1 } else { cur.x - 1 };
            path.push(cur);
        }
        while cur.y != dst.y {
            cur.y = if dst.y > cur.y { cur.y + 1 } else { cur.y - 1 };
            path.push(cur);
        }
        path
    }

    /// Hop count of the XY route.
    pub fn hops(&self, src: Node, dst: Node) -> u64 {
        (src.x.abs_diff(dst.x) + src.y.abs_diff(dst.y)) as u64
    }

    /// Accounts a unicast of `flits` from `src` to `dst`. Returns the
    /// flit-hops consumed.
    pub fn unicast(&mut self, src: Node, dst: Node, flits: u64) -> u64 {
        let mut prev = src;
        let mut cost = 0;
        for next in self.xy_route(src, dst) {
            *self.link_flits.entry((prev, next)).or_insert(0) += flits;
            cost += flits;
            prev = next;
        }
        cost
    }

    /// Accounts a multicast of `flits` from `src` to every destination:
    /// the union of the XY routes forms a tree, and each tree link carries
    /// the flits once. Returns the flit-hops consumed.
    pub fn multicast(&mut self, src: Node, dsts: &[Node], flits: u64) -> u64 {
        let mut tree: BTreeSet<Link> = BTreeSet::new();
        for &d in dsts {
            let mut prev = src;
            for next in self.xy_route(src, d) {
                tree.insert((prev, next));
                prev = next;
            }
        }
        for link in &tree {
            *self.link_flits.entry(*link).or_insert(0) += flits;
        }
        tree.len() as u64 * flits
    }

    /// Accounts a broadcast to every node.
    pub fn broadcast(&mut self, src: Node, flits: u64) -> u64 {
        let all: Vec<Node> = (0..self.width)
            .flat_map(|x| (0..self.height).map(move |y| Node::new(x, y)))
            .filter(|&n| n != src)
            .collect();
        self.multicast(src, &all, flits)
    }

    /// The most-loaded link and its flit count (the bisection hot spot).
    pub fn hottest_link(&self) -> Option<(Link, u64)> {
        self.link_flits
            .iter()
            .max_by_key(|&(_, &f)| f)
            .map(|(&l, &f)| (l, f))
    }

    /// Total flit-hops accounted so far.
    pub fn total_flit_hops(&self) -> u64 {
        self.link_flits.values().sum()
    }

    /// Cycles to drain the accounted traffic with one flit per link per
    /// cycle: the max link load (links operate in parallel).
    pub fn drain_cycles(&self) -> u64 {
        self.link_flits.values().copied().max().unwrap_or(0)
    }

    /// Breadth-first reachability sanity check (every node reaches every
    /// other on a mesh).
    pub fn is_connected(&self) -> bool {
        let start = Node::new(0, 0);
        let mut seen = BTreeSet::new();
        let mut q = VecDeque::from([start]);
        seen.insert(start);
        while let Some(n) = q.pop_front() {
            let mut push = |x: i16, y: i16| {
                if x >= 0 && y >= 0 && (x as u8) < self.width && (y as u8) < self.height {
                    let m = Node::new(x as u8, y as u8);
                    if seen.insert(m) {
                        q.push_back(m);
                    }
                }
            };
            push(i16::from(n.x) - 1, i16::from(n.y));
            push(i16::from(n.x) + 1, i16::from(n.y));
            push(i16::from(n.x), i16::from(n.y) - 1);
            push(i16::from(n.x), i16::from(n.y) + 1);
        }
        seen.len() == usize::from(self.width) * usize::from(self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xy_route_is_manhattan() {
        let m = Mesh::new(4, 4);
        let path = m.xy_route(Node::new(0, 0), Node::new(3, 2));
        assert_eq!(path.len(), 5);
        assert_eq!(path.last(), Some(&Node::new(3, 2)));
        assert_eq!(m.hops(Node::new(0, 0), Node::new(3, 2)), 5);
        // X first, then Y.
        assert_eq!(path[0], Node::new(1, 0));
        assert_eq!(path[3], Node::new(3, 1));
    }

    #[test]
    fn unicast_charges_every_link() {
        let mut m = Mesh::new(3, 2);
        let cost = m.unicast(Node::new(0, 0), Node::new(2, 1), 10);
        assert_eq!(cost, 30); // 3 hops × 10 flits
        assert_eq!(m.total_flit_hops(), 30);
        assert_eq!(m.drain_cycles(), 10);
    }

    #[test]
    fn multicast_shares_tree_links() {
        let mut m = Mesh::new(3, 2);
        let src = Node::new(0, 0);
        let dsts = [Node::new(2, 0), Node::new(2, 1)];
        let mc = m.multicast(src, &dsts, 10);
        // Unicasts would cost 2·10 + 3·10 = 50; the shared tree is
        // (0,0)→(1,0)→(2,0)→(2,1): 3 links × 10 = 30.
        assert_eq!(mc, 30);
        let mut m2 = Mesh::new(3, 2);
        let uc = m2.unicast(src, dsts[0], 10) + m2.unicast(src, dsts[1], 10);
        assert!(mc < uc);
    }

    #[test]
    fn broadcast_reaches_all_nodes_once_per_link() {
        let mut m = Mesh::sibia_top();
        let cost = m.broadcast(Node::new(1, 0), 1);
        // A spanning structure of a 3×2 mesh from any source covers ≥5
        // links (5 other nodes), each exactly once for 1 flit.
        assert!(cost >= 5);
        assert_eq!(m.drain_cycles(), 1);
    }

    #[test]
    fn hottest_link_identifies_bottleneck() {
        let mut m = Mesh::new(3, 1);
        m.unicast(Node::new(0, 0), Node::new(2, 0), 4);
        m.unicast(Node::new(1, 0), Node::new(2, 0), 4);
        let ((a, b), f) = m.hottest_link().unwrap();
        assert_eq!((a, b), (Node::new(1, 0), Node::new(2, 0)));
        assert_eq!(f, 8);
    }

    #[test]
    fn meshes_are_connected() {
        assert!(Mesh::new(1, 1).is_connected());
        assert!(Mesh::sibia_top().is_connected());
        assert!(Mesh::new(5, 7).is_connected());
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn routes_validate_bounds() {
        let m = Mesh::new(2, 2);
        let _ = m.xy_route(Node::new(0, 0), Node::new(3, 0));
    }
}
