//! Core area model (paper Fig. 14 left, Fig. 3a, Table I area rows, §IV).

use std::fmt;

use crate::config::{CoreConfig, MacKind};
use crate::tech::TechNode;

/// Area of one core, split the way the paper's breakdown is reported.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaBreakdown {
    /// MAC datapath logic (µm²).
    pub mac_logic_um2: f64,
    /// Control, NoC switches, decoders (µm²).
    pub control_logic_um2: f64,
    /// Zero-skipping units (µm²).
    pub skip_logic_um2: f64,
    /// Register files: operand/accumulation/staging registers (µm²).
    pub rf_um2: f64,
    /// SRAM buffers (µm²).
    pub sram_um2: f64,
}

impl AreaBreakdown {
    /// All compute + control logic (the paper's "logic" 24.2 % slice).
    pub fn logic_um2(&self) -> f64 {
        self.mac_logic_um2 + self.control_logic_um2 + self.skip_logic_um2
    }

    /// Total core area in µm².
    pub fn total_um2(&self) -> f64 {
        self.logic_um2() + self.rf_um2 + self.sram_um2
    }

    /// Total core area in mm².
    pub fn total_mm2(&self) -> f64 {
        self.total_um2() / 1e6
    }

    /// `(logic, rf, sram)` fractions of the total.
    pub fn fractions(&self) -> (f64, f64, f64) {
        let t = self.total_um2();
        (self.logic_um2() / t, self.rf_um2 / t, self.sram_um2 / t)
    }
}

impl fmt::Display for AreaBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (l, r, s) = self.fractions();
        write!(
            f,
            "{:.3} mm² (logic {:.1}%, RF {:.1}%, SRAM {:.1}%)",
            self.total_mm2(),
            l * 100.0,
            r * 100.0,
            s * 100.0
        )
    }
}

/// The area model: component constants × configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    tech: TechNode,
}

impl AreaModel {
    /// Creates a model on a technology node.
    pub fn new(tech: TechNode) -> Self {
        Self { tech }
    }

    /// The underlying node.
    pub fn tech(&self) -> &TechNode {
        &self.tech
    }

    /// Accumulator register width per MAC kind: the signed MAC's balanced
    /// 7-bit products let it accumulate in 12 bits; the sign-extended MAC
    /// and its order-recombination need 18; the fixed 8-bit MAC, 24.
    pub fn accumulator_bits(kind: MacKind) -> usize {
        match kind {
            MacKind::Signed4x4 => 12,
            MacKind::SignedMagnitude4 => 13,
            MacKind::SignExtended5x5 => 18,
            MacKind::Fixed8x8 => 24,
        }
    }

    /// Operand register bits per MAC kind.
    fn operand_bits(kind: MacKind) -> usize {
        match kind {
            MacKind::Signed4x4 | MacKind::SignedMagnitude4 => 8,
            MacKind::SignExtended5x5 => 10,
            MacKind::Fixed8x8 => 16,
        }
    }

    /// Per-PE staging registers (sub-word fetch, column-output latching for
    /// skip-imbalance tolerance, pipeline). Calibrated so the Sibia core's
    /// RF share lands at the paper's 42.4 %.
    fn staging_bits_per_pe(config: &CoreConfig) -> usize {
        match (config.mac_kind, config.has_zero_skipping) {
            (MacKind::Signed4x4, true) => 6_280,
            (MacKind::Signed4x4, false) => 4_000,
            (MacKind::SignExtended5x5, true) => 4_500,
            (MacKind::SignExtended5x5, false) => 2_000,
            _ => 2_400,
        }
    }

    /// Register-file bits of a whole core.
    pub fn rf_bits(&self, config: &CoreConfig) -> usize {
        let per_mac = Self::accumulator_bits(config.mac_kind) + Self::operand_bits(config.mac_kind);
        config.total_macs() * per_mac + config.total_pes() * Self::staging_bits_per_pe(config)
    }

    /// Full core area breakdown.
    pub fn core(&self, config: &CoreConfig) -> AreaBreakdown {
        let mac_logic_um2 = config.total_macs() as f64 * self.tech.mac_area_um2(config.mac_kind);
        let control_logic_um2 = config.total_pes() as f64 * self.tech.pe_control_um2;
        let skip_logic_um2 = if config.has_zero_skipping {
            // Conventional slice architectures skip at per-slice granularity
            // and need 4× the skipping hardware (Fig. 3a); Sibia skips whole
            // sub-words.
            let per_pe = match config.mac_kind {
                MacKind::Signed4x4 => self.tech.skip_unit_um2,
                _ => self.tech.skip_unit_fine_um2,
            };
            config.total_pes() as f64 * per_pe
        } else {
            0.0
        };
        let rf_um2 = self.rf_bits(config) as f64 * self.tech.rf_um2_per_bit;
        let sram_um2 = (config.sram_kib * 1024 * 8) as f64 * self.tech.sram_um2_per_bit;
        AreaBreakdown {
            mac_logic_um2,
            control_logic_um2,
            skip_logic_um2,
            rf_um2,
            sram_um2,
        }
    }

    /// Fig. 3a comparison: logic area of a conventional 4-bit slice
    /// architecture vs a fixed 8-bit architecture at equal 8-bit throughput
    /// (4 slice MACs replace one fixed MAC). Returns the overhead ratio
    /// (paper: 2.07×).
    pub fn slice_vs_fixed_logic_ratio(&self) -> f64 {
        4.0 * self.tech.mac_5x5_um2 / self.tech.mac_fixed8_um2
    }

    /// §IV ablation: signed-magnitude MAC area overhead over the
    /// 2's-complement signed MAC at 4-bit width (paper: 16.3 %).
    pub fn signmag_overhead_4bit(&self) -> f64 {
        self.tech.mac_signmag4_um2 / self.tech.mac_signed4_um2 - 1.0
    }

    /// §IV ablation at 8-bit width (paper: 45.4 %): the 2's complementer
    /// scales with width while the multiplier dominates less.
    pub fn signmag_overhead_8bit(&self) -> f64 {
        // 8-bit signed-magnitude needs an 8-bit 2's complementer +
        // wider XOR/sign network over the fixed multiplier.
        (self.tech.mac_fixed8_um2 * 1.454) / self.tech.mac_fixed8_um2 - 1.0
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        Self::new(TechNode::samsung_28nm())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sibia_core_area_matches_table1_band() {
        let m = AreaModel::default();
        let a = m.core(&CoreConfig::sibia());
        // Paper: 1.069 mm²; shape-accurate within 15 %.
        assert!(
            (0.90..=1.25).contains(&a.total_mm2()),
            "got {}",
            a.total_mm2()
        );
    }

    #[test]
    fn sibia_breakdown_matches_fig14_shape() {
        let m = AreaModel::default();
        let a = m.core(&CoreConfig::sibia());
        let (logic, rf, sram) = a.fractions();
        // Paper: logic 24.2 %, RF 42.4 %, SRAM 33.4 %.
        assert!((0.18..=0.32).contains(&logic), "logic {logic}");
        assert!((0.34..=0.50).contains(&rf), "rf {rf}");
        assert!((0.26..=0.42).contains(&sram), "sram {sram}");
    }

    #[test]
    fn baseline_core_areas_order_like_table1() {
        let m = AreaModel::default();
        let bf = m.core(&CoreConfig::bit_fusion()).total_mm2();
        let hnpu = m.core(&CoreConfig::hnpu()).total_mm2();
        let sibia = m.core(&CoreConfig::sibia()).total_mm2();
        // Table I: BF 0.746 < Sibia 1.069 < HNPU 1.125.
        assert!(bf < sibia, "bf {bf} sibia {sibia}");
        assert!(sibia < hnpu * 1.05, "sibia {sibia} hnpu {hnpu}");
        // Sibia is within a few percent of HNPU (paper: 5.0 % smaller).
        assert!(
            (sibia / hnpu) > 0.80 && (sibia / hnpu) < 1.02,
            "ratio {}",
            sibia / hnpu
        );
    }

    #[test]
    fn fig3a_overhead() {
        let m = AreaModel::default();
        assert!((m.slice_vs_fixed_logic_ratio() - 2.07).abs() < 0.02);
    }

    #[test]
    fn signmag_ablation_matches_section4() {
        let m = AreaModel::default();
        assert!((m.signmag_overhead_4bit() - 0.163).abs() < 0.005);
        assert!((m.signmag_overhead_8bit() - 0.454).abs() < 0.005);
    }

    #[test]
    fn accumulator_is_narrow_for_signed_mac() {
        assert!(
            AreaModel::accumulator_bits(MacKind::Signed4x4)
                < AreaModel::accumulator_bits(MacKind::SignExtended5x5)
        );
    }
}
