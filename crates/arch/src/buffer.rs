//! On-core SRAM buffer models: IBUF, WBUF, IDXBUF, OBUF (paper Fig. 8).
//!
//! Each PE owns small double-buffered operand memories refilled over the
//! Bi-NoC while the MAC array drains them. The model tracks occupancy in
//! 16-bit sub-word units, refill bandwidth, and stall behaviour — the
//! inputs the pipeline simulator needs to expose fetch-bound layers.

use std::fmt;

/// A double-buffered operand memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OperandBuffer {
    /// Capacity in sub-words (one half of the double buffer).
    pub capacity: u32,
    /// Refill bandwidth in sub-words per refill opportunity.
    pub refill_per_cycle: u32,
    /// Cycles between refill opportunities (a shared Bi-NoC serving many
    /// PEs delivers to each one only every few cycles).
    pub refill_period: u32,
    occupancy: u32,
    tick_count: u64,
    /// Sub-words consumed in total.
    consumed: u64,
    /// Cycles stalled waiting for data.
    stalls: u64,
}

impl OperandBuffer {
    /// Creates a buffer; it starts full (the first tile is pre-loaded
    /// behind the double buffer).
    ///
    /// # Panics
    ///
    /// Panics if capacity or refill bandwidth is zero.
    pub fn new(capacity: u32, refill_per_cycle: u32) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(refill_per_cycle > 0, "refill bandwidth must be positive");
        Self {
            capacity,
            refill_per_cycle,
            refill_period: 1,
            occupancy: capacity,
            tick_count: 0,
            consumed: 0,
            stalls: 0,
        }
    }

    /// Sets the refill period (refills happen every `period` cycles).
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn with_refill_period(mut self, period: u32) -> Self {
        assert!(period > 0, "refill period must be positive");
        self.refill_period = period;
        self
    }

    /// Creates a buffer with an explicit initial occupancy (the data
    /// actually pre-loaded, which may be less than the capacity for short
    /// streams).
    ///
    /// # Panics
    ///
    /// Panics if `occupancy > capacity`, or capacity / refill is zero.
    pub fn with_occupancy(capacity: u32, refill_per_cycle: u32, occupancy: u32) -> Self {
        assert!(occupancy <= capacity, "occupancy exceeds capacity");
        Self {
            occupancy,
            ..Self::new(capacity, refill_per_cycle)
        }
    }

    /// [`Self::with_occupancy`] preserving a template's refill period.
    pub fn like(template: &OperandBuffer, occupancy: u32) -> Self {
        Self::with_occupancy(template.capacity, template.refill_per_cycle, occupancy)
            .with_refill_period(template.refill_period)
    }

    /// The Sibia IBUF: 256 sub-words per PE, 2 sub-words/cycle refill.
    pub fn ibuf() -> Self {
        Self::new(256, 2)
    }

    /// The Sibia WBUF: 512 sub-words per PE, 2 sub-words/cycle refill.
    pub fn wbuf() -> Self {
        Self::new(512, 2)
    }

    /// Current occupancy in sub-words.
    pub fn occupancy(&self) -> u32 {
        self.occupancy
    }

    /// Total sub-words consumed.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Cycles spent stalled.
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// One cycle tick: refill up to the bandwidth (bounded by capacity) if
    /// `stream_remaining` sub-words are still in flight; then try to
    /// consume `want` sub-words. Returns how many were actually consumed
    /// (0 = stall).
    pub fn tick(&mut self, want: u32, stream_remaining: &mut u64) -> u32 {
        self.tick_count += 1;
        let room = self.capacity - self.occupancy;
        let refill = if self.tick_count % u64::from(self.refill_period) == 0 {
            u64::from(self.refill_per_cycle.min(room)).min(*stream_remaining) as u32
        } else {
            0
        };
        self.occupancy += refill;
        *stream_remaining -= u64::from(refill);
        let got = want.min(self.occupancy);
        self.occupancy -= got;
        self.consumed += u64::from(got);
        if got < want && (*stream_remaining > 0 || self.occupancy > 0) {
            self.stalls += 1;
        }
        got
    }
}

impl fmt::Display for OperandBuffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "buffer {}/{} sub-words, {} consumed, {} stalls",
            self.occupancy, self.capacity, self.consumed, self.stalls
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_refill_never_stalls() {
        let mut b = OperandBuffer::new(16, 4);
        let mut stream = 1000u64;
        for _ in 0..500 {
            b.tick(2, &mut stream); // consume 2/cycle, refill 4/cycle
        }
        assert_eq!(b.stalls(), 0);
        // Want-limited: 500 cycles × 2 sub-words.
        assert_eq!(b.consumed(), 1000);
    }

    #[test]
    fn slow_refill_stalls_consumer() {
        let mut b = OperandBuffer::new(4, 1);
        let mut stream = 100u64;
        let mut consumed = 0u64;
        for _ in 0..300 {
            consumed += u64::from(b.tick(2, &mut stream));
        }
        assert!(b.stalls() > 0, "{b}");
        assert_eq!(consumed, 100 + 4);
    }

    #[test]
    fn consumption_is_bounded_by_stream() {
        let mut b = OperandBuffer::new(8, 8);
        let mut stream = 3u64;
        let mut consumed = 0u64;
        for _ in 0..20 {
            consumed += u64::from(b.tick(4, &mut stream));
        }
        assert_eq!(consumed, 3 + 8); // initial fill + stream
        assert_eq!(stream, 0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = OperandBuffer::new(0, 1);
    }
}
