//! Heterogeneous network-on-chip models (paper §II-F).
//!
//! * The **Bi-NoC** (bi-directional 2-D mesh) carries input, weight, and
//!   output tensors between the DMU and the PE arrays; its switches
//!   unicast, multicast, or broadcast according to data reuse.
//! * The **Uni-NoC** chains accumulation units right-to-left; applying an
//!   arithmetic right-shift by 3 to partial sums before each hop keeps the
//!   transferred width constant instead of letting it grow by one slice
//!   order (3 bits) per hop — the paper's 40 % bandwidth saving.

use std::fmt;

/// How a Bi-NoC transfer is replicated across destinations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CastMode {
    /// One source to one destination.
    Unicast,
    /// One source to a subset of destinations in one injection.
    Multicast,
    /// One source to all destinations in one injection.
    Broadcast,
}

/// Bi-directional mesh NoC model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BiNoc {
    /// Flit payload width in bits.
    pub flit_bits: usize,
    /// Average hops per injection on the mesh.
    pub avg_hops: usize,
}

impl BiNoc {
    /// The Sibia Bi-NoC: 16-bit (sub-word) flits, two average hops.
    pub fn sibia() -> Self {
        Self {
            flit_bits: 16,
            avg_hops: 2,
        }
    }

    /// Flit-hop count for moving `payload_bits` to `destinations` receivers.
    ///
    /// Multicast and broadcast inject once and fan out in the switches;
    /// unicast injects per destination. (Fan-out duplication happens at the
    /// last switch, so hop counts are dominated by injections.)
    pub fn flit_hops(&self, payload_bits: u64, destinations: u64, mode: CastMode) -> u64 {
        let flits = payload_bits.div_ceil(self.flit_bits as u64);
        let injections = match mode {
            CastMode::Unicast => flits * destinations,
            CastMode::Multicast | CastMode::Broadcast => flits,
        };
        injections * self.avg_hops as u64
    }
}

impl Default for BiNoc {
    fn default() -> Self {
        Self::sibia()
    }
}

impl fmt::Display for BiNoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Bi-NoC ({}-bit flits, {} hops)",
            self.flit_bits, self.avg_hops
        )
    }
}

/// Uni-directional accumulation NoC model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniNoc {
    /// Partial-sum width leaving an accumulation unit (bits).
    pub psum_bits: usize,
    /// Accumulation units chained per core row.
    pub chain_len: usize,
}

impl UniNoc {
    /// The Sibia Uni-NoC: 14-bit shifted partial sums over an 8-unit chain
    /// (4 PE columns × 2 PEs).
    pub fn sibia() -> Self {
        Self {
            psum_bits: 14,
            chain_len: 8,
        }
    }

    /// Bits transferred per partial sum with the arithmetic shift-by-3
    /// applied before each hop: the width never grows.
    pub fn bits_with_shift(&self) -> u64 {
        (self.psum_bits * (self.chain_len - 1)) as u64
    }

    /// Bits transferred without the shift (the previous architecture, HNPU):
    /// each hop towards a higher slice order widens the sum by 3 bits.
    pub fn bits_without_shift(&self) -> u64 {
        (0..self.chain_len - 1)
            .map(|hop| (self.psum_bits + 3 * (hop + 1)) as u64)
            .sum()
    }

    /// Fractional bandwidth saving of the shift scheme (paper: 40 %).
    pub fn bandwidth_saving(&self) -> f64 {
        1.0 - self.bits_with_shift() as f64 / self.bits_without_shift() as f64
    }
}

impl Default for UniNoc {
    fn default() -> Self {
        Self::sibia()
    }
}

impl fmt::Display for UniNoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Uni-NoC ({}-bit psums, chain {}, saves {:.0}%)",
            self.psum_bits,
            self.chain_len,
            self.bandwidth_saving() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_beats_unicast() {
        let noc = BiNoc::sibia();
        let uni = noc.flit_hops(1024, 12, CastMode::Unicast);
        let bc = noc.flit_hops(1024, 12, CastMode::Broadcast);
        assert_eq!(uni, 12 * bc);
    }

    #[test]
    fn flits_round_up() {
        let noc = BiNoc::sibia();
        assert_eq!(
            noc.flit_hops(17, 1, CastMode::Unicast),
            2 * noc.avg_hops as u64
        );
    }

    #[test]
    fn shift_saves_about_40_percent() {
        let noc = UniNoc::sibia();
        let s = noc.bandwidth_saving();
        // Paper §II-F: 40 % lower Uni-NoC bandwidth than HNPU's scheme.
        assert!((0.30..=0.48).contains(&s), "got {s}");
    }

    #[test]
    fn without_shift_grows_linearly() {
        let noc = UniNoc {
            psum_bits: 14,
            chain_len: 3,
        };
        // Hops carry 17 and 20 bits.
        assert_eq!(noc.bits_without_shift(), 37);
        assert_eq!(noc.bits_with_shift(), 28);
    }
}
