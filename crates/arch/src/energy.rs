//! Per-event energy model (paper Fig. 14 right, Table I power rows).

use std::fmt;
use std::iter::Sum;
use std::ops::Add;

use crate::config::MacKind;
use crate::tech::TechNode;

/// Hardware event counts accumulated by a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EventCounts {
    /// Executed (non-skipped) MAC operations.
    pub mac_ops: u64,
    /// Register-file accesses (16-bit words): operand fetch, accumulator
    /// read-modify-write, output latching.
    pub rf_accesses: u64,
    /// On-chip SRAM accesses (16-bit words): IBUF/WBUF/OBUF/IDXBUF and
    /// global memory.
    pub sram_accesses: u64,
    /// NoC flit-hops (16-bit flits × hops).
    pub noc_flit_hops: u64,
    /// Bits moved to/from external HyperRAM.
    pub dram_bits: u64,
    /// Clock cycles the core was active.
    pub cycles: u64,
}

impl Add for EventCounts {
    type Output = EventCounts;

    fn add(self, rhs: EventCounts) -> EventCounts {
        EventCounts {
            mac_ops: self.mac_ops + rhs.mac_ops,
            rf_accesses: self.rf_accesses + rhs.rf_accesses,
            sram_accesses: self.sram_accesses + rhs.sram_accesses,
            noc_flit_hops: self.noc_flit_hops + rhs.noc_flit_hops,
            dram_bits: self.dram_bits + rhs.dram_bits,
            cycles: self.cycles + rhs.cycles,
        }
    }
}

impl Sum for EventCounts {
    fn sum<I: Iterator<Item = EventCounts>>(iter: I) -> EventCounts {
        iter.fold(EventCounts::default(), Add::add)
    }
}

/// Energy of one run, split the way the paper's Fig. 14 reports it.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// MAC datapath energy (pJ).
    pub mac_pj: f64,
    /// Register-file energy (pJ).
    pub rf_pj: f64,
    /// On-chip SRAM energy (pJ).
    pub sram_pj: f64,
    /// NoC transfer energy (pJ).
    pub noc_pj: f64,
    /// External DRAM energy (pJ).
    pub dram_pj: f64,
    /// Control / clock energy (pJ).
    pub control_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy in pJ.
    pub fn total_pj(&self) -> f64 {
        self.mac_pj + self.rf_pj + self.sram_pj + self.noc_pj + self.dram_pj + self.control_pj
    }

    /// Total energy in mJ.
    pub fn total_mj(&self) -> f64 {
        self.total_pj() / 1e9
    }

    /// Fractions `(logic, rf, sram, noc, dram, control)` of the total,
    /// where "logic" is the MAC datapath.
    pub fn fractions(&self) -> (f64, f64, f64, f64, f64, f64) {
        let t = self.total_pj();
        (
            self.mac_pj / t,
            self.rf_pj / t,
            self.sram_pj / t,
            self.noc_pj / t,
            self.dram_pj / t,
            self.control_pj / t,
        )
    }
}

impl Add for EnergyBreakdown {
    type Output = EnergyBreakdown;

    fn add(self, rhs: EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            mac_pj: self.mac_pj + rhs.mac_pj,
            rf_pj: self.rf_pj + rhs.rf_pj,
            sram_pj: self.sram_pj + rhs.sram_pj,
            noc_pj: self.noc_pj + rhs.noc_pj,
            dram_pj: self.dram_pj + rhs.dram_pj,
            control_pj: self.control_pj + rhs.control_pj,
        }
    }
}

impl Sum for EnergyBreakdown {
    fn sum<I: Iterator<Item = EnergyBreakdown>>(iter: I) -> EnergyBreakdown {
        iter.fold(EnergyBreakdown::default(), Add::add)
    }
}

impl fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (mac, rf, sram, noc, dram, ctl) = self.fractions();
        write!(
            f,
            "{:.3} mJ (mac {:.1}%, rf {:.1}%, sram {:.1}%, noc {:.1}%, dram {:.1}%, ctl {:.1}%)",
            self.total_mj(),
            mac * 100.0,
            rf * 100.0,
            sram * 100.0,
            noc * 100.0,
            dram * 100.0,
            ctl * 100.0
        )
    }
}

/// Converts event counts into energy for a given node and MAC kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    tech: TechNode,
    mac_kind: MacKind,
}

impl EnergyModel {
    /// Creates a model.
    pub fn new(tech: TechNode, mac_kind: MacKind) -> Self {
        Self { tech, mac_kind }
    }

    /// The node.
    pub fn tech(&self) -> &TechNode {
        &self.tech
    }

    /// Energy breakdown of a run.
    pub fn energy(&self, counts: &EventCounts) -> EnergyBreakdown {
        EnergyBreakdown {
            mac_pj: counts.mac_ops as f64 * self.tech.mac_energy_pj(self.mac_kind),
            rf_pj: counts.rf_accesses as f64 * self.tech.e_rf_pj,
            sram_pj: counts.sram_accesses as f64 * self.tech.e_sram_pj,
            noc_pj: counts.noc_flit_hops as f64 * self.tech.e_noc_pj,
            dram_pj: counts.dram_bits as f64 * self.tech.e_dram_pj_per_bit,
            control_pj: counts.cycles as f64 * self.tech.e_control_per_cycle_pj,
        }
    }

    /// Average power in mW over a run at `frequency_mhz`.
    pub fn average_power_mw(&self, counts: &EventCounts, frequency_mhz: u32) -> f64 {
        if counts.cycles == 0 {
            return 0.0;
        }
        let energy_pj = self.energy(counts).total_pj();
        let time_s = counts.cycles as f64 / (frequency_mhz as f64 * 1e6);
        energy_pj * 1e-12 / time_s * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_counts() -> EventCounts {
        // A fully-busy Sibia-like core cycle profile: 1536 MACs/cycle,
        // operands staged through sub-word registers (shared across 4 MACs),
        // modest SRAM traffic, DRAM traffic bounded by HyperRAM bandwidth
        // with on-chip reuse (≈0.5 bytes/cycle).
        EventCounts {
            mac_ops: 1536 * 1000,
            rf_accesses: 1536 / 2 * 1000,
            sram_accesses: 96 * 1000,
            noc_flit_hops: 48 * 1000,
            dram_bits: 4 * 1000,
            cycles: 1000,
        }
    }

    #[test]
    fn busy_core_power_is_near_table1() {
        let m = EnergyModel::new(TechNode::samsung_28nm(), MacKind::Signed4x4);
        let p = m.average_power_mw(&busy_counts(), 250);
        // Table I: Sibia MPU core 100.7 mW.
        assert!((60.0..=180.0).contains(&p), "got {p} mW");
    }

    #[test]
    fn signed_mac_core_beats_5x5_core_on_equal_events() {
        let c = busy_counts();
        let sibia = EnergyModel::new(TechNode::samsung_28nm(), MacKind::Signed4x4).energy(&c);
        let conv = EnergyModel::new(TechNode::samsung_28nm(), MacKind::SignExtended5x5).energy(&c);
        assert!(sibia.total_pj() < conv.total_pj());
        assert!((1.0 - sibia.mac_pj / conv.mac_pj - 0.219).abs() < 0.005);
    }

    #[test]
    fn breakdown_sums_and_fractions_are_consistent() {
        let m = EnergyModel::new(TechNode::samsung_28nm(), MacKind::Signed4x4);
        let e = m.energy(&busy_counts());
        let fr = e.fractions();
        let sum = fr.0 + fr.1 + fr.2 + fr.3 + fr.4 + fr.5;
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn event_counts_add() {
        let a = busy_counts();
        let b = busy_counts();
        let c = a + b;
        assert_eq!(c.mac_ops, 2 * a.mac_ops);
        let s: EventCounts = [a, b].into_iter().sum();
        assert_eq!(s, c);
    }

    #[test]
    fn zero_cycles_means_zero_power() {
        let m = EnergyModel::new(TechNode::samsung_28nm(), MacKind::Signed4x4);
        assert_eq!(m.average_power_mw(&EventCounts::default(), 250), 0.0);
    }
}
