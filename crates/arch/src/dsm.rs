//! Dynamic sparsity monitoring unit (paper §II-E).
//!
//! While a layer's first tile streams from external memory into global
//! memory, the DSM counts zero input and weight bit-slices, then:
//!
//! * picks the more sparse operand for zero skipping (**hybrid skipping**),
//! * disables skipping entirely when both are below a threshold (saving the
//!   dynamic power of the skip units and IDXBUFs),
//! * decides per slice-order whether RLE compression is profitable
//!   (**hybrid compression**).

use std::fmt;

use sibia_sbr::subword::zero_subword_fraction;

/// Which operand the flexible zero-skipping PE skips.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SkipSide {
    /// Skip zero input sub-words (weights stream densely).
    Input,
    /// Skip zero weight sub-words (inputs stream densely; the Bi-NoC swaps
    /// the IBUF/WBUF roles).
    Weight,
    /// Skipping disabled: both operands too dense to pay for the index
    /// traffic and skip-unit power.
    None,
}

impl fmt::Display for SkipSide {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SkipSide::Input => write!(f, "input skipping"),
            SkipSide::Weight => write!(f, "weight skipping"),
            SkipSide::None => write!(f, "skipping disabled"),
        }
    }
}

/// The DSM's per-layer decision.
#[derive(Debug, Clone, PartialEq)]
pub struct SkipDecision {
    /// Chosen skip side.
    pub side: SkipSide,
    /// Measured zero-sub-word fraction per input slice order (LSB first).
    pub input_sparsity: Vec<f64>,
    /// Measured zero-sub-word fraction per weight slice order.
    pub weight_sparsity: Vec<f64>,
    /// Per input slice order: compress with RLE?
    pub compress_input: Vec<bool>,
    /// Per weight slice order: compress with RLE?
    pub compress_weight: Vec<bool>,
}

impl SkipDecision {
    /// Mean zero-sub-word fraction over the skipped operand's planes
    /// (0 when skipping is disabled).
    pub fn skipped_fraction(&self) -> f64 {
        let planes = match self.side {
            SkipSide::Input => &self.input_sparsity,
            SkipSide::Weight => &self.weight_sparsity,
            SkipSide::None => return 0.0,
        };
        if planes.is_empty() {
            0.0
        } else {
            planes.iter().sum::<f64>() / planes.len() as f64
        }
    }
}

/// The dynamic sparsity monitor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DsmUnit {
    /// Below this mean zero-sub-word fraction on *both* operands, skipping
    /// is disabled.
    pub skip_threshold: f64,
    /// A slice plane is RLE-compressed only above this zero-sub-word
    /// fraction (the RLE break-even point: index bits / entry bits).
    pub compress_threshold: f64,
}

impl DsmUnit {
    /// Default thresholds: RLE with a 4-bit index over 16-bit sub-words
    /// breaks even at 4/20 = 20 % zero sub-words; skipping is worthwhile a
    /// little below that because it also saves MAC energy.
    pub fn new() -> Self {
        Self {
            skip_threshold: 0.10,
            compress_threshold: 0.20,
        }
    }

    /// Decides skipping and compression from sampled slice planes of the
    /// first tile of a layer (LSB-first plane order for both operands).
    pub fn decide(&self, input_planes: &[Vec<i8>], weight_planes: &[Vec<i8>]) -> SkipDecision {
        self.decide_from_sparsity(
            input_planes
                .iter()
                .map(|p| zero_subword_fraction(p))
                .collect(),
            weight_planes
                .iter()
                .map(|p| zero_subword_fraction(p))
                .collect(),
        )
    }

    /// Decides skipping and compression from already-measured per-order
    /// zero-sub-word fractions (LSB first). This is the entry point the
    /// performance simulator's decomposition cache uses: the fractions are
    /// computed once per `(layer, seed, repr)` and reused across
    /// architecture variants, so the decision must be a pure function of
    /// them.
    pub fn decide_from_sparsity(
        &self,
        input_sparsity: Vec<f64>,
        weight_sparsity: Vec<f64>,
    ) -> SkipDecision {
        let mean = |v: &[f64]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        let mi = mean(&input_sparsity);
        let mw = mean(&weight_sparsity);
        let side = if mi < self.skip_threshold && mw < self.skip_threshold {
            SkipSide::None
        } else if mw > mi {
            SkipSide::Weight
        } else {
            SkipSide::Input
        };
        let compress_input = input_sparsity
            .iter()
            .map(|&s| s > self.compress_threshold)
            .collect();
        let compress_weight = weight_sparsity
            .iter()
            .map(|&s| s > self.compress_threshold)
            .collect();
        SkipDecision {
            side,
            input_sparsity,
            weight_sparsity,
            compress_input,
            compress_weight,
        }
    }
}

impl Default for DsmUnit {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane(zero_blocks: usize, dense_blocks: usize) -> Vec<i8> {
        let mut p = Vec::new();
        for _ in 0..zero_blocks {
            p.extend_from_slice(&[0, 0, 0, 0]);
        }
        for _ in 0..dense_blocks {
            p.extend_from_slice(&[1, -2, 3, -4]);
        }
        p
    }

    #[test]
    fn picks_the_sparser_side() {
        let dsm = DsmUnit::new();
        let d = dsm.decide(&[plane(8, 2)], &[plane(2, 8)]);
        assert_eq!(d.side, SkipSide::Input);
        let d = dsm.decide(&[plane(2, 8)], &[plane(8, 2)]);
        assert_eq!(d.side, SkipSide::Weight);
    }

    #[test]
    fn disables_skipping_when_both_dense() {
        let dsm = DsmUnit::new();
        let d = dsm.decide(&[plane(0, 10)], &[plane(0, 10)]);
        assert_eq!(d.side, SkipSide::None);
        assert_eq!(d.skipped_fraction(), 0.0);
    }

    #[test]
    fn compression_is_per_plane() {
        let dsm = DsmUnit::new();
        // Low plane dense, high plane sparse — the hybrid-compression case.
        let d = dsm.decide(&[plane(0, 10), plane(9, 1)], &[plane(0, 10)]);
        assert_eq!(d.compress_input, vec![false, true]);
        assert_eq!(d.compress_weight, vec![false]);
    }

    #[test]
    fn skipped_fraction_reflects_side() {
        let dsm = DsmUnit::new();
        let d = dsm.decide(&[plane(5, 5)], &[plane(0, 10)]);
        assert_eq!(d.side, SkipSide::Input);
        assert!((d.skipped_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ties_prefer_input_skipping() {
        // Input skipping is the paper's default data path; the DSM only
        // swaps when weights are strictly sparser.
        let dsm = DsmUnit::new();
        let d = dsm.decide(&[plane(5, 5)], &[plane(5, 5)]);
        assert_eq!(d.side, SkipSide::Input);
    }
}
