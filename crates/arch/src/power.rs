//! Dynamic power gating (paper §II-E): the DSM disables the zero-skipping
//! units and IDXBUFs while dense bit-slices stream, trading skip capability
//! it could not use anyway for dynamic power.

use std::fmt;

use crate::config::CoreConfig;
use crate::dsm::SkipSide;
use crate::tech::TechNode;

/// Per-cycle dynamic power of the gateable units (mW at a given frequency).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GatingModel {
    /// Skip-unit dynamic energy per PE per active cycle (pJ).
    pub skip_unit_pj_per_cycle: f64,
    /// IDXBUF dynamic energy per PE per active cycle (pJ).
    pub idxbuf_pj_per_cycle: f64,
}

impl GatingModel {
    /// Constants consistent with the 28 nm node: the skip units and index
    /// buffers are small relative to a PE's MAC array.
    pub fn samsung_28nm() -> Self {
        let t = TechNode::samsung_28nm();
        Self {
            // Skip logic toggles every cycle while enabled; scale from its
            // area share against the MAC array's energy density.
            skip_unit_pj_per_cycle: t.skip_unit_um2 / t.mac_signed4_um2 * t.e_mac_signed4_pj,
            idxbuf_pj_per_cycle: t.e_sram_pj / 4.0,
        }
    }

    /// Energy the gateable units consume over `cycles` on a core, given
    /// which side (if any) is being skipped: with skipping disabled
    /// (`SkipSide::None`) everything is gated off.
    pub fn energy_pj(&self, core: &CoreConfig, side: SkipSide, cycles: u64) -> f64 {
        if side == SkipSide::None || !core.has_zero_skipping {
            return 0.0;
        }
        core.total_pes() as f64
            * (self.skip_unit_pj_per_cycle + self.idxbuf_pj_per_cycle)
            * cycles as f64
    }

    /// Power saved (mW) by gating over an all-dense phase of `cycles` at
    /// `frequency_mhz`, versus leaving the units enabled.
    pub fn gated_power_saving_mw(&self, core: &CoreConfig, cycles: u64, frequency_mhz: u32) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        let enabled = self.energy_pj(core, SkipSide::Input, cycles);
        let time_s = cycles as f64 / (frequency_mhz as f64 * 1e6);
        enabled * 1e-12 / time_s * 1e3
    }
}

impl Default for GatingModel {
    fn default() -> Self {
        Self::samsung_28nm()
    }
}

impl fmt::Display for GatingModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gating: skip {:.3} pJ/cyc, idxbuf {:.3} pJ/cyc per PE",
            self.skip_unit_pj_per_cycle, self.idxbuf_pj_per_cycle
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gating_saves_everything_when_disabled() {
        let g = GatingModel::default();
        let core = CoreConfig::sibia();
        assert_eq!(g.energy_pj(&core, SkipSide::None, 1_000_000), 0.0);
        assert!(g.energy_pj(&core, SkipSide::Input, 1_000_000) > 0.0);
        assert!(g.energy_pj(&core, SkipSide::Weight, 100) > 0.0);
    }

    #[test]
    fn cores_without_skipping_pay_nothing() {
        let g = GatingModel::default();
        let bf = CoreConfig::bit_fusion();
        assert_eq!(g.energy_pj(&bf, SkipSide::Input, 1000), 0.0);
    }

    #[test]
    fn saving_is_a_small_but_real_power_slice() {
        // The DSM's gating on dense layers saves single-digit mW — small
        // next to the ~100 mW core, which is why it is a *hybrid* decision,
        // not the headline.
        let g = GatingModel::default();
        let core = CoreConfig::sibia();
        let mw = g.gated_power_saving_mw(&core, 1_000_000, 250);
        assert!(mw > 1.0 && mw < 40.0, "got {mw} mW");
    }
}
