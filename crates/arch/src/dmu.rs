//! Data management unit throughput model (paper Fig. 4 / Fig. 5b).
//!
//! Each DMU core hosts the SBR unit, the RLE unit and the DSM next to the
//! 64 KiB global memory. For the pipeline to stay transparent, the encoder
//! chain must sustain at least the external-memory ingress rate — this
//! module checks that balance and sizes the encode latency a layer tile
//! pays.

use std::fmt;

use crate::extmem::HyperRam;

/// Throughput parameters of one DMU core's encoder chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmuModel {
    /// Values the SBR unit decomposes per cycle (its four borrow/lend
    /// register chains work in parallel).
    pub sbr_values_per_cycle: u32,
    /// Sub-words the RLE unit emits per cycle.
    pub rle_subwords_per_cycle: u32,
    /// Core clock in MHz.
    pub frequency_mhz: u32,
}

impl DmuModel {
    /// The Sibia DMU: 4 values/cycle through the SBR unit, 2 sub-words per
    /// cycle through the RLE unit, at the 250 MHz core clock.
    pub fn sibia() -> Self {
        Self {
            sbr_values_per_cycle: 4,
            rle_subwords_per_cycle: 2,
            frequency_mhz: 250,
        }
    }

    /// Values per second the SBR unit sustains.
    pub fn sbr_rate(&self) -> f64 {
        f64::from(self.sbr_values_per_cycle) * f64::from(self.frequency_mhz) * 1e6
    }

    /// External-memory ingress in values per second for `bits`-bit data.
    pub fn ingress_rate(&self, extmem: &HyperRam, bits: u8) -> f64 {
        extmem.bandwidth_bytes_per_s() * 8.0 / f64::from(bits)
    }

    /// Whether the encoder chain keeps up with the external memory for
    /// `bits`-bit data (it must, or the DMU would throttle the DRAM).
    pub fn encoder_keeps_up(&self, extmem: &HyperRam, bits: u8) -> bool {
        self.sbr_rate() >= self.ingress_rate(extmem, bits)
    }

    /// Cycles to encode a tile of `values` (SBR-bound or RLE-bound,
    /// whichever is slower; `slices` per value feed the RLE unit in
    /// sub-words of four).
    pub fn encode_cycles(&self, values: u64, slices: usize) -> u64 {
        let sbr = values.div_ceil(u64::from(self.sbr_values_per_cycle));
        let subwords = values.div_ceil(4) * slices as u64;
        let rle = subwords.div_ceil(u64::from(self.rle_subwords_per_cycle));
        sbr.max(rle)
    }
}

impl Default for DmuModel {
    fn default() -> Self {
        Self::sibia()
    }
}

impl fmt::Display for DmuModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DMU ({} values/cyc SBR, {} sub-words/cyc RLE @ {} MHz)",
            self.sbr_values_per_cycle, self.rle_subwords_per_cycle, self.frequency_mhz
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoder_outruns_hyperram_at_every_precision() {
        // 1 Gvalues/s SBR rate vs ≤380 Mvalues/s HyperRAM ingress at 7-bit.
        let dmu = DmuModel::sibia();
        let mem = HyperRam::cypress_64mbit();
        for bits in [4u8, 7, 10, 13] {
            assert!(
                dmu.encoder_keeps_up(&mem, bits),
                "{bits}-bit: {} < {}",
                dmu.sbr_rate(),
                dmu.ingress_rate(&mem, bits)
            );
        }
    }

    #[test]
    fn encode_cycles_cover_both_bottlenecks() {
        let dmu = DmuModel::sibia();
        // 1024 7-bit values: SBR 256 cycles; RLE: 256 sub-words × 2 planes
        // / 2 per cycle = 256 cycles → tie.
        assert_eq!(dmu.encode_cycles(1024, 2), 256);
        // 13-bit (4 planes): RLE-bound.
        assert_eq!(dmu.encode_cycles(1024, 4), 512);
        // One value still costs a cycle.
        assert_eq!(dmu.encode_cycles(1, 2), 1);
    }
}
