//! External-memory model: Cypress HyperRAM (paper §III-B).
//!
//! The paper attaches a HyperRAM self-refresh DRAM through a dedicated
//! interface; only its bandwidth, access latency and per-bit energy enter
//! the evaluation (Fig. 14's 19.7 % DRAM energy share and the transfer-time
//! component of layer latency).

use std::fmt;

/// HyperRAM interface model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HyperRam {
    /// Interface clock in MHz (DDR).
    pub bus_mhz: u32,
    /// Bus width in bits.
    pub bus_bits: u32,
    /// Initial access latency in bus clocks.
    pub access_latency_clocks: u32,
}

impl HyperRam {
    /// The 166 MHz ×8 DDR part the paper cites (≈333 MB/s peak).
    pub fn cypress_64mbit() -> Self {
        Self {
            bus_mhz: 166,
            bus_bits: 8,
            access_latency_clocks: 7,
        }
    }

    /// Peak bandwidth in bytes per second (DDR: two transfers per clock).
    pub fn bandwidth_bytes_per_s(&self) -> f64 {
        self.bus_mhz as f64 * 1e6 * 2.0 * self.bus_bits as f64 / 8.0
    }

    /// Time to move one burst of `bytes`, in seconds.
    pub fn transfer_time_s(&self, bytes: u64) -> f64 {
        let latency = self.access_latency_clocks as f64 / (self.bus_mhz as f64 * 1e6);
        latency + bytes as f64 / self.bandwidth_bytes_per_s()
    }

    /// Core cycles (at `core_mhz`) to move `bytes` as a stream of
    /// `burst_bytes` bursts.
    ///
    /// # Panics
    ///
    /// Panics if `burst_bytes` is zero.
    pub fn transfer_cycles(&self, bytes: u64, burst_bytes: u64, core_mhz: u32) -> u64 {
        assert!(burst_bytes > 0, "burst size must be positive");
        let bursts = bytes.div_ceil(burst_bytes);
        let time_s = bursts as f64 * self.transfer_time_s(burst_bytes.min(bytes.max(1)));
        (time_s * core_mhz as f64 * 1e6).ceil() as u64
    }
}

impl Default for HyperRam {
    fn default() -> Self {
        Self::cypress_64mbit()
    }
}

impl fmt::Display for HyperRam {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "HyperRAM {} MHz ×{} ({:.0} MB/s)",
            self.bus_mhz,
            self.bus_bits,
            self.bandwidth_bytes_per_s() / 1e6
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_bandwidth_is_333_mb_s() {
        let m = HyperRam::cypress_64mbit();
        assert!((m.bandwidth_bytes_per_s() / 1e6 - 332.0).abs() < 5.0);
    }

    #[test]
    fn transfer_time_includes_latency() {
        let m = HyperRam::cypress_64mbit();
        let t1 = m.transfer_time_s(0);
        assert!(t1 > 0.0);
        let t2 = m.transfer_time_s(332); // ~1 µs of payload
        assert!(t2 > t1);
    }

    #[test]
    fn cycles_scale_with_size() {
        let m = HyperRam::cypress_64mbit();
        let small = m.transfer_cycles(1024, 1024, 250);
        let big = m.transfer_cycles(1024 * 1024, 1024, 250);
        assert!(big > small * 500);
    }

    #[test]
    #[should_panic(expected = "burst size")]
    fn zero_burst_rejected() {
        let _ = HyperRam::default().transfer_cycles(10, 0, 250);
    }
}
