//! Hardware hierarchy configuration.
//!
//! Paper Fig. 4: a Sibia chip has a quad-core matrix processing unit (MPU)
//! and a dual-core data management unit (DMU). Each MPU core has three PE
//! arrays; a PE array has four PE columns; a PE column has two PEs and an
//! accumulation unit; each PE integrates 64 signed 4b×4b MAC units —
//! 3 × 4 × 2 × 64 = 1536 MACs per core.

use std::fmt;

/// The multiplier datapath a core is built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MacKind {
    /// Sibia's signed 4b×4b MAC: no sign extension, 7-bit product,
    /// 12-bit accumulator.
    Signed4x4,
    /// The conventional bit-slice MAC (Bit-fusion, HNPU): 5b×5b with sign
    /// extension of unsigned slices and a widened accumulator.
    SignExtended5x5,
    /// Signed-magnitude 4-bit MAC (§IV ablation): unsigned multiplier, XOR
    /// sign logic, and a 2's complementer before accumulation.
    SignedMagnitude4,
    /// A fixed full-bit-width 8b×8b MAC (the non-slice reference of
    /// Fig. 3a).
    Fixed8x8,
}

impl MacKind {
    /// Radix of the slices this MAC consumes (8 for 3-magnitude-bit signed
    /// slices, 16 for conventional 4-bit container slices, 256 for the
    /// fixed 8-bit datapath).
    pub fn slice_radix(&self) -> u32 {
        match self {
            MacKind::Signed4x4 | MacKind::SignedMagnitude4 => 8,
            MacKind::SignExtended5x5 => 16,
            MacKind::Fixed8x8 => 256,
        }
    }
}

impl fmt::Display for MacKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MacKind::Signed4x4 => write!(f, "signed 4b×4b"),
            MacKind::SignExtended5x5 => write!(f, "sign-extended 5b×5b"),
            MacKind::SignedMagnitude4 => write!(f, "signed-magnitude 4b"),
            MacKind::Fixed8x8 => write!(f, "fixed 8b×8b"),
        }
    }
}

/// Configuration of one MPU core (or a revised baseline core).
#[derive(Debug, Clone, PartialEq)]
pub struct CoreConfig {
    /// Display name.
    pub name: String,
    /// Multiplier datapath.
    pub mac_kind: MacKind,
    /// PE arrays per core.
    pub pe_arrays: usize,
    /// PE columns per PE array.
    pub pe_cols: usize,
    /// PEs per column.
    pub pes_per_col: usize,
    /// MAC units per PE.
    pub macs_per_pe: usize,
    /// Clock frequency in MHz.
    pub frequency_mhz: u32,
    /// On-core SRAM buffers (IBUF + WBUF + OBUF + IDXBUF) in KiB.
    pub sram_kib: usize,
    /// Whether the core has zero-skipping units and index buffers.
    pub has_zero_skipping: bool,
}

impl CoreConfig {
    /// The Sibia MPU core of Table I.
    pub fn sibia() -> Self {
        Self {
            name: "Sibia MPU core".to_owned(),
            mac_kind: MacKind::Signed4x4,
            pe_arrays: 3,
            pe_cols: 4,
            pes_per_col: 2,
            macs_per_pe: 64,
            frequency_mhz: 250,
            sram_kib: 128,
            has_zero_skipping: true,
        }
    }

    /// The revised Bit-fusion core of Table I: same MAC count, frequency and
    /// node, conventional 5b×5b MACs, no sparsity exploitation.
    pub fn bit_fusion() -> Self {
        Self {
            name: "Revised Bit-fusion core".to_owned(),
            mac_kind: MacKind::SignExtended5x5,
            has_zero_skipping: false,
            sram_kib: 64,
            ..Self::sibia()
        }
    }

    /// The revised HNPU core of Table I: conventional 5b×5b MACs plus zero
    /// input-bit-slice skipping.
    pub fn hnpu() -> Self {
        Self {
            name: "Revised HNPU core".to_owned(),
            mac_kind: MacKind::SignExtended5x5,
            has_zero_skipping: true,
            sram_kib: 128,
            ..Self::sibia()
        }
    }

    /// Total MAC units in the core.
    pub fn total_macs(&self) -> usize {
        self.pe_arrays * self.pe_cols * self.pes_per_col * self.macs_per_pe
    }

    /// Total PEs in the core.
    pub fn total_pes(&self) -> usize {
        self.pe_arrays * self.pe_cols * self.pes_per_col
    }

    /// Raw slice-level MAC throughput in GOPS (2 ops per MAC per cycle).
    pub fn peak_slice_gops(&self) -> f64 {
        self.total_macs() as f64 * self.frequency_mhz as f64 * 1e6 * 2.0 / 1e9
    }
}

impl fmt::Display for CoreConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} {} MACs @ {} MHz)",
            self.name,
            self.total_macs(),
            self.mac_kind,
            self.frequency_mhz
        )
    }
}

/// Chip-level configuration (quad-core MPU + dual-core DMU).
#[derive(Debug, Clone, PartialEq)]
pub struct ChipConfig {
    /// The per-core configuration.
    pub core: CoreConfig,
    /// Number of MPU cores.
    pub mpu_cores: usize,
    /// Number of DMU cores.
    pub dmu_cores: usize,
    /// Global memory per DMU core in KiB.
    pub global_mem_kib: usize,
}

impl ChipConfig {
    /// The full Sibia chip of Fig. 4.
    pub fn sibia() -> Self {
        Self {
            core: CoreConfig::sibia(),
            mpu_cores: 4,
            dmu_cores: 2,
            global_mem_kib: 64,
        }
    }

    /// Total MACs across all MPU cores.
    pub fn total_macs(&self) -> usize {
        self.mpu_cores * self.core.total_macs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sibia_core_has_1536_macs() {
        let c = CoreConfig::sibia();
        assert_eq!(c.total_macs(), 1536);
        assert_eq!(c.total_pes(), 24);
        // 1536 MACs × 250 MHz × 2 = 768 slice GOPS.
        assert!((c.peak_slice_gops() - 768.0).abs() < 1e-9);
    }

    #[test]
    fn baselines_match_table1_setup() {
        // Table I revises the baselines to the same MAC count / frequency.
        let bf = CoreConfig::bit_fusion();
        let hnpu = CoreConfig::hnpu();
        let sibia = CoreConfig::sibia();
        assert_eq!(bf.total_macs(), sibia.total_macs());
        assert_eq!(hnpu.total_macs(), sibia.total_macs());
        assert_eq!(bf.frequency_mhz, 250);
        assert!(!bf.has_zero_skipping);
        assert!(hnpu.has_zero_skipping);
        assert_eq!(bf.mac_kind, MacKind::SignExtended5x5);
    }

    #[test]
    fn chip_has_quad_core_mpu() {
        let chip = ChipConfig::sibia();
        assert_eq!(chip.total_macs(), 4 * 1536);
        assert_eq!(chip.dmu_cores, 2);
    }

    #[test]
    fn mac_kinds_have_radices() {
        assert_eq!(MacKind::Signed4x4.slice_radix(), 8);
        assert_eq!(MacKind::SignExtended5x5.slice_radix(), 16);
        assert_eq!(MacKind::Fixed8x8.slice_radix(), 256);
    }
}
