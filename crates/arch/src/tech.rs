//! Technology-node constants.
//!
//! Every constant below is a **calibrated input**, not a measurement: the
//! paper reports silicon numbers from a Samsung 28 nm flow, and we pick
//! per-component constants that reproduce its published aggregates. Each
//! constant's calibration target is documented inline. The 65 nm node
//! (Table II) is derived by standard scaling.

use std::fmt;

use crate::config::MacKind;

/// A CMOS technology node with per-component area and energy constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechNode {
    /// Node label, e.g. `"28nm"`.
    pub name: &'static str,
    /// Area of one signed 4b×4b MAC (multiplier + adder, excluding the
    /// accumulation register which is counted as RF), in µm².
    pub mac_signed4_um2: f64,
    /// Area of the sign-extended 5b×5b MAC used by Bit-fusion / HNPU.
    /// Calibration: the signed MAC saves the sign-extension unit, one bit of
    /// multiplier width, and accumulator width (paper §II-C).
    pub mac_5x5_um2: f64,
    /// Area of a signed-magnitude 4-bit MAC. Calibration: paper §IV —
    /// 16.3 % larger than the signed 4-bit MAC.
    pub mac_signmag4_um2: f64,
    /// Area of a fixed full-bit-width 8b×8b MAC. Calibration: paper §I /
    /// Fig. 3a — a 4-bit slice architecture needs a 2.07× larger logic area
    /// than a full-bit-width architecture for equal 8-bit throughput
    /// (4 slice MACs replace 1 fixed MAC).
    pub mac_fixed8_um2: f64,
    /// Register-file area per bit (µm²/bit), standard-cell flops.
    pub rf_um2_per_bit: f64,
    /// SRAM macro area per bit (µm²/bit).
    pub sram_um2_per_bit: f64,
    /// Control / NoC / misc logic overhead per PE (µm²): skip units, index
    /// decoders, switches. Calibration: Fig. 14 — control+compute logic is
    /// 24.2 % of core area.
    pub pe_control_um2: f64,
    /// Zero-skipping unit area per PE for Sibia's coarse sub-word
    /// granularity (µm², only when skipping enabled).
    pub skip_unit_um2: f64,
    /// Zero-skipping unit area per PE at the conventional per-slice
    /// granularity (µm²). Calibration: Fig. 3a — a 4-bit slice architecture
    /// needs 4× the number of zero-skipping units of a full-bit-width one.
    pub skip_unit_fine_um2: f64,

    /// Energy of one signed 4b×4b MAC operation (pJ). Calibration: paper
    /// §II-C — 21.9 % lower than the 5b×5b MAC at 7-bit precision.
    pub e_mac_signed4_pj: f64,
    /// Energy of one 5b×5b sign-extended MAC operation (pJ).
    pub e_mac_5x5_pj: f64,
    /// Energy of one signed-magnitude 4-bit MAC operation (pJ): the extra
    /// 2's complementer adds switching energy.
    pub e_mac_signmag4_pj: f64,
    /// Energy of one fixed 8b×8b MAC operation (pJ).
    pub e_mac_fixed8_pj: f64,
    /// Register-file access energy per 16-bit word (pJ).
    pub e_rf_pj: f64,
    /// On-chip SRAM access energy per 16-bit word (pJ).
    pub e_sram_pj: f64,
    /// NoC energy per 16-bit flit per hop (pJ).
    pub e_noc_pj: f64,
    /// External HyperRAM energy per bit (pJ). Calibration: Fig. 14 —
    /// DRAM is 19.7 % of total energy under the tiled dataflow.
    pub e_dram_pj_per_bit: f64,
    /// Idle/control energy per core per cycle (pJ): clock tree, sequencing.
    pub e_control_per_cycle_pj: f64,
}

impl TechNode {
    /// Samsung 28 nm constants (the paper's implementation node).
    pub const fn samsung_28nm() -> Self {
        Self {
            name: "28nm",
            mac_signed4_um2: 130.0,
            mac_5x5_um2: 205.0,
            mac_signmag4_um2: 151.2, // 130 × 1.163 (§IV)
            mac_fixed8_um2: 396.0,   // 4×205 / 2.07 (Fig. 3a)
            rf_um2_per_bit: 2.5,
            sram_um2_per_bit: 0.34,
            pe_control_um2: 2_200.0,
            skip_unit_um2: 900.0,
            skip_unit_fine_um2: 3_600.0,
            e_mac_signed4_pj: 0.1756, // 0.2249 × (1 − 0.219) (§II-C)
            e_mac_5x5_pj: 0.2249,
            e_mac_signmag4_pj: 0.205,
            e_mac_fixed8_pj: 0.68,
            e_rf_pj: 0.10,
            e_sram_pj: 0.62,
            e_noc_pj: 0.13,
            e_dram_pj_per_bit: 8.0,
            e_control_per_cycle_pj: 18.0,
        }
    }

    /// 65 nm constants for the Table II comparison, derived by standard
    /// node scaling (area ×(65/28)² ≈ 5.4, energy ×≈2.6).
    pub const fn generic_65nm() -> Self {
        const A: f64 = 5.39;
        const E: f64 = 2.6;
        let n28 = Self::samsung_28nm();
        Self {
            name: "65nm",
            mac_signed4_um2: n28.mac_signed4_um2 * A,
            mac_5x5_um2: n28.mac_5x5_um2 * A,
            mac_signmag4_um2: n28.mac_signmag4_um2 * A,
            mac_fixed8_um2: n28.mac_fixed8_um2 * A,
            rf_um2_per_bit: n28.rf_um2_per_bit * A,
            sram_um2_per_bit: n28.sram_um2_per_bit * A,
            pe_control_um2: n28.pe_control_um2 * A,
            skip_unit_um2: n28.skip_unit_um2 * A,
            skip_unit_fine_um2: n28.skip_unit_fine_um2 * A,
            e_mac_signed4_pj: n28.e_mac_signed4_pj * E,
            e_mac_5x5_pj: n28.e_mac_5x5_pj * E,
            e_mac_signmag4_pj: n28.e_mac_signmag4_pj * E,
            e_mac_fixed8_pj: n28.e_mac_fixed8_pj * E,
            e_rf_pj: n28.e_rf_pj * E,
            e_sram_pj: n28.e_sram_pj * E,
            e_noc_pj: n28.e_noc_pj * E,
            e_dram_pj_per_bit: n28.e_dram_pj_per_bit, // external part: unscaled
            e_control_per_cycle_pj: n28.e_control_per_cycle_pj * E,
        }
    }

    /// Area of one MAC unit of `kind` (µm²).
    pub fn mac_area_um2(&self, kind: MacKind) -> f64 {
        match kind {
            MacKind::Signed4x4 => self.mac_signed4_um2,
            MacKind::SignExtended5x5 => self.mac_5x5_um2,
            MacKind::SignedMagnitude4 => self.mac_signmag4_um2,
            MacKind::Fixed8x8 => self.mac_fixed8_um2,
        }
    }

    /// Energy of one MAC operation of `kind` (pJ).
    pub fn mac_energy_pj(&self, kind: MacKind) -> f64 {
        match kind {
            MacKind::Signed4x4 => self.e_mac_signed4_pj,
            MacKind::SignExtended5x5 => self.e_mac_5x5_pj,
            MacKind::SignedMagnitude4 => self.e_mac_signmag4_pj,
            MacKind::Fixed8x8 => self.e_mac_fixed8_pj,
        }
    }
}

impl fmt::Display for TechNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_mac_saves_21_9_percent_energy() {
        let t = TechNode::samsung_28nm();
        let saving = 1.0 - t.e_mac_signed4_pj / t.e_mac_5x5_pj;
        assert!((saving - 0.219).abs() < 0.005, "got {saving}");
    }

    #[test]
    fn signmag_mac_is_16_3_percent_larger() {
        let t = TechNode::samsung_28nm();
        let overhead = t.mac_signmag4_um2 / t.mac_signed4_um2 - 1.0;
        assert!((overhead - 0.163).abs() < 0.005, "got {overhead}");
    }

    #[test]
    fn slice_architecture_logic_overhead_is_2_07x() {
        // Fig. 3a: equal 8-bit throughput needs 4 conventional slice MACs
        // per fixed 8-bit MAC.
        let t = TechNode::samsung_28nm();
        let ratio = 4.0 * t.mac_5x5_um2 / t.mac_fixed8_um2;
        assert!((ratio - 2.07).abs() < 0.02, "got {ratio}");
    }

    #[test]
    fn node_scaling_preserves_ratios() {
        let a = TechNode::samsung_28nm();
        let b = TechNode::generic_65nm();
        assert!(
            (b.mac_5x5_um2 / b.mac_signed4_um2 - a.mac_5x5_um2 / a.mac_signed4_um2).abs() < 1e-9
        );
        assert!(b.e_mac_signed4_pj > a.e_mac_signed4_pj);
    }

    #[test]
    fn memory_hierarchy_energy_ordering() {
        // RF < SRAM < NoC-traversed SRAM < DRAM per bit.
        let t = TechNode::samsung_28nm();
        assert!(t.e_rf_pj < t.e_sram_pj);
        assert!(t.e_sram_pj / 16.0 < t.e_dram_pj_per_bit);
    }
}
