//! Hardware model of the Sibia accelerator and its baselines.
//!
//! The paper's silicon results (Table I, Fig. 9, Fig. 14) are produced by a
//! 28 nm ASIC flow we cannot run; instead this crate provides a
//! **component-level area/energy model** whose per-component constants are
//! calibrated to the published numbers (every constant documents its
//! calibration target in [`tech`]). The simulators in `sibia-sim` count
//! events (MAC ops, register-file/SRAM/DRAM accesses, NoC flits); this crate
//! turns those counts into area, power, and energy — the quantities every
//! paper table and figure reports.
//!
//! Modules:
//!
//! * [`config`] — the PE/MPU hierarchy (3 PE arrays × 4 PE columns × 2 PEs ×
//!   64 MACs = 1536 MACs per core) and baseline core configurations,
//! * [`tech`] — 28 nm / 65 nm technology constants,
//! * [`area`] — logic/RF/SRAM area model (Fig. 14 left, Fig. 3a, §IV),
//! * [`energy`] — per-event energy model (Fig. 14 right, §II-C),
//! * [`noc`] — Bi-NoC / Uni-NoC bandwidth models (§II-F),
//! * [`extmem`] — HyperRAM external-memory model,
//! * [`dsm`] — the dynamic sparsity monitoring unit (§II-E).

pub mod area;
pub mod buffer;
pub mod config;
pub mod dmu;
pub mod dsm;
pub mod energy;
pub mod extmem;
pub mod mesh;
pub mod noc;
pub mod power;
pub mod tech;

pub use config::{CoreConfig, MacKind};
pub use dsm::{DsmUnit, SkipDecision, SkipSide};
pub use energy::{EnergyBreakdown, EnergyModel, EventCounts};
pub use tech::TechNode;
