//! Raw `epoll(7)` / `eventfd(2)` syscalls via a self-declared `extern`.
//!
//! `std` exposes no readiness API, but it already links libc, so declaring
//! the five symbols we need keeps the workspace dependency-free — the same
//! trick `sibia_serve::signal` uses for `signal(2)`. Everything here is a
//! thin RAII wrapper; the unsafety is confined to this module and each
//! wrapper upholds the obvious invariant (the fd it owns is open until
//! `Drop`).
//!
//! Off Linux the module degrades to stubs whose constructors return
//! [`std::io::ErrorKind::Unsupported`], so the crate still compiles and the
//! caller gets a typed "no reactor here" error instead of a link failure.

#[cfg(target_os = "linux")]
pub use linux::{widen_listen_backlog, Epoll, EventFd};

#[cfg(not(target_os = "linux"))]
pub use fallback::{widen_listen_backlog, Epoll, EventFd};

/// One readiness event, mirroring `struct epoll_event`. On x86-64 the
/// kernel ABI packs the struct (no padding between `events` and `data`);
/// other architectures use natural alignment.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Debug, Clone, Copy, Default)]
pub struct EpollEvent {
    /// `EPOLL*` readiness bits.
    pub events: u32,
    /// The caller's token, returned verbatim.
    pub data: u64,
}

/// Readable (`EPOLLIN`).
pub const EPOLLIN: u32 = 0x001;
/// Writable (`EPOLLOUT`).
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (`EPOLLERR`; always reported, never needs arming).
pub const EPOLLERR: u32 = 0x008;
/// Peer hung up (`EPOLLHUP`).
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down its write half (`EPOLLRDHUP`).
pub const EPOLLRDHUP: u32 = 0x2000;
/// Edge-triggered delivery (`EPOLLET`).
pub const EPOLLET: u32 = 1 << 31;

#[cfg(target_os = "linux")]
mod linux {
    use super::EpollEvent;
    use std::io;
    use std::os::fd::RawFd;

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EFD_CLOEXEC: i32 = 0o2000000;
    const EFD_NONBLOCK: i32 = 0o4000;

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
    }

    /// Re-issues `listen(2)` on an already-listening socket to widen its
    /// accept backlog. `std::net::TcpListener::bind` hardcodes a backlog of
    /// 128, which a multi-thousand-connection storm overflows — established
    /// connections then sit half-open until the kernel resets them. Calling
    /// `listen` again on Linux just updates the backlog (clamped by
    /// `net.core.somaxconn`). Failure is ignored: the socket keeps its old
    /// backlog, which is only a capacity loss, never a correctness one.
    pub fn widen_listen_backlog(listener: &std::net::TcpListener, backlog: i32) {
        use std::os::fd::AsRawFd;
        unsafe { listen(listener.as_raw_fd(), backlog) };
    }

    /// An owned epoll instance.
    #[derive(Debug)]
    pub struct Epoll {
        fd: RawFd,
    }

    impl Epoll {
        /// Creates the instance (`EPOLL_CLOEXEC`).
        pub fn new() -> io::Result<Self> {
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Self { fd })
        }

        fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            let mut ev = EpollEvent {
                events,
                data: token,
            };
            let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Registers `fd` for `events`, tagging it with `token`.
        pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, events, token)
        }

        /// Changes the registration of `fd`.
        pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, events, token)
        }

        /// Removes `fd` from the interest list.
        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// Blocks up to `timeout_ms` (-1 = forever) and fills `events`,
        /// returning how many fired. `EINTR` reports as zero events rather
        /// than an error: the caller's loop just comes around again.
        pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
            let n = unsafe {
                epoll_wait(
                    self.fd,
                    events.as_mut_ptr(),
                    events.len().min(i32::MAX as usize) as i32,
                    timeout_ms,
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(err);
            }
            Ok(n as usize)
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            unsafe { close(self.fd) };
        }
    }

    /// A nonblocking `eventfd(2)`: the reactor's cross-thread wakeup.
    /// Worker threads [`wake`](EventFd::wake) it after queuing a
    /// completion; the reactor holds it in its epoll set and
    /// [`drain`](EventFd::drain)s the counter each time it fires.
    #[derive(Debug)]
    pub struct EventFd {
        fd: RawFd,
    }

    impl EventFd {
        /// Creates the fd (nonblocking, cloexec).
        pub fn new() -> io::Result<Self> {
            let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Self { fd })
        }

        /// The fd to register in an epoll set.
        pub fn raw_fd(&self) -> RawFd {
            self.fd
        }

        /// Adds 1 to the counter, waking any epoll waiter. A full counter
        /// (`EAGAIN`) already guarantees a pending wakeup, so errors are
        /// deliberately ignored.
        pub fn wake(&self) {
            let one: u64 = 1;
            unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
        }

        /// Zeroes the counter so edge-triggered registration re-arms.
        pub fn drain(&self) {
            let mut buf = [0u8; 8];
            unsafe { read(self.fd, buf.as_mut_ptr(), 8) };
        }
    }

    impl Drop for EventFd {
        fn drop(&mut self) {
            unsafe { close(self.fd) };
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod fallback {
    use super::EpollEvent;
    use std::io;

    fn unsupported() -> io::Error {
        io::Error::new(
            io::ErrorKind::Unsupported,
            "the sibia-net reactor requires Linux epoll",
        )
    }

    /// No-op off Linux: the listener keeps `std`'s default backlog.
    pub fn widen_listen_backlog(_listener: &std::net::TcpListener, _backlog: i32) {}

    /// Stub: construction fails with `Unsupported` off Linux.
    #[derive(Debug)]
    pub struct Epoll;

    impl Epoll {
        /// Always `Unsupported` off Linux.
        pub fn new() -> io::Result<Self> {
            Err(unsupported())
        }

        /// Unreachable (no instance can exist).
        pub fn add(&self, _fd: i32, _events: u32, _token: u64) -> io::Result<()> {
            Err(unsupported())
        }

        /// Unreachable (no instance can exist).
        pub fn modify(&self, _fd: i32, _events: u32, _token: u64) -> io::Result<()> {
            Err(unsupported())
        }

        /// Unreachable (no instance can exist).
        pub fn delete(&self, _fd: i32) -> io::Result<()> {
            Err(unsupported())
        }

        /// Unreachable (no instance can exist).
        pub fn wait(&self, _events: &mut [EpollEvent], _timeout_ms: i32) -> io::Result<usize> {
            Err(unsupported())
        }
    }

    /// Stub: construction fails with `Unsupported` off Linux.
    #[derive(Debug)]
    pub struct EventFd;

    impl EventFd {
        /// Always `Unsupported` off Linux.
        pub fn new() -> io::Result<Self> {
            Err(unsupported())
        }

        /// Unreachable (no instance can exist).
        pub fn raw_fd(&self) -> i32 {
            -1
        }

        /// Unreachable (no instance can exist).
        pub fn wake(&self) {}

        /// Unreachable (no instance can exist).
        pub fn drain(&self) {}
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;

    #[test]
    fn eventfd_wakes_an_epoll_waiter() {
        let ep = Epoll::new().unwrap();
        let ev = EventFd::new().unwrap();
        ep.add(ev.raw_fd(), EPOLLIN | EPOLLET, 42).unwrap();

        let mut events = [EpollEvent::default(); 4];
        // Nothing pending: a zero-timeout wait returns no events.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        ev.wake();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        // Copy out of the packed struct: references into it are UB.
        let (bits, token) = (events[0].events, events[0].data);
        assert_eq!(token, 42);
        assert_ne!(bits & EPOLLIN, 0);

        // Edge-triggered: without draining, a second wake still fires (the
        // counter transitioned 1 -> 2), and after draining it stays quiet.
        ev.wake();
        assert_eq!(ep.wait(&mut events, 100).unwrap(), 1);
        ev.drain();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn epoll_tracks_modify_and_delete() {
        let ep = Epoll::new().unwrap();
        let ev = EventFd::new().unwrap();
        ep.add(ev.raw_fd(), EPOLLIN, 7).unwrap();
        ev.wake();
        let mut events = [EpollEvent::default(); 4];
        assert_eq!(ep.wait(&mut events, 100).unwrap(), 1);
        // Level-triggered: still ready until drained.
        ep.modify(ev.raw_fd(), EPOLLIN, 9).unwrap();
        assert_eq!(ep.wait(&mut events, 100).unwrap(), 1);
        let token = events[0].data;
        assert_eq!(token, 9);
        ep.delete(ev.raw_fd()).unwrap();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }
}
