//! sibia-net: a single-reactor epoll event loop for pipelined NDJSON
//! serving on plain `std`.
//!
//! The serve daemon's original front end spends one blocking thread per
//! connection; at thousands of connections the thread stacks and context
//! switches dominate. This crate provides the alternative: **one** reactor
//! thread multiplexing every connection through `epoll(7)` — declared as a
//! raw-syscall `extern` shim ([`sys`]), since `std` links libc but exposes
//! no readiness API — with per-connection reused read/write buffers and
//! incremental line framing ([`buffer`]), and an out-of-order completion
//! channel (`eventfd`-woken) so a worker pool can finish pipelined
//! requests in any order while the reactor flushes each response as it
//! lands ([`reactor`]).
//!
//! The crate is protocol-agnostic: it splits byte frames and moves
//! responses, nothing more. The serve daemon supplies the NDJSON protocol
//! as a [`FrameHandler`]. Off Linux the reactor constructor returns
//! [`std::io::ErrorKind::Unsupported`] and callers fall back to the
//! blocking front end.

pub mod buffer;
pub mod reactor;
pub mod sys;

pub use reactor::{Completer, FrameCx, FrameHandler, FrameOutcome, Reactor, ReactorConfig};
