//! The single-thread epoll reactor.
//!
//! ## Event loop
//!
//! ```text
//!                    ┌───────────────────────────────────────────┐
//!                    │            reactor thread                 │
//!   listener ──ET──▶ │ accept loop ─▶ slab slot (gen-tagged)     │
//!   conn fds ──ET──▶ │ read ─▶ ReadBuf ─▶ frames ─▶ handler ──┐  │
//!   eventfd  ──ET──▶ │ drain completions ─▶ WriteBuf ─▶ flush │  │
//!                    └────────────────────────────────────▲────┼──┘
//!                                                         │    │ Pending
//!                       Completer::complete (any thread) ─┘◀───┘
//! ```
//!
//! One thread owns every socket. All fds are registered **edge-triggered**
//! (`EPOLLET`), so each readiness edge is serviced to exhaustion: reads
//! loop until `EWOULDBLOCK`, writes flush until the socket pushes back.
//! Frames are split incrementally in a reused [`ReadBuf`]; responses queue
//! in a reused [`WriteBuf`]. The handler runs **on the reactor thread** and
//! must not block — it either answers inline ([`FrameOutcome::Reply`]) or
//! hands the work to another thread and returns [`FrameOutcome::Pending`],
//! completing later through the [`Completer`] (which wakes the reactor via
//! `eventfd`). Completions may arrive in any order — that is what makes
//! pipelining real — and are matched to their connection by a
//! generation-tagged token, so a completion for a connection that died and
//! whose slot was reused is dropped, never misdelivered.
//!
//! ## Backpressure
//!
//! The reactor never buffers unboundedly: the handler sees the
//! connection's in-flight count and queued write bytes in [`FrameCx`] and
//! is expected to reject new work (with its protocol's typed error) when
//! its budgets fill. As a last resort — a client that keeps streaming
//! requests while never reading responses past
//! [`ReactorConfig::hard_write_cap`] — the connection is closed outright.
//!
//! ## Shutdown
//!
//! [`Reactor::shutdown`] stops accepting, stops *reading* (no new frames
//! admitted), waits for every in-flight completion to arrive and flush,
//! then closes the remaining connections and joins the thread.

use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use sibia_obs::metrics::{Counter, Gauge, Histogram, Registry};
use sibia_obs::Tracer;

use crate::buffer::{FillOutcome, ReadBuf, WriteBuf};
use crate::sys::{
    Epoll, EpollEvent, EventFd, EPOLLERR, EPOLLET, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP,
};

/// Reactor tuning knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReactorConfig {
    /// Bind host.
    pub host: String,
    /// Bind port (0 = ephemeral; see [`Reactor::addr`]).
    pub port: u16,
    /// A frame longer than this closes the connection (framing violation).
    pub max_frame_bytes: usize,
    /// Open connections beyond this are accepted and immediately closed.
    pub max_connections: usize,
    /// Queued-response bytes past which a connection is force-closed. The
    /// handler should start rejecting (typed, in-protocol) long before;
    /// this guards against clients that never read their responses.
    pub hard_write_cap: usize,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        Self {
            host: "127.0.0.1".to_owned(),
            port: 0,
            max_frame_bytes: 16 << 20,
            max_connections: 16_384,
            hard_write_cap: 64 << 20,
        }
    }
}

/// What the handler wants done with one frame.
#[derive(Debug)]
pub enum FrameOutcome {
    /// Queue these bytes (a complete response line, `\n` included) now.
    Reply(Vec<u8>),
    /// The handler dispatched the work elsewhere and kept the frame's
    /// [`Completer`]; the response arrives via [`Completer::complete`].
    Pending,
    /// Nothing to send (e.g. a blank keep-alive line).
    Ignore,
    /// Protocol violation: flush what is queued, then close.
    Close,
}

/// Per-frame context handed to the handler: the completion handle plus the
/// connection's live backpressure state.
pub struct FrameCx {
    /// Completes this frame from any thread (only meaningful when the
    /// handler returns [`FrameOutcome::Pending`]).
    pub completer: Completer,
    /// Frames admitted as `Pending` whose completions have not yet
    /// arrived, this frame excluded.
    pub inflight: usize,
    /// Response bytes queued on this connection awaiting socket space.
    pub buffered_write_bytes: usize,
}

/// The application protocol, invoked on the reactor thread for every
/// complete frame. Implementations must not block.
pub trait FrameHandler: Send + Sync + 'static {
    /// One complete frame (line, delimiter stripped). Raw bytes: UTF-8
    /// validation is the protocol's business.
    fn on_frame(&self, cx: &FrameCx, frame: &[u8]) -> FrameOutcome;
}

/// Slot index ↔ epoll/completion token packing: low 32 bits slot, high 32
/// the slot's generation (bumped every close, so a token can never address
/// a later occupant of its slot).
fn pack(slot: usize, gen: u32) -> u64 {
    ((gen as u64) << 32) | slot as u64
}

fn unpack(token: u64) -> (usize, u32) {
    ((token & 0xffff_ffff) as usize, (token >> 32) as u32)
}

const TOKEN_LISTENER: u64 = u64::MAX;
const TOKEN_WAKER: u64 = u64::MAX - 1;

/// A queued completion: response bytes for a generation-tagged connection,
/// plus whether they finish the request. Final completions retire one
/// in-flight request; non-final ones (progress frames) only append bytes —
/// the request stays in flight until its final line arrives.
type Completion = (u64, Vec<u8>, bool);

struct CompletionQueue {
    queue: Mutex<Vec<Completion>>,
    waker: EventFd,
}

/// Cheap, clonable, thread-safe handle that delivers one frame's response
/// back to the reactor.
#[derive(Clone)]
pub struct Completer {
    shared: Arc<CompletionQueue>,
    token: u64,
}

impl std::fmt::Debug for Completer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Completer")
            .field("token", &self.token)
            .finish()
    }
}

impl Completer {
    /// Queues `bytes` (a complete response line, `\n` included) for the
    /// originating connection and wakes the reactor. Never blocks beyond a
    /// short mutex push. If the connection has since closed, the bytes are
    /// dropped and counted as `net.completions.stale`.
    pub fn complete(&self, bytes: Vec<u8>) {
        self.push(bytes, true);
    }

    /// Queues `bytes` (one complete progress line, `\n` included) for the
    /// originating connection *without* retiring the request: the frame's
    /// in-flight slot stays held until [`Completer::complete`] delivers the
    /// final response. Same staleness rule as `complete` — a closed
    /// connection drops the bytes as `net.completions.stale`.
    pub fn progress(&self, bytes: Vec<u8>) {
        self.push(bytes, false);
    }

    fn push(&self, bytes: Vec<u8>, is_final: bool) {
        self.shared
            .queue
            .lock()
            .expect("completion queue lock")
            .push((self.token, bytes, is_final));
        self.shared.waker.wake();
    }
}

/// `net.*` instruments, registered in the caller's registry.
struct NetMetrics {
    accepted: Arc<Counter>,
    refused: Arc<Counter>,
    open: Arc<Gauge>,
    frames: Arc<Counter>,
    replies: Arc<Counter>,
    completions: Arc<Counter>,
    stale: Arc<Counter>,
    bytes_read: Arc<Counter>,
    bytes_written: Arc<Counter>,
    wakeups: Arc<Counter>,
    polls: Arc<Counter>,
    broken: Arc<Counter>,
    tick: Arc<Histogram>,
    /// Time spent blocked in `epoll_wait` per poll — the reactor's idle
    /// side. Together with `tick` (the dispatch side) a telemetry sampler
    /// can derive reactor utilisation per scrape window.
    wait: Arc<Histogram>,
}

impl NetMetrics {
    fn new(registry: &Registry) -> Self {
        Self {
            accepted: registry.counter("net.connections.accepted"),
            refused: registry.counter("net.connections.refused"),
            open: registry.gauge("net.connections.open"),
            frames: registry.counter("net.frames.read"),
            replies: registry.counter("net.replies.written"),
            completions: registry.counter("net.completions.delivered"),
            stale: registry.counter("net.completions.stale"),
            bytes_read: registry.counter("net.bytes.read"),
            bytes_written: registry.counter("net.bytes.written"),
            wakeups: registry.counter("net.wakeups"),
            polls: registry.counter("net.polls"),
            broken: registry.counter("net.connections.broken"),
            tick: registry.histogram("net.reactor.tick_us"),
            wait: registry.histogram("net.reactor.wait_us"),
        }
    }
}

struct Conn {
    stream: TcpStream,
    rbuf: ReadBuf,
    wbuf: WriteBuf,
    gen: u32,
    inflight: usize,
    /// Peer sent EOF: no more reads, but queued work still completes.
    peer_closed: bool,
    /// Framing/IO violation or handler-requested close: stop reading,
    /// flush, then close.
    closing: bool,
    opened_at: Instant,
    frames: u64,
    bytes_in: u64,
    bytes_out: u64,
}

struct Shared {
    completions: Arc<CompletionQueue>,
    shutdown: AtomicBool,
}

/// A running reactor. Dropping the handle does **not** stop it; call
/// [`Reactor::shutdown`].
pub struct Reactor {
    addr: SocketAddr,
    shared: Arc<Shared>,
    thread: JoinHandle<()>,
}

impl std::fmt::Debug for Reactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reactor").field("addr", &self.addr).finish()
    }
}

#[cfg(unix)]
fn raw_fd(s: &impl std::os::unix::io::AsRawFd) -> i32 {
    s.as_raw_fd()
}

#[cfg(not(unix))]
fn raw_fd<T>(_s: &T) -> i32 {
    -1
}

impl Reactor {
    /// Binds, registers the listener and wakeup fd, spawns the reactor
    /// thread, and returns. `net.*` instruments land in `registry`;
    /// connection-lifetime spans are recorded into `tracer` when provided.
    pub fn start(
        config: ReactorConfig,
        handler: Arc<dyn FrameHandler>,
        registry: &Registry,
        tracer: Option<Arc<Tracer>>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind((config.host.as_str(), config.port))?;
        // At thousands of simultaneous connects, std's default backlog of
        // 128 overflows before the loop can accept; widen it to somaxconn.
        crate::sys::widen_listen_backlog(&listener, 4096);
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let epoll = Epoll::new()?;
        let waker = EventFd::new()?;
        epoll.add(raw_fd(&listener), EPOLLIN | EPOLLET, TOKEN_LISTENER)?;
        epoll.add(waker.raw_fd(), EPOLLIN | EPOLLET, TOKEN_WAKER)?;
        let shared = Arc::new(Shared {
            completions: Arc::new(CompletionQueue {
                queue: Mutex::new(Vec::new()),
                waker,
            }),
            shutdown: AtomicBool::new(false),
        });
        let metrics = NetMetrics::new(registry);
        let thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("sibia-net-reactor".to_owned())
                .spawn(move || {
                    EventLoop {
                        config,
                        handler,
                        epoll,
                        listener,
                        conns: Vec::new(),
                        gens: Vec::new(),
                        free: Vec::new(),
                        open: 0,
                        shared,
                        metrics,
                        tracer,
                        draining: false,
                    }
                    .run();
                })?
        };
        Ok(Self {
            addr,
            shared,
            thread,
        })
    }

    /// The bound address (useful with `port: 0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful drain: stop accepting and reading, deliver every in-flight
    /// completion, flush, close, and join the reactor thread.
    pub fn shutdown(self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.completions.waker.wake();
        let _ = self.thread.join();
    }
}

struct EventLoop {
    config: ReactorConfig,
    handler: Arc<dyn FrameHandler>,
    epoll: Epoll,
    listener: TcpListener,
    /// Connection slab; a slot is `None` when free.
    conns: Vec<Option<Conn>>,
    /// Per-slot generation, parallel to `conns`; bumped at close so stale
    /// tokens never resolve to a slot's next occupant.
    gens: Vec<u32>,
    free: Vec<usize>,
    open: usize,
    shared: Arc<Shared>,
    metrics: NetMetrics,
    tracer: Option<Arc<Tracer>>,
    draining: bool,
}

impl EventLoop {
    fn run(mut self) {
        let mut events = vec![EpollEvent::default(); 1024];
        loop {
            let wait_start = Instant::now();
            let n = match self.epoll.wait(&mut events, 100) {
                Ok(n) => n,
                Err(_) => return,
            };
            self.metrics.wait.record(wait_start.elapsed());
            let tick_start = Instant::now();
            self.metrics.polls.inc();
            for ev in events.iter().take(n) {
                // Copy out of the (possibly packed) event before use.
                let (bits, token) = (ev.events, ev.data);
                match token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKER => {
                        self.metrics.wakeups.inc();
                        self.shared.completions.waker.drain();
                    }
                    _ => self.conn_event(token, bits),
                }
            }
            self.deliver_completions();
            if !self.draining && self.shared.shutdown.load(Ordering::SeqCst) {
                self.begin_drain();
            }
            if self.draining {
                self.reap_drained();
            }
            self.metrics.tick.record(tick_start.elapsed());
            if self.draining && self.open == 0 {
                return;
            }
        }
    }

    fn accept_ready(&mut self) {
        if self.draining {
            return;
        }
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => self.admit(stream),
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                // Transient accept errors (ECONNABORTED, fd-limit burst):
                // drop this edge; the next connection re-arms it.
                Err(_) => return,
            }
        }
    }

    fn admit(&mut self, stream: TcpStream) {
        if self.open >= self.config.max_connections {
            self.metrics.refused.inc();
            return; // dropping the stream closes it
        }
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        stream.set_nodelay(true).ok();
        let slot = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.gens.push(0);
            self.conns.len() - 1
        });
        let gen = self.gens[slot];
        if self
            .epoll
            .add(
                raw_fd(&stream),
                EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET,
                pack(slot, gen),
            )
            .is_err()
        {
            self.free.push(slot);
            return;
        }
        self.conns[slot] = Some(Conn {
            stream,
            rbuf: ReadBuf::new(),
            wbuf: WriteBuf::new(),
            gen,
            inflight: 0,
            peer_closed: false,
            closing: false,
            opened_at: Instant::now(),
            frames: 0,
            bytes_in: 0,
            bytes_out: 0,
        });
        self.open += 1;
        self.metrics.accepted.inc();
        self.metrics.open.set(self.open as i64);
    }

    fn conn_event(&mut self, token: u64, bits: u32) {
        let (slot, gen) = unpack(token);
        match self.conns.get_mut(slot).and_then(Option::as_mut) {
            Some(conn) if conn.gen == gen => {}
            _ => return, // stale event for a closed/recycled slot
        }
        if bits & (EPOLLERR | EPOLLHUP) != 0 {
            self.metrics.broken.inc();
            self.close_conn(slot, true);
            return;
        }
        if bits & EPOLLOUT != 0 {
            self.flush_conn(slot);
        }
        if bits & (EPOLLIN | EPOLLRDHUP) != 0 {
            self.read_conn(slot);
        }
    }

    /// Reads to exhaustion (edge-triggered contract), processing complete
    /// frames after every chunk so buffered input stays bounded by one
    /// frame plus one read chunk.
    fn read_conn(&mut self, slot: usize) {
        loop {
            let conn = match self.conns.get_mut(slot).and_then(Option::as_mut) {
                Some(c) if !c.closing && !c.peer_closed && !self.draining => c,
                _ => return,
            };
            match conn.rbuf.fill(&mut conn.stream) {
                Ok(FillOutcome::Read(n)) => {
                    conn.bytes_in += n as u64;
                    self.metrics.bytes_read.add(n as u64);
                    self.process_frames(slot);
                    if let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) {
                        if conn.rbuf.pending() > self.config.max_frame_bytes {
                            self.metrics.broken.inc();
                            self.close_conn(slot, true);
                            return;
                        }
                    }
                }
                Ok(FillOutcome::WouldBlock) => {
                    self.process_frames(slot);
                    return;
                }
                Ok(FillOutcome::Eof) => {
                    self.process_frames(slot);
                    if let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) {
                        conn.peer_closed = true;
                        if conn.inflight == 0 && conn.wbuf.pending() == 0 {
                            self.close_conn(slot, false);
                        }
                    }
                    return;
                }
                Err(_) => {
                    self.metrics.broken.inc();
                    self.close_conn(slot, true);
                    return;
                }
            }
        }
    }

    fn process_frames(&mut self, slot: usize) {
        loop {
            let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                return;
            };
            if conn.closing {
                return;
            }
            let Some(range) = conn.rbuf.next_frame() else {
                return;
            };
            conn.frames += 1;
            self.metrics.frames.inc();
            let cx = FrameCx {
                completer: Completer {
                    shared: Arc::clone(&self.shared.completions),
                    token: pack(slot, conn.gen),
                },
                inflight: conn.inflight,
                buffered_write_bytes: conn.wbuf.pending(),
            };
            let outcome = self.handler.on_frame(&cx, conn.rbuf.frame(range));
            let conn = self.conns[slot].as_mut().expect("conn present above");
            match outcome {
                FrameOutcome::Reply(bytes) => {
                    conn.wbuf.append(&bytes);
                    self.metrics.replies.inc();
                    if conn.wbuf.pending() > self.config.hard_write_cap {
                        self.metrics.broken.inc();
                        self.close_conn(slot, true);
                        return;
                    }
                    self.flush_conn(slot);
                }
                FrameOutcome::Pending => conn.inflight += 1,
                FrameOutcome::Ignore => {}
                FrameOutcome::Close => {
                    conn.closing = true;
                    conn.rbuf.clear();
                    self.flush_conn(slot);
                    return;
                }
            }
        }
    }

    /// Flushes queued bytes; closes on write error, or cleanly once a
    /// closing/draining/EOF'd connection has nothing left to say.
    fn flush_conn(&mut self, slot: usize) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        let before = conn.wbuf.pending();
        match conn.wbuf.flush(&mut conn.stream) {
            Ok(drained) => {
                let written = (before - conn.wbuf.pending()) as u64;
                conn.bytes_out += written;
                self.metrics.bytes_written.add(written);
                if drained
                    && conn.inflight == 0
                    && (conn.closing || conn.peer_closed || self.draining)
                {
                    self.close_conn(slot, false);
                }
            }
            Err(_) => {
                self.metrics.broken.inc();
                self.close_conn(slot, true);
            }
        }
    }

    fn deliver_completions(&mut self) {
        let batch = {
            let mut queue = self
                .shared
                .completions
                .queue
                .lock()
                .expect("completion queue lock");
            std::mem::take(&mut *queue)
        };
        for (token, bytes, is_final) in batch {
            let (slot, gen) = unpack(token);
            let conn = match self.conns.get_mut(slot).and_then(Option::as_mut) {
                Some(c) if c.gen == gen => c,
                _ => {
                    self.metrics.stale.inc();
                    continue;
                }
            };
            // Progress frames only append bytes; the request stays in
            // flight (and holds its pipeline slot) until the final line.
            if is_final {
                conn.inflight = conn.inflight.saturating_sub(1);
                self.metrics.completions.inc();
                self.metrics.replies.inc();
            }
            conn.wbuf.append(&bytes);
            if conn.wbuf.pending() > self.config.hard_write_cap {
                self.metrics.broken.inc();
                self.close_conn(slot, true);
                continue;
            }
            self.flush_conn(slot);
        }
    }

    fn begin_drain(&mut self) {
        self.draining = true;
        let _ = self.epoll.delete(raw_fd(&self.listener));
    }

    /// During drain: close every connection with nothing left in flight
    /// and nothing left to flush (flush_conn finishes the rest as
    /// completions land).
    fn reap_drained(&mut self) {
        for slot in 0..self.conns.len() {
            let done = match &self.conns[slot] {
                Some(c) => c.inflight == 0 && c.wbuf.pending() == 0,
                None => false,
            };
            if done {
                self.close_conn(slot, false);
            }
        }
    }

    fn close_conn(&mut self, slot: usize, broken: bool) {
        let Some(conn) = self.conns[slot].take() else {
            return;
        };
        let _ = self.epoll.delete(raw_fd(&conn.stream));
        if let Some(tracer) = &self.tracer {
            tracer.record_span(
                "net.conn",
                conn.opened_at,
                conn.opened_at
                    .elapsed()
                    .as_micros()
                    .min(u128::from(u64::MAX)) as u64,
                vec![
                    ("frames".to_owned(), conn.frames.to_string()),
                    ("bytes_in".to_owned(), conn.bytes_in.to_string()),
                    ("bytes_out".to_owned(), conn.bytes_out.to_string()),
                    ("broken".to_owned(), broken.to_string()),
                ],
            );
        }
        // Bump the generation so completions addressed to this connection
        // are recognized as stale, then recycle the slot.
        self.gens[slot] = self.gens[slot].wrapping_add(1);
        self.free.push(slot);
        self.open -= 1;
        self.metrics.open.set(self.open as i64);
    }
}
