//! Reused per-connection read/write buffers with incremental NDJSON frame
//! splitting.
//!
//! Both buffers are plain `Vec<u8>`s with cursor indices, compacted by
//! `copy_within` instead of reallocated, so the steady-state hot path — read
//! a chunk, split frames, append a response, flush — performs no
//! per-request allocation. After a burst (one oversized request or a deep
//! response backlog) the capacity shrinks back to a watermark the next time
//! the buffer empties, bounding per-connection memory over a long-lived
//! daemon.

use std::io::{ErrorKind, Read, Write};
use std::ops::Range;

/// Capacity retained across bursts; larger allocations shrink back to this
/// once the buffer empties.
const RETAIN_CAPACITY: usize = 64 * 1024;

/// Read chunk size: how much spare room each `fill` call offers the socket.
const READ_CHUNK: usize = 16 * 1024;

/// What one nonblocking fill round produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillOutcome {
    /// Bytes arrived (the socket may still hold more).
    Read(usize),
    /// The peer closed its write half.
    Eof,
    /// The socket is drained for now (`EWOULDBLOCK`).
    WouldBlock,
}

/// Incremental line-frame reader: bytes accumulate across reads, complete
/// `\n`-terminated frames are handed out as ranges into the buffer, and the
/// consumed prefix is reclaimed by compaction, never by reallocation.
#[derive(Debug, Default)]
pub struct ReadBuf {
    buf: Vec<u8>,
    /// First unconsumed byte.
    start: usize,
    /// Scan resume offset: `buf[start..scanned]` holds no `\n`.
    scanned: usize,
}

impl ReadBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Reads one chunk from `r` (expected nonblocking). Consumed frames are
    /// compacted away first, so repeated partial lines never grow the
    /// buffer beyond the line length plus one chunk.
    pub fn fill(&mut self, r: &mut impl Read) -> std::io::Result<FillOutcome> {
        self.compact();
        let len = self.buf.len();
        self.buf.resize(len + READ_CHUNK, 0);
        let outcome = loop {
            match r.read(&mut self.buf[len..]) {
                Ok(0) => break Ok(FillOutcome::Eof),
                Ok(n) => {
                    self.buf.truncate(len + n);
                    return Ok(FillOutcome::Read(n));
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    break Ok(FillOutcome::WouldBlock)
                }
                Err(e) => break Err(e),
            }
        };
        self.buf.truncate(len);
        outcome
    }

    /// The next complete frame as a range into [`Self::frame`]'s buffer,
    /// with the `\n` (and a trailing `\r`, for telnet-style clients)
    /// stripped. Returns `None` until a full line has arrived.
    pub fn next_frame(&mut self) -> Option<Range<usize>> {
        let from = self.scanned.max(self.start);
        let pos = from + self.buf[from..].iter().position(|&b| b == b'\n')?;
        let mut end = pos;
        if end > self.start && self.buf[end - 1] == b'\r' {
            end -= 1;
        }
        let range = self.start..end;
        self.start = pos + 1;
        self.scanned = pos + 1;
        Some(range)
    }

    /// The frame bytes for a range handed out by [`Self::next_frame`].
    pub fn frame(&self, range: Range<usize>) -> &[u8] {
        &self.buf[range]
    }

    /// Drops everything buffered (used when a connection turns broken).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.start = 0;
        self.scanned = 0;
        self.shrink();
    }

    fn compact(&mut self) {
        if self.start == 0 {
            return;
        }
        if self.start == self.buf.len() {
            self.buf.clear();
            self.shrink();
        } else {
            self.buf.copy_within(self.start.., 0);
            self.buf.truncate(self.buf.len() - self.start);
        }
        self.scanned = self.scanned.saturating_sub(self.start);
        self.start = 0;
    }

    fn shrink(&mut self) {
        if self.buf.capacity() > RETAIN_CAPACITY {
            self.buf.shrink_to(RETAIN_CAPACITY);
        }
    }
}

/// Outbound byte queue with a flush cursor: responses append at the tail,
/// [`WriteBuf::flush`] advances the head, and the storage is reused (and
/// shrunk back to the watermark once drained).
#[derive(Debug, Default)]
pub struct WriteBuf {
    buf: Vec<u8>,
    start: usize,
}

impl WriteBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes queued but not yet written to the socket.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Queues response bytes for the next flush.
    pub fn append(&mut self, bytes: &[u8]) {
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Writes as much as the socket accepts. `Ok(true)` means fully
    /// drained; `Ok(false)` means the socket would block and the remainder
    /// stays queued for the next writability edge.
    pub fn flush(&mut self, w: &mut impl Write) -> std::io::Result<bool> {
        while self.start < self.buf.len() {
            match w.write(&self.buf[self.start..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => self.start += n,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    return Ok(false)
                }
                Err(e) => return Err(e),
            }
        }
        self.buf.clear();
        self.start = 0;
        if self.buf.capacity() > RETAIN_CAPACITY {
            self.buf.shrink_to(RETAIN_CAPACITY);
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `Read` over scripted chunks, ending in WouldBlock.
    struct Script {
        chunks: Vec<Vec<u8>>,
    }

    impl Read for Script {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.chunks.is_empty() {
                return Err(ErrorKind::WouldBlock.into());
            }
            let chunk = self.chunks.remove(0);
            buf[..chunk.len()].copy_from_slice(&chunk);
            Ok(chunk.len())
        }
    }

    fn frames(rb: &mut ReadBuf) -> Vec<String> {
        let mut out = Vec::new();
        while let Some(range) = rb.next_frame() {
            out.push(String::from_utf8(rb.frame(range).to_vec()).unwrap());
        }
        out
    }

    #[test]
    fn splits_frames_across_partial_reads() {
        let mut rb = ReadBuf::new();
        let mut src = Script {
            chunks: vec![
                b"{\"a\":1}\n{\"b\"".to_vec(),
                b":2}\r\n".to_vec(),
                b"\n{\"c\":3}\n".to_vec(),
            ],
        };
        assert!(matches!(rb.fill(&mut src).unwrap(), FillOutcome::Read(_)));
        assert_eq!(frames(&mut rb), vec!["{\"a\":1}"]);
        assert_eq!(rb.pending(), 4, "partial frame stays buffered");
        assert!(matches!(rb.fill(&mut src).unwrap(), FillOutcome::Read(_)));
        assert_eq!(frames(&mut rb), vec!["{\"b\":2}"], "\\r\\n is stripped");
        assert!(matches!(rb.fill(&mut src).unwrap(), FillOutcome::Read(_)));
        // An empty line is a valid (ignorable) frame.
        assert_eq!(frames(&mut rb), vec!["", "{\"c\":3}"]);
        assert_eq!(rb.pending(), 0);
        assert!(matches!(
            rb.fill(&mut src).unwrap(),
            FillOutcome::WouldBlock
        ));
    }

    #[test]
    fn eof_is_reported_and_consumed_prefix_is_compacted() {
        let mut rb = ReadBuf::new();
        let mut src = Script {
            chunks: vec![b"one\ntwo\npart".to_vec(), Vec::new()],
        };
        rb.fill(&mut src).unwrap();
        assert_eq!(frames(&mut rb), vec!["one", "two"]);
        // The next fill compacts "part" to the front before reading EOF.
        assert!(matches!(rb.fill(&mut src).unwrap(), FillOutcome::Eof));
        assert_eq!(rb.pending(), 4);
        assert_eq!(rb.frame(0..4), b"part");
    }

    #[test]
    fn write_buf_flushes_across_short_writes() {
        /// `Write` accepting at most 3 bytes per call, blocking every other
        /// call.
        struct Throttle {
            sink: Vec<u8>,
            block_next: bool,
        }
        impl Write for Throttle {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                if self.block_next {
                    self.block_next = false;
                    return Err(ErrorKind::WouldBlock.into());
                }
                self.block_next = true;
                let n = buf.len().min(3);
                self.sink.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let mut wb = WriteBuf::new();
        wb.append(b"hello ");
        wb.append(b"world\n");
        let mut sock = Throttle {
            sink: Vec::new(),
            block_next: false,
        };
        let mut rounds = 0;
        while !wb.flush(&mut sock).unwrap() {
            rounds += 1;
            assert!(rounds < 16, "flush must make progress");
        }
        assert_eq!(sock.sink, b"hello world\n");
        assert_eq!(wb.pending(), 0);
    }

    #[test]
    fn buffers_reuse_storage_and_shrink_after_bursts() {
        let mut rb = ReadBuf::new();
        let big = vec![b'x'; 512 * 1024];
        let mut src = Script {
            chunks: big.chunks(8192).map(<[u8]>::to_vec).collect(),
        };
        while matches!(rb.fill(&mut src).unwrap(), FillOutcome::Read(_)) {}
        assert!(rb.pending() >= 512 * 1024);
        rb.clear();
        assert!(
            rb.buf.capacity() <= RETAIN_CAPACITY,
            "oversized read buffer must shrink back to the watermark"
        );

        let mut wb = WriteBuf::new();
        wb.append(&big);
        let mut sink = Vec::new();
        assert!(wb.flush(&mut sink).unwrap());
        assert!(
            wb.buf.capacity() <= RETAIN_CAPACITY,
            "oversized write buffer must shrink back to the watermark"
        );
        // Steady state: append/flush cycles of modest frames never grow
        // capacity again.
        let cap = wb.buf.capacity();
        for _ in 0..100 {
            wb.append(&[b'y'; 100]);
            let mut sink = Vec::new();
            assert!(wb.flush(&mut sink).unwrap());
        }
        assert_eq!(wb.buf.capacity(), cap);
    }
}
