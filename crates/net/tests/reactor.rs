//! End-to-end reactor tests over real sockets with an echo protocol:
//! inline replies, out-of-order pending completions, framing-violation
//! closes, graceful drain, and stale-completion isolation.
#![cfg(target_os = "linux")]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use sibia_net::{Completer, FrameCx, FrameHandler, FrameOutcome, Reactor, ReactorConfig};
use sibia_obs::metrics::Registry;

/// Echo protocol: `defer:<payload>` parks the completer for the test to
/// resolve (in whatever order it likes); `async:<payload>` echoes from a
/// short-lived thread; `close` asks for a close; anything else echoes
/// inline.
struct Echo {
    parked: Mutex<Vec<(Completer, Vec<u8>)>>,
}

impl Echo {
    fn new() -> Self {
        Self {
            parked: Mutex::new(Vec::new()),
        }
    }

    /// Completes every parked frame, most recently parked first.
    fn release_parked_reversed(&self) {
        let mut parked = self.parked.lock().unwrap();
        while let Some((completer, mut payload)) = parked.pop() {
            payload.push(b'\n');
            completer.complete(payload);
        }
    }
}

impl FrameHandler for Echo {
    fn on_frame(&self, cx: &FrameCx, frame: &[u8]) -> FrameOutcome {
        if frame.is_empty() {
            return FrameOutcome::Ignore;
        }
        if frame == b"close" {
            return FrameOutcome::Close;
        }
        if let Some(payload) = frame.strip_prefix(b"defer:") {
            self.parked
                .lock()
                .unwrap()
                .push((cx.completer.clone(), payload.to_vec()));
            return FrameOutcome::Pending;
        }
        if let Some(payload) = frame.strip_prefix(b"async:") {
            let completer = cx.completer.clone();
            let mut payload = payload.to_vec();
            std::thread::spawn(move || {
                payload.push(b'\n');
                completer.complete(payload);
            });
            return FrameOutcome::Pending;
        }
        let mut reply = frame.to_vec();
        reply.push(b'\n');
        FrameOutcome::Reply(reply)
    }
}

fn start_echo(config: ReactorConfig) -> (Reactor, Arc<Echo>, Arc<Registry>) {
    let handler = Arc::new(Echo::new());
    let registry = Arc::new(Registry::new());
    let reactor =
        Reactor::start(config, Arc::clone(&handler) as _, &registry, None).expect("reactor starts");
    (reactor, handler, registry)
}

fn connect(reactor: &Reactor) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(reactor.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.set_nodelay(true).unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    (reader, stream)
}

fn read_line(reader: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    reader.read_line(&mut line).expect("read line");
    line.trim_end().to_owned()
}

#[test]
fn inline_echo_round_trips() {
    let (reactor, _handler, _registry) = start_echo(ReactorConfig::default());
    let (mut reader, mut writer) = connect(&reactor);
    for i in 0..100 {
        writeln!(writer, "hello {i}").unwrap();
        assert_eq!(read_line(&mut reader), format!("hello {i}"));
    }
    reactor.shutdown();
}

#[test]
fn pipelined_requests_complete_out_of_order() {
    let (reactor, handler, registry) = start_echo(ReactorConfig::default());
    let (mut reader, mut writer) = connect(&reactor);
    // Pipeline: three deferred requests plus one inline, written in one
    // burst without reading.
    writer
        .write_all(b"defer:a\ndefer:b\ndefer:c\ninline\n")
        .unwrap();
    // The inline echo overtakes all deferred work.
    assert_eq!(read_line(&mut reader), "inline");
    // Wait until every deferred frame is parked, then release newest
    // first: responses must arrive in completion order (c, b, a), not
    // request order.
    while handler.parked.lock().unwrap().len() < 3 {
        std::thread::sleep(Duration::from_millis(5));
    }
    handler.release_parked_reversed();
    assert_eq!(read_line(&mut reader), "c");
    assert_eq!(read_line(&mut reader), "b");
    assert_eq!(read_line(&mut reader), "a");
    reactor.shutdown();
    assert_eq!(registry.counter("net.completions.delivered").get(), 3);
    assert_eq!(registry.counter("net.completions.stale").get(), 0);
}

#[test]
fn oversized_frame_closes_the_connection() {
    let (reactor, _handler, registry) = start_echo(ReactorConfig {
        max_frame_bytes: 1024,
        ..ReactorConfig::default()
    });
    let (mut reader, mut writer) = connect(&reactor);
    writeln!(writer, "still fine").unwrap();
    assert_eq!(read_line(&mut reader), "still fine");
    // A 1 MiB line with no newline: the reactor must cut the connection
    // instead of buffering it.
    let junk = vec![b'x'; 1 << 20];
    let _ = writer.write_all(&junk); // may fail midway once the server closes
    let mut rest = Vec::new();
    // The server cuts the connection with bytes still unread, so the
    // client sees either a clean EOF or a reset — never a reply.
    match reader.read_to_end(&mut rest) {
        Ok(_) => assert!(rest.is_empty(), "no reply to an oversized frame"),
        Err(e) => assert!(
            matches!(
                e.kind(),
                std::io::ErrorKind::ConnectionReset | std::io::ErrorKind::BrokenPipe
            ),
            "unexpected read error: {e}"
        ),
    }
    reactor.shutdown();
    assert!(registry.counter("net.connections.broken").get() >= 1);
}

#[test]
fn handler_close_flushes_then_disconnects() {
    let (reactor, _handler, _registry) = start_echo(ReactorConfig::default());
    let (mut reader, mut writer) = connect(&reactor);
    writer.write_all(b"last\nclose\nignored\n").unwrap();
    assert_eq!(read_line(&mut reader), "last");
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).expect("clean close");
    assert!(rest.is_empty(), "frames after close are never processed");
    reactor.shutdown();
}

#[test]
fn many_concurrent_connections_echo_concurrently() {
    let (reactor, _handler, registry) = start_echo(ReactorConfig::default());
    let addr = reactor.addr();
    let mut threads = Vec::new();
    for t in 0..16 {
        threads.push(std::thread::spawn(move || {
            let mut conns: Vec<(BufReader<TcpStream>, TcpStream)> = (0..25)
                .map(|_| {
                    let stream = TcpStream::connect(addr).unwrap();
                    stream
                        .set_read_timeout(Some(Duration::from_secs(30)))
                        .unwrap();
                    (BufReader::new(stream.try_clone().unwrap()), stream)
                })
                .collect();
            // Interleave: write to every connection, then read every reply.
            for round in 0..4 {
                for (i, (_, writer)) in conns.iter_mut().enumerate() {
                    writeln!(writer, "t{t} c{i} r{round}").unwrap();
                }
                for (i, (reader, _)) in conns.iter_mut().enumerate() {
                    let mut line = String::new();
                    reader.read_line(&mut line).unwrap();
                    assert_eq!(line.trim_end(), format!("t{t} c{i} r{round}"));
                }
            }
        }));
    }
    for thread in threads {
        thread.join().unwrap();
    }
    reactor.shutdown();
    assert_eq!(registry.counter("net.connections.accepted").get(), 400);
    assert_eq!(registry.counter("net.frames.read").get(), 400 * 4);
    assert_eq!(registry.gauge("net.connections.open").get(), 0);
}

#[test]
fn graceful_drain_completes_in_flight_work() {
    let (reactor, handler, _registry) = start_echo(ReactorConfig::default());
    let (mut reader, mut writer) = connect(&reactor);
    writer.write_all(b"defer:survivor\n").unwrap();
    while handler.parked.lock().unwrap().is_empty() {
        std::thread::sleep(Duration::from_millis(5));
    }
    let addr = reactor.addr();
    // Shutdown blocks until the deferred frame completes; drive it from
    // another thread and release the completion while it waits.
    let drain = std::thread::spawn(move || reactor.shutdown());
    std::thread::sleep(Duration::from_millis(50));
    handler.release_parked_reversed();
    drain.join().unwrap();
    // The in-flight response arrived before the close...
    assert_eq!(read_line(&mut reader), "survivor");
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());
    // ...and the listener is gone.
    assert!(
        TcpStream::connect(addr).is_err(),
        "listener closed on drain"
    );
}

#[test]
fn stale_completions_never_reach_a_reused_slot() {
    let (reactor, handler, registry) = start_echo(ReactorConfig {
        max_frame_bytes: 64,
        ..ReactorConfig::default()
    });
    // Park a completion, then get its connection force-closed while the
    // work is still in flight (an oversized frame breaks the connection
    // immediately, unlike a polite FIN, which would wait for the
    // completion).
    let (_reader, mut writer) = connect(&reactor);
    writer.write_all(b"defer:ghost\n").unwrap();
    while handler.parked.lock().unwrap().is_empty() {
        std::thread::sleep(Duration::from_millis(5));
    }
    writer.write_all(&[b'x'; 1024]).unwrap();
    // Wait for the reactor to cut the connection (slot freed, gen bumped).
    while registry.gauge("net.connections.open").get() != 0 {
        std::thread::sleep(Duration::from_millis(5));
    }
    // A new connection reuses the slot; the stale completion must not
    // leak into its stream.
    let (mut reader, mut writer) = connect(&reactor);
    writeln!(writer, "fresh").unwrap();
    assert_eq!(read_line(&mut reader), "fresh");
    handler.release_parked_reversed();
    while registry.counter("net.completions.stale").get() == 0 {
        std::thread::sleep(Duration::from_millis(5));
    }
    writeln!(writer, "still clean").unwrap();
    assert_eq!(
        read_line(&mut reader),
        "still clean",
        "the ghost bytes must never appear on the reused slot"
    );
    assert_eq!(registry.counter("net.completions.stale").get(), 1);
    reactor.shutdown();
}
