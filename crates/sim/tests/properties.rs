//! Differential property tests: the functional PE equals the reference
//! operators on arbitrary operands, in every mode.

use proptest::prelude::*;
use sibia_arch::dsm::SkipSide;
use sibia_sbr::Precision;
use sibia_sim::functional::matmul_via_pe;
use sibia_sim::{PeSim, Repr};
use sibia_tensor::{ops, Shape, Tensor};

fn arb_matrix(m: usize, k: usize, max: i32) -> impl Strategy<Value = Tensor<i32>> {
    prop::collection::vec(-max..=max, m * k)
        .prop_map(move |v| Tensor::from_vec(v, Shape::new(&[m, k])))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The PE is bit-exact against the reference matmul for arbitrary
    /// 7-bit operands in every representation and skip mode.
    #[test]
    fn pe_equals_reference_7bit(
        a in arb_matrix(4, 24, 63),
        b in arb_matrix(24, 4, 63),
        repr_sel in 0usize..2,
        skip_sel in 0usize..3,
    ) {
        let repr = [Repr::Sbr, Repr::Conventional][repr_sel];
        let skip = [SkipSide::None, SkipSide::Input, SkipSide::Weight][skip_sel];
        let sim = PeSim { repr, skip, ..PeSim::new(Precision::BITS7, Precision::BITS7) };
        let (got, run) = matmul_via_pe(&sim, &a, &b);
        let reference = ops::matmul(&a, &b);
        prop_assert_eq!(got.data(), reference.data());
        prop_assert!(run.cycles <= run.baseline_cycles);
    }

    /// Mixed precision (10-bit × 7-bit, the MonoDepth2 decoder case) stays
    /// bit-exact.
    #[test]
    fn pe_equals_reference_mixed(
        a in arb_matrix(4, 12, 511),
        b in arb_matrix(12, 4, 63),
    ) {
        let sim = PeSim::new(Precision::BITS10, Precision::BITS7);
        let (got, _) = matmul_via_pe(&sim, &a, &b);
        let reference = ops::matmul(&a, &b);
        prop_assert_eq!(got.data(), reference.data());
    }

    /// Skipping never changes cycle-soundness accounting: skipped sub-words
    /// plus executed cycles cover exactly the baseline.
    #[test]
    fn skip_accounting_is_conservative(
        a in arb_matrix(4, 16, 63),
        b in arb_matrix(16, 4, 63),
    ) {
        let sim = PeSim::new(Precision::BITS7, Precision::BITS7);
        let (_, run) = matmul_via_pe(&sim, &a, &b);
        prop_assert_eq!(run.cycles + run.skipped_subwords, run.baseline_cycles);
    }

    /// Dense (no-skip) execution uses exactly the baseline cycle count.
    #[test]
    fn dense_uses_baseline_cycles(
        a in arb_matrix(4, 16, 63),
        b in arb_matrix(16, 4, 63),
    ) {
        let sim = PeSim { skip: SkipSide::None, ..PeSim::new(Precision::BITS7, Precision::BITS7) };
        let (_, run) = matmul_via_pe(&sim, &a, &b);
        prop_assert_eq!(run.cycles, run.baseline_cycles);
        prop_assert_eq!(run.skipped_subwords, 0);
    }
}
