//! Determinism of the parallel grid engine.
//!
//! The acceptance bar for `sim::parallel` is not "statistically close": a
//! grid simulated with any worker count must be **byte-identical** to a
//! serial walk of the same cells. That holds because (1) each layer's RNG
//! stream is derived from `(seed, layer_index)` rather than draw order, and
//! (2) the cycle model computes every float from cached integer counts with
//! a fixed division order, so neither scheduling nor cache hits can perturb
//! a result. `NetworkResult` contains `f64`s; `assert_eq!` on it therefore
//! checks bit-level float equality.

use sibia_nn::network::{DensityClass, TaskDomain};
use sibia_nn::{Activation, Layer, Network};
use sibia_sim::{ArchSpec, DecompCache, ParallelEngine, Simulator};

fn nets() -> Vec<Network> {
    vec![
        Network::new(
            "det-dense",
            TaskDomain::Vision2d,
            DensityClass::Dense,
            vec![
                Layer::conv2d("c1", 16, 24, 3, 1, 1, 12)
                    .with_activation(Activation::ELU_1)
                    .with_input_sparsity(0.15),
                Layer::conv2d("c2", 24, 24, 3, 1, 1, 12)
                    .with_activation(Activation::Gelu)
                    .with_input_sparsity(0.1),
                Layer::linear("fc", 24, 64, 10).with_activation(Activation::Identity),
            ],
        ),
        Network::new(
            "det-sparse",
            TaskDomain::Vision2d,
            DensityClass::Sparse,
            vec![
                Layer::conv2d("c1", 8, 16, 3, 1, 1, 16)
                    .with_activation(Activation::Relu)
                    .with_input_sparsity(0.5),
                Layer::conv2d("c2", 16, 16, 3, 1, 1, 16)
                    .with_activation(Activation::Relu)
                    .with_input_sparsity(0.6),
            ],
        ),
    ]
}

fn archs() -> Vec<ArchSpec> {
    vec![
        ArchSpec::bit_fusion(),
        ArchSpec::hnpu(),
        ArchSpec::sibia_no_sbr(),
        ArchSpec::sibia_hybrid(),
    ]
}

fn small_sim() -> Simulator {
    let mut sim = Simulator::new(0);
    sim.sample_cap = 4096;
    sim
}

#[test]
fn grid_is_bit_identical_to_serial_at_every_thread_count() {
    let sim = small_sim();
    let archs = archs();
    let nets = nets();
    let seeds = [1u64, 2, 42];

    // Serial reference: plain per-cell simulation, no sharing, no pool.
    let mut serial = Vec::new();
    for arch in &archs {
        for net in &nets {
            for &seed in &seeds {
                let mut cell_sim = sim;
                cell_sim.seed = seed;
                serial.push(cell_sim.simulate_network(arch, net));
            }
        }
    }

    for threads in [1usize, 2, 8] {
        let grid = ParallelEngine::with_threads(threads).simulate_grid(&sim, &archs, &nets, &seeds);
        assert_eq!(grid.cells().len(), serial.len());
        for (cell, reference) in grid.cells().iter().zip(&serial) {
            // Full-struct equality: every cycle count, every f64 energy
            // term, every per-layer result, bit for bit.
            assert_eq!(
                &cell.result, reference,
                "threads={threads} arch={} net={} seed={}",
                cell.arch_index, cell.network_index, cell.seed
            );
        }
    }
}

#[test]
fn shared_cache_does_not_perturb_results() {
    let sim = small_sim();
    let cache = DecompCache::new();
    let net = &nets()[0];
    for arch in archs() {
        let cached = sim.simulate_network_cached(&arch, net, None, &cache);
        let fresh = sim.simulate_network(&arch, net);
        assert_eq!(cached, fresh, "arch={}", arch.name);
    }
    // Two representations were exercised → exactly two decomps per layer,
    // one tensor entry per layer.
    assert_eq!(cache.tensor_entries(), net.layers().len());
    assert_eq!(cache.decomp_entries(), 2 * net.layers().len());
}

#[test]
fn zero_and_overflow_thread_counts_clamp_and_still_simulate() {
    // Regression: `with_threads(0)` used to panic; it now clamps to one
    // worker, and absurd counts clamp to `MAX_THREADS`, both producing the
    // exact same grid as any other worker count.
    let sim = small_sim();
    let archs = [ArchSpec::sibia_hybrid()];
    let nets = nets();
    let seeds = [9u64];
    let clamped = ParallelEngine::with_threads(0);
    assert_eq!(clamped.threads(), 1);
    assert_eq!(
        ParallelEngine::with_threads(usize::MAX).threads(),
        ParallelEngine::MAX_THREADS
    );
    let from_zero = clamped.simulate_grid(&sim, &archs, &nets, &seeds);
    let from_two = ParallelEngine::with_threads(2).simulate_grid(&sim, &archs, &nets, &seeds);
    assert_eq!(from_zero, from_two);
}

#[test]
fn shared_cache_grid_is_bit_identical_and_reuses_entries() {
    // The serve daemon's usage pattern: many grids against one long-lived,
    // bounded cache. Results must match the fresh-cache engine bit for bit,
    // and the second pass must be answered from the cache.
    let sim = small_sim();
    let archs = archs();
    let nets = nets();
    let seeds = [1u64, 2];
    let cache = DecompCache::with_capacity(256);
    let engine = ParallelEngine::with_threads(4);
    let first = engine.simulate_grid_cached(&sim, &archs, &nets, &seeds, &cache);
    let fresh = engine.simulate_grid(&sim, &archs, &nets, &seeds);
    assert_eq!(first, fresh);
    let misses_after_first = cache.misses();
    let second = engine.simulate_grid_cached(&sim, &archs, &nets, &seeds, &cache);
    assert_eq!(second, fresh);
    assert_eq!(cache.misses(), misses_after_first, "second grid all hits");
    assert!(cache.hits() > 0);
}

#[test]
fn multi_seed_summary_matches_manual_serial_walk() {
    let sim = small_sim();
    let net = &nets()[1];
    let arch = ArchSpec::sibia_hybrid();
    let seeds = [3u64, 5, 7, 11];
    let (mean, std) = sim.simulate_network_multi(&arch, net, &seeds);
    let cycles: Vec<f64> = seeds
        .iter()
        .map(|&s| {
            let mut cell = sim;
            cell.seed = s;
            cell.simulate_network(&arch, net).total_cycles() as f64
        })
        .collect();
    let m = cycles.iter().sum::<f64>() / cycles.len() as f64;
    let v = cycles.iter().map(|c| (c - m).powi(2)).sum::<f64>() / (cycles.len() as f64 - 1.0);
    assert_eq!(mean, m);
    assert_eq!(std, v.sqrt());
}

#[test]
fn layer_order_does_not_change_layer_tensors() {
    // Per-layer RNG derivation: simulating a single layer in isolation
    // must reproduce the same result the layer gets inside a network walk.
    let sim = small_sim();
    let arch = ArchSpec::sibia_hybrid();
    let net = &nets()[0];
    let whole = sim.simulate_network(&arch, net);
    for (i, layer) in net.layers().iter().enumerate() {
        let cache = DecompCache::new();
        let decomp = sim.decompose_layer(layer, i, arch.repr, &cache);
        let alone = sim.simulate_layer_from(&arch, layer, &decomp, 1.0);
        assert_eq!(alone, whole.layers[i], "layer {i}");
    }
}
