//! Exactness of the tile IR (DESIGN.md §14).
//!
//! Two contracts, both *byte*-level:
//!
//! 1. **Partition exactness** — a [`TilePlan`] partitions every plane with
//!    no gap and no overlap, and folding per-tile [`TileStats`] reproduces
//!    the whole-plane [`PlaneStats`] exactly, under every kernel tier the
//!    host supports (the same tiers `SIBIA_FORCE_KERNEL` selects).
//! 2. **Grid identity** — a grid simulated through the tile-grain engine
//!    (`sim.tile = Some(..)`) is `assert_eq!`-identical to the layer-grain
//!    engine for every tile size and thread count tested, including
//!    store-backed and observed runs. This is what lets `--tile` be a pure
//!    scheduling knob: same bytes, different streaming granularity.

use sibia_nn::network::{DensityClass, TaskDomain};
use sibia_nn::{Activation, Layer, Network};
use sibia_sbr::kernels::{set_thread_override, KernelTier};
use sibia_sim::cache::{PlaneStats, DMU_INDEX_BITS};
use sibia_sim::tile::{TileConfig, TileFold, TilePlan};
use sibia_sim::{ArchSpec, DecompCache, ParallelEngine, Simulator};

/// Deterministic xorshift stream for synthetic planes.
fn planes(seed: u64, len: usize, sparsity_mod: u64) -> Vec<i8> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            if state % sparsity_mod == 0 {
                ((state >> 33) % 15) as i8 - 7
            } else {
                0
            }
        })
        .collect()
}

fn host_tiers() -> Vec<KernelTier> {
    let mut tiers = vec![KernelTier::Scalar, KernelTier::Swar];
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("sse2") {
            tiers.push(KernelTier::Sse2);
        }
        if is_x86_feature_detected!("avx2") {
            tiers.push(KernelTier::Avx2);
        }
    }
    tiers
}

#[test]
fn partition_is_exact_for_random_shapes_under_every_kernel_tier() {
    let lens = [0usize, 1, 3, 4, 63, 64, 65, 129, 1000, 4096, 4099];
    let subwords = [1usize, 2, 5, 7, 16, 33, 4096];
    for tier in host_tiers() {
        set_thread_override(Some(tier)).expect("tier supported on this host");
        for (i, &len) in lens.iter().enumerate() {
            for &sparsity in &[2u64, 5, 1_000_000] {
                let plane = planes(i as u64 + 1, len, sparsity);
                let whole = PlaneStats::measure_plane(&plane);
                for &sw in &subwords {
                    let config = TileConfig::new(sw).unwrap();
                    let plan = TilePlan::new(plane.len(), config);
                    // No gap, no overlap: bounds chain and cover.
                    let mut covered = 0usize;
                    for t in 0..plan.tile_count() {
                        let b = plan.bounds(t);
                        assert_eq!(
                            b.start,
                            covered,
                            "tile {t} must start where {} ended",
                            t.wrapping_sub(1)
                        );
                        assert!(b.end > b.start, "tile {t} must be non-empty");
                        covered = b.end;
                    }
                    assert_eq!(covered, plane.len(), "tiles must cover the plane");
                    // The fold reproduces the whole-plane counts exactly.
                    let mut fold = TileFold::new(DMU_INDEX_BITS);
                    for tile in plan.iter(&plane) {
                        fold.push(sibia_sim::tile::TileStats::measure(tile, DMU_INDEX_BITS));
                    }
                    let folded = fold.finish();
                    assert_eq!(
                        folded, whole,
                        "fold mismatch: tier {tier:?} len {len} sw {sw} sparsity 1/{sparsity}"
                    );
                }
            }
        }
    }
    set_thread_override(None).unwrap();
}

fn nets() -> Vec<Network> {
    vec![
        Network::new(
            "tile-dense",
            TaskDomain::Vision2d,
            DensityClass::Dense,
            vec![
                Layer::conv2d("c1", 16, 24, 3, 1, 1, 12)
                    .with_activation(Activation::ELU_1)
                    .with_input_sparsity(0.15),
                Layer::linear("fc", 24, 64, 10).with_activation(Activation::Identity),
            ],
        ),
        Network::new(
            "tile-sparse",
            TaskDomain::Vision2d,
            DensityClass::Sparse,
            vec![
                Layer::conv2d("c1", 8, 16, 3, 1, 1, 16)
                    .with_activation(Activation::Relu)
                    .with_input_sparsity(0.5),
                Layer::conv2d("c2", 16, 16, 3, 1, 1, 16)
                    .with_activation(Activation::Relu)
                    .with_input_sparsity(0.6),
            ],
        ),
    ]
}

fn archs() -> Vec<ArchSpec> {
    vec![
        ArchSpec::bit_fusion(),
        ArchSpec::sibia_no_sbr(),
        ArchSpec::sibia_hybrid(),
    ]
}

fn small_sim() -> Simulator {
    let mut sim = Simulator::new(0);
    sim.sample_cap = 4096;
    sim
}

#[test]
fn tiled_grid_is_byte_identical_to_the_layer_grain_engine() {
    let archs = archs();
    let nets = nets();
    let seeds = [1u64, 7];
    let layer_grain = ParallelEngine::with_threads(2).simulate_grid_cached(
        &small_sim(),
        &archs,
        &nets,
        &seeds,
        &DecompCache::new(),
    );
    // Tile sizes: one-tile-per-layer (huge), the paper PE (16 sub-words),
    // and an awkward prime that never divides a plane evenly.
    for tile in [1_000_000usize, 16, 7] {
        for threads in [1usize, 4] {
            let mut sim = small_sim();
            sim.tile = Some(tile);
            let tiled = ParallelEngine::with_threads(threads).simulate_grid_cached(
                &sim,
                &archs,
                &nets,
                &seeds,
                &DecompCache::new(),
            );
            assert_eq!(
                tiled, layer_grain,
                "tile {tile} × {threads} threads must not change a byte"
            );
        }
    }
}

#[test]
fn tiled_grid_observer_sees_every_cell_and_the_store_round_trips() {
    use std::sync::atomic::{AtomicUsize, Ordering};

    let archs = archs();
    let nets = nets();
    let seeds = [3u64];
    let dir = std::env::temp_dir().join(format!("sibia-tile-grid-{}", std::process::id()));
    let store = sibia_store::Store::open(&dir).unwrap();

    let mut sim = small_sim();
    sim.tile = Some(7);
    let seen = AtomicUsize::new(0);
    let cold = ParallelEngine::with_threads(3).simulate_grid_observed(
        &sim,
        &archs,
        &nets,
        &seeds,
        &DecompCache::new(),
        Some(&store),
        &|_cell| {
            seen.fetch_add(1, Ordering::Relaxed);
        },
    );
    assert_eq!(seen.load(Ordering::Relaxed), archs.len() * nets.len());

    // Second run: every cell is a store hit, bytes unchanged, observer
    // still fires once per cell.
    let seen = AtomicUsize::new(0);
    let warm = ParallelEngine::with_threads(3).simulate_grid_observed(
        &sim,
        &archs,
        &nets,
        &seeds,
        &DecompCache::new(),
        Some(&store),
        &|_cell| {
            seen.fetch_add(1, Ordering::Relaxed);
        },
    );
    assert_eq!(seen.load(Ordering::Relaxed), archs.len() * nets.len());
    assert_eq!(warm, cold);

    // And a layer-grain run against the same store also hits (the tile
    // knob is outside the store key).
    let untiled = ParallelEngine::new().simulate_grid_stored(
        &small_sim(),
        &archs,
        &nets,
        &seeds,
        &DecompCache::new(),
        &store,
    );
    assert_eq!(untiled, cold);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tile_cache_shares_content_identical_tiles() {
    // Two networks whose first layers differ only in *name*: synthetic
    // tensor content depends on shape and (seed, layer_index), not the
    // name, so the decomposition cache misses (its key includes the name)
    // while the streamed tiles are byte-identical — the content-keyed
    // tile cache must convert the second pass into hits.
    let layer = |name: &str| {
        Layer::conv2d(name, 8, 16, 3, 1, 1, 16)
            .with_activation(Activation::Relu)
            .with_input_sparsity(0.4)
    };
    let net_a = Network::new(
        "twin-a",
        TaskDomain::Vision2d,
        DensityClass::Sparse,
        vec![layer("c1")],
    );
    let net_b = Network::new(
        "twin-b",
        TaskDomain::Vision2d,
        DensityClass::Sparse,
        vec![layer("c1-renamed")],
    );
    let mut sim = small_sim();
    sim.tile = Some(16);
    let cache = DecompCache::new();
    let arch = [ArchSpec::sibia_hybrid()];
    let _ = ParallelEngine::with_threads(2).simulate_grid_cached(
        &sim,
        &arch,
        &[net_a, net_b],
        &[5u64],
        &cache,
    );
    assert!(
        cache.tile_hits() > 0,
        "identical tile content across networks must hit ({} misses)",
        cache.tile_misses()
    );
}
