//! Eviction properties of the bounded [`DecompCache`].
//!
//! Two invariants a long-lived daemon depends on:
//!
//! * **Bound**: `with_capacity(k)` never holds more than `k` entries per
//!   level, at any observation point, no matter the key sequence or the
//!   thread interleaving — an unbounded leak in the serve daemon's
//!   process-lifetime cache would be a slow OOM.
//! * **Accounting**: every lookup is counted exactly once, as a hit or a
//!   miss, so `hits + misses` equals the total lookup count even when
//!   threads race the same key (racing threads may *both* miss and both
//!   compute — that is the documented design — but no lookup may vanish
//!   from or double-count in the totals).

use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use sibia_nn::Layer;
use sibia_sim::cache::LayerTensors;
use sibia_sim::DecompCache;

fn probe_layer() -> Layer {
    Layer::conv2d("probe", 8, 8, 3, 1, 1, 8)
}

/// One synthetic lookup: the key varies by `(seed, layer_index)`; the value
/// is trivial (the cache never inspects it).
fn lookup(cache: &DecompCache, layer: &Layer, seed: u64, index: usize) {
    cache.tensors(layer, seed, index, 64, || LayerTensors {
        input_codes: vec![seed as i32],
        weight_codes: vec![index as i32],
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Serial key sequences: the entry count never exceeds the cap at any
    /// point, and the counters account for every lookup.
    #[test]
    fn capacity_is_never_exceeded_serially(
        cap in 1usize..8,
        keys in prop::collection::vec((0u64..16, 0usize..4), 1..80),
    ) {
        let cache = DecompCache::with_capacity(cap);
        let layer = probe_layer();
        for &(seed, index) in &keys {
            lookup(&cache, &layer, seed, index);
            prop_assert!(
                cache.tensor_entries() <= cap,
                "{} entries with cap {cap}",
                cache.tensor_entries()
            );
        }
        prop_assert_eq!(cache.hits() + cache.misses(), keys.len() as u64);
        // Distinct keys bound the misses from below (each distinct key
        // misses at least once) and the hits from above.
        let distinct: std::collections::HashSet<_> = keys.iter().collect();
        prop_assert!(cache.misses() >= distinct.len() as u64);
        prop_assert!(cache.hits() <= (keys.len() - distinct.len()) as u64);
    }

    /// Multithreaded interleavings: four threads hammer overlapping key
    /// ranges; the bound holds at every observation point and the counter
    /// total equals the exact number of lookups issued.
    #[test]
    fn capacity_and_counters_hold_under_threads(
        cap in 1usize..6,
        per_thread in prop::collection::vec((0u64..6, 0usize..3), 8..40),
    ) {
        let cache = DecompCache::with_capacity(cap);
        let layer = probe_layer();
        let lookups = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let cache = &cache;
                let layer = &layer;
                let lookups = &lookups;
                let keys = &per_thread;
                scope.spawn(move || {
                    for &(seed, index) in keys {
                        // Offset one thread's range so interleavings mix
                        // shared keys (contention) with private ones
                        // (eviction pressure).
                        lookup(cache, layer, seed + (t % 2) * 3, index);
                        lookups.fetch_add(1, Ordering::Relaxed);
                        assert!(
                            cache.tensor_entries() <= cap,
                            "cap {cap} exceeded under concurrency"
                        );
                    }
                });
            }
        });
        prop_assert!(cache.tensor_entries() <= cap);
        prop_assert_eq!(
            cache.hits() + cache.misses(),
            lookups.load(Ordering::Relaxed),
            "every lookup is exactly one hit or one miss"
        );
        prop_assert!(cache.misses() >= 1);
    }
}

/// The documented race — two threads missing the same key and both
/// computing — must still keep the bound and count both lookups.
#[test]
fn same_key_race_counts_both_lookups() {
    let cache = DecompCache::with_capacity(2);
    let layer = probe_layer();
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let cache = &cache;
            let layer = &layer;
            scope.spawn(move || {
                for _ in 0..50 {
                    lookup(cache, layer, 7, 0);
                }
            });
        }
    });
    assert_eq!(cache.hits() + cache.misses(), 8 * 50);
    assert_eq!(cache.tensor_entries(), 1);
}
