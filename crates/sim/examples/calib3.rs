fn main() {
    use sibia_nn::zoo;
    use sibia_sim::{ArchSpec, Simulator};
    let mut sim = Simulator::new(1);
    sim.sample_cap = 8192;
    for net in [
        zoo::mobilenet_v2(),
        zoo::resnet18(),
        zoo::votenet(),
        zoo::dgcnn(),
    ] {
        let bf = sim.simulate_network(&ArchSpec::bit_fusion(), &net);
        let hnpu = sim.simulate_network(&ArchSpec::hnpu(), &net);
        let hyb = sim.simulate_network(&ArchSpec::sibia_hybrid(), &net);
        println!("{}: hnpu {:.2} hybrid {:.2} | eff bf {:.2} hnpu {:.2} hyb {:.2} | gops bf {:.0} hyb {:.0}",
            net.name(), hnpu.speedup_over(&bf), hyb.speedup_over(&bf),
            bf.efficiency_tops_w(), hnpu.efficiency_tops_w(), hyb.efficiency_tops_w(),
            bf.throughput_gops(), hyb.throughput_gops());
    }
}
