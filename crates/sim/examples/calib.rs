//! Calibration probe: sparsity + speedup shapes on a few benchmarks.
fn main() {
    use sibia_nn::zoo;
    use sibia_nn::SynthSource;
    use sibia_sbr::stats::SparsityReport;
    use sibia_sim::{ArchSpec, Simulator};

    // Fig 6-style sparsity for Albert-like / YoloV3-like layers.
    for net in [
        zoo::albert(zoo::GlueTask::Mnli),
        zoo::yolov3(),
        zoo::monodepth2(),
    ] {
        let mut src = SynthSource::new(1);
        let l = &net.layers()[net.layers().len() / 2];
        let acts = src.activations(l, 32768);
        let w = src.weights(l, 32768);
        let ri = SparsityReport::analyze(acts.codes().data(), l.input_precision());
        let rw = SparsityReport::analyze(w.codes().data(), l.weight_precision());
        println!("{} [{}]: in full {:.3} conv {:.3} sbr {:.3} (hi {:.3}) | w full {:.3} conv {:.3} sbr {:.3} (hi {:.3})",
            net.name(), l.name(), ri.full_bitwidth, ri.conventional.overall, ri.signed.overall, ri.signed.high_order(),
            rw.full_bitwidth, rw.conventional.overall, rw.signed.overall, rw.signed.high_order());
    }
    // Fig 10-style speedups on smaller nets (fast): monodepth2 + dgcnn.
    let sim = Simulator::new(3);
    for net in [
        zoo::monodepth2(),
        zoo::dgcnn(),
        zoo::albert(zoo::GlueTask::Qqp),
    ] {
        let bf = sim.simulate_network(&ArchSpec::bit_fusion(), &net);
        let hnpu = sim.simulate_network(&ArchSpec::hnpu(), &net);
        let nosbr = sim.simulate_network(&ArchSpec::sibia_no_sbr(), &net);
        let inp = sim.simulate_network(&ArchSpec::sibia_input_skip(), &net);
        let hyb = sim.simulate_network(&ArchSpec::sibia_hybrid(), &net);
        println!(
            "{}: hnpu {:.2} nosbr {:.2} input {:.2} hybrid {:.2} | eff: hnpu {:.2} hyb {:.2}",
            net.name(),
            hnpu.speedup_over(&bf),
            nosbr.speedup_over(&bf),
            inp.speedup_over(&bf),
            hyb.speedup_over(&bf),
            hnpu.efficiency_gain_over(&bf),
            hyb.efficiency_gain_over(&bf)
        );
    }
}
