fn main() {
    use sibia_nn::zoo::{self, GlueTask};
    use sibia_sim::{ArchSpec, Simulator};
    let sim = Simulator::new(1);
    let nets = [
        zoo::albert(GlueTask::Sst2),
        zoo::albert(GlueTask::Qqp),
        zoo::albert(GlueTask::Mnli),
        zoo::vit(),
        zoo::yolov3(),
        zoo::monodepth2(),
        zoo::dgcnn(),
        zoo::mobilenet_v2(),
        zoo::resnet18(),
        zoo::votenet(),
    ];
    println!(
        "{:<16} {:>6} {:>7} {:>6} {:>7} | {:>8} {:>8}",
        "net", "hnpu", "no-sbr", "input", "hybrid", "effHNPU", "effHyb"
    );
    for net in nets {
        let bf = sim.simulate_network(&ArchSpec::bit_fusion(), &net);
        let h = sim.simulate_network(&ArchSpec::hnpu(), &net);
        let ns = sim.simulate_network(&ArchSpec::sibia_no_sbr(), &net);
        let i = sim.simulate_network(&ArchSpec::sibia_input_skip(), &net);
        let hy = sim.simulate_network(&ArchSpec::sibia_hybrid(), &net);
        println!(
            "{:<16} {:>6.2} {:>7.2} {:>6.2} {:>7.2} | {:>8.2} {:>8.2}",
            net.name(),
            h.speedup_over(&bf),
            ns.speedup_over(&bf),
            i.speedup_over(&bf),
            hy.speedup_over(&bf),
            h.efficiency_gain_over(&bf),
            hy.efficiency_gain_over(&bf)
        );
    }
}
