//! Detailed layer simulation: the event-level composition of the models.
//!
//! Where [`crate::perf`] is analytic (fractions × constants), this module
//! *composes the mechanism models*: it synthesizes real operand planes,
//! lets the [DSM](sibia_arch::dsm) choose the skip side from the first
//! tile, deals channels to PE columns, walks each column's compressed
//! stream through the buffered [pipeline](crate::pipeline), merges columns
//! under the [accumulation-latching model](crate::cycle), and reports
//! measured cycles, utilization and stalls. It exists to *validate* the
//! analytic simulator: `validate_against_analytic` checks the two agree
//! within a band on every pass of a layer.

use std::fmt;

use sibia_arch::dsm::{DsmUnit, SkipSide};
use sibia_nn::{Layer, SynthSource};
use sibia_sbr::subword::to_subwords;
use sibia_sbr::{conv, sbr};

use crate::cycle::CycleSim;
use crate::pipeline::PipelineSim;
use crate::spec::{ArchSpec, Repr};

/// Measured result of one slice-order pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PassTrace {
    /// Input slice order.
    pub input_order: usize,
    /// Weight slice order.
    pub weight_order: usize,
    /// Cycles for the slowest PE column.
    pub cycles: u64,
    /// Non-zero fraction of the skipped operand's sub-words.
    pub nonzero_fraction: f64,
    /// Fetch-stall cycles across columns.
    pub fetch_stalls: u64,
}

/// Measured result of one layer.
#[derive(Debug, Clone, PartialEq)]
pub struct DetailedTrace {
    /// Layer name.
    pub name: String,
    /// Per-pass traces.
    pub passes: Vec<PassTrace>,
    /// The DSM's skip decision.
    pub skip_side: SkipSide,
    /// Measured column utilization (busy / capacity) over all passes.
    pub utilization: f64,
}

impl DetailedTrace {
    /// Total cycles over all passes.
    pub fn total_cycles(&self) -> u64 {
        self.passes.iter().map(|p| p.cycles).sum()
    }
}

impl fmt::Display for DetailedTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} cycles over {} passes ({:?}, {:.0}% util)",
            self.name,
            self.total_cycles(),
            self.passes.len(),
            self.skip_side,
            self.utilization * 100.0
        )
    }
}

/// The detailed layer simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetailedSim {
    /// PE columns sharing an accumulation unit.
    pub columns: usize,
    /// Per-column pipeline (buffering / compression) configuration.
    pub pipeline: PipelineSim,
    /// Accumulation-unit latching.
    pub column_latching: bool,
    /// Elements sampled per operand tensor.
    pub sample_cap: usize,
    /// Re-run the DSM decision per tile window instead of once per layer.
    ///
    /// Off (the default), the DSM samples the first tile and commits one
    /// skip side for the whole layer — the paper's §III-B flow, and the
    /// path every existing result is pinned to. On, the monitor re-decides
    /// on every [`crate::tile::TileConfig::PAPER_SUBWORDS`]-sub-word window,
    /// so a layer whose sparsity flips sides mid-stream skips the locally
    /// better operand in each window.
    pub dsm_per_tile: bool,
}

impl DetailedSim {
    /// The Sibia PE configuration.
    pub fn sibia() -> Self {
        Self {
            columns: 4,
            pipeline: PipelineSim::sibia(),
            column_latching: true,
            sample_cap: 16_384,
            dsm_per_tile: false,
        }
    }

    /// Simulates one layer at the PE level and returns measured traces.
    pub fn run_layer(
        &self,
        arch: &ArchSpec,
        layer: &Layer,
        src: &mut SynthSource,
    ) -> DetailedTrace {
        let inputs = src.activations(layer, self.sample_cap);
        let weights = src.weights(layer, self.sample_cap);
        let (input_planes, weight_planes) = match arch.repr {
            Repr::Sbr => (
                sbr::planes(inputs.codes().data(), layer.input_precision()),
                sbr::planes(weights.codes().data(), layer.weight_precision()),
            ),
            Repr::Conventional => (
                conv::planes(inputs.codes().data(), layer.input_precision()),
                conv::planes(weights.codes().data(), layer.weight_precision()),
            ),
        };
        let dsm = DsmUnit::new();
        let skip_side = dsm.decide(&input_planes, &weight_planes).side;
        let mut passes = Vec::new();
        let mut busy = 0u64;
        let mut capacity = 0u64;
        let cycle_sim = CycleSim {
            columns: self.columns,
            column_latching: self.column_latching,
            accum_drain_cycles: 2,
        };
        for (oi, ip) in input_planes.iter().enumerate() {
            for (ow, wp) in weight_planes.iter().enumerate() {
                // The skipped operand's sub-word stream for this pass.
                let words = if self.dsm_per_tile {
                    per_tile_stream(&dsm, ip, wp)
                } else {
                    let plane: &[i8] = match skip_side {
                        SkipSide::Weight => wp,
                        _ => ip,
                    };
                    to_subwords(plane)
                };
                let nonzero = words.iter().filter(|w| !w.is_zero()).count();
                // Deal sub-words round-robin to columns and pipeline each.
                let mut col_cycles = vec![0u64; self.columns];
                let mut stalls = 0u64;
                let mut work = vec![Vec::new(); self.columns];
                for (i, w) in words.iter().enumerate() {
                    work[i % self.columns].push(*w);
                }
                for (c, stream) in work.iter().enumerate() {
                    let t = self.pipeline.run_pass(stream);
                    col_cycles[c] = t.cycles;
                    stalls += t.fetch_stall_cycles;
                    busy += t.active_cycles;
                }
                // Merge columns under the latching model: latched → the
                // slowest column bounds the pass; unlatched → handled by the
                // cycle model on the per-column totals.
                let cycles = if self.column_latching {
                    col_cycles.iter().copied().max().unwrap_or(0) + cycle_sim.accum_drain_cycles
                } else {
                    let tiles: Vec<Vec<u32>> = col_cycles.iter().map(|&c| vec![c as u32]).collect();
                    cycle_sim.run(&tiles).cycles
                };
                capacity += cycles * self.columns as u64;
                passes.push(PassTrace {
                    input_order: oi,
                    weight_order: ow,
                    cycles,
                    nonzero_fraction: nonzero as f64 / words.len().max(1) as f64,
                    fetch_stalls: stalls,
                });
            }
        }
        DetailedTrace {
            name: layer.name().to_owned(),
            passes,
            skip_side,
            utilization: if capacity == 0 {
                0.0
            } else {
                busy as f64 / capacity as f64
            },
        }
    }
}

/// Builds the skipped sub-word stream with a fresh DSM decision per tile
/// window: tile `t` compares the same window of the input and weight
/// planes and streams whichever side the monitor picks there. Windows past
/// a shorter plane's end measure as fully dense (zero fraction 0.0), so
/// the decision falls to the operand that still has data.
fn per_tile_stream(
    dsm: &DsmUnit,
    input_plane: &[i8],
    weight_plane: &[i8],
) -> Vec<sibia_sbr::subword::SubWord> {
    let tile_digits = crate::tile::TileConfig::default().digits();
    let tiles = input_plane
        .len()
        .max(weight_plane.len())
        .div_ceil(tile_digits)
        .max(1);
    let window = |plane: &[i8], t: usize| -> Vec<i8> {
        let lo = (t * tile_digits).min(plane.len());
        let hi = ((t + 1) * tile_digits).min(plane.len());
        plane[lo..hi].to_vec()
    };
    let mut words = Vec::new();
    for t in 0..tiles {
        let iw = window(input_plane, t);
        let ww = window(weight_plane, t);
        let side = dsm
            .decide(std::slice::from_ref(&iw), std::slice::from_ref(&ww))
            .side;
        let chosen = match side {
            SkipSide::Weight => &ww,
            _ => &iw,
        };
        words.extend(to_subwords(chosen));
    }
    words
}

impl DetailedSim {
    /// Simulates every layer of a network and returns the traces.
    pub fn run_network(
        &self,
        arch: &ArchSpec,
        net: &sibia_nn::Network,
        seed: u64,
    ) -> Vec<DetailedTrace> {
        let mut src = SynthSource::new(seed);
        net.layers()
            .iter()
            .map(|l| self.run_layer(arch, l, &mut src))
            .collect()
    }
}

impl Default for DetailedSim {
    fn default() -> Self {
        Self::sibia()
    }
}

/// Compares the detailed trace against the analytic estimate for the same
/// layer: per pass, analytic cycles = sampled sub-words × non-zero fraction
/// / columns. Returns the worst per-pass relative deviation.
pub fn validate_against_analytic(trace: &DetailedTrace, sampled_subwords: usize) -> f64 {
    let mut worst: f64 = 0.0;
    for p in &trace.passes {
        let analytic =
            (sampled_subwords as f64 * p.nonzero_fraction / trace_columns() as f64).max(1.0);
        // Relative deviation with an absolute floor: very sparse passes are
        // a handful of cycles, where fixed drain/imbalance overheads
        // dominate any relative measure.
        let dev = (p.cycles as f64 - analytic).abs() / analytic.max(32.0);
        worst = worst.max(dev);
    }
    worst
}

fn trace_columns() -> usize {
    4
}

#[cfg(test)]
mod tests {
    use super::*;
    use sibia_nn::Activation;

    fn layer() -> Layer {
        Layer::linear("l", 64, 256, 64)
            .with_activation(Activation::Gelu)
            .with_input_sparsity(0.15)
    }

    #[test]
    fn detailed_trace_covers_all_passes() {
        let mut src = SynthSource::new(1);
        let t = DetailedSim::sibia().run_layer(&ArchSpec::sibia_hybrid(), &layer(), &mut src);
        assert_eq!(t.passes.len(), 4); // 7-bit × 7-bit
        assert!(t.total_cycles() > 0);
        assert!(t.utilization > 0.5, "{t}");
    }

    #[test]
    fn detailed_agrees_with_analytic_within_band() {
        let mut src = SynthSource::new(2);
        let sim = DetailedSim::sibia();
        let l = layer();
        let t = sim.run_layer(&ArchSpec::sibia_hybrid(), &l, &mut src);
        let sampled = l.kind().input_len().min(sim.sample_cap).div_ceil(4);
        let worst = validate_against_analytic(&t, sampled);
        // The mechanisms (buffering, drain, column imbalance) add overhead
        // over the ideal analytic count, but stay within ~35 %.
        assert!(worst < 0.35, "worst deviation {worst}");
    }

    #[test]
    fn sparse_high_passes_are_cheaper_than_dense_low_passes() {
        let mut src = SynthSource::new(3);
        let t = DetailedSim::sibia().run_layer(&ArchSpec::sibia_hybrid(), &layer(), &mut src);
        let hi = t
            .passes
            .iter()
            .find(|p| p.input_order == 1)
            .expect("high pass");
        let lo = t
            .passes
            .iter()
            .find(|p| p.input_order == 0)
            .expect("low pass");
        assert!(hi.cycles < lo.cycles, "hi {} lo {}", hi.cycles, lo.cycles);
        assert!(hi.nonzero_fraction < lo.nonzero_fraction);
    }

    #[test]
    fn network_level_detailed_ordering_matches_analytic() {
        // The mechanism-level simulator reproduces the analytic simulator's
        // architecture ordering at network scale (sampled). A dense GeLU
        // network isolates the SBR's input-side effect — the detailed model
        // skips only the DSM-chosen side, without per-pass hybrid rescue.
        use crate::perf::Simulator;
        use sibia_nn::network::{DensityClass, TaskDomain};
        use sibia_nn::Network;
        let net = Network::new(
            "gelu-mlp",
            TaskDomain::Language,
            DensityClass::Dense,
            (0..3)
                .map(|i| {
                    sibia_nn::Layer::linear(&format!("l{i}"), 64, 256, 256)
                        .with_activation(Activation::Gelu)
                        .with_input_sparsity(0.12)
                })
                .collect(),
        );
        let mut detailed = DetailedSim::sibia();
        detailed.sample_cap = 2048;
        let cyc = |arch: &ArchSpec| -> u64 {
            detailed
                .run_network(arch, &net, 5)
                .iter()
                .map(DetailedTrace::total_cycles)
                .sum()
        };
        let sbr_cycles = cyc(&ArchSpec::sibia_hybrid());
        let conv_cycles = cyc(&ArchSpec::sibia_no_sbr());
        assert!(
            sbr_cycles < conv_cycles,
            "sbr {sbr_cycles} conv {conv_cycles}"
        );
        // And the analytic simulator agrees on the direction.
        let mut sim = Simulator::new(5);
        sim.sample_cap = 2048;
        let a_sbr = sim.simulate_network(&ArchSpec::sibia_hybrid(), &net);
        let a_conv = sim.simulate_network(&ArchSpec::sibia_no_sbr(), &net);
        assert!(a_sbr.total_cycles() < a_conv.total_cycles());
    }

    #[test]
    fn per_tile_dsm_defaults_off_and_the_default_path_is_unchanged() {
        let sim = DetailedSim::sibia();
        assert!(!sim.dsm_per_tile);
        let mut explicit = sim;
        explicit.dsm_per_tile = false;
        let mut src1 = SynthSource::new(7);
        let mut src2 = SynthSource::new(7);
        let arch = ArchSpec::sibia_hybrid();
        let l = layer();
        assert_eq!(
            sim.run_layer(&arch, &l, &mut src1),
            explicit.run_layer(&arch, &l, &mut src2)
        );
    }

    #[test]
    fn per_tile_dsm_stays_close_to_the_layer_decision_on_uniform_data() {
        // Synthetic layers are statistically uniform, so a per-tile monitor
        // should mostly agree with the layer-level one: same pass count,
        // cycles within a modest band either way.
        let mut per_layer = DetailedSim::sibia();
        let mut per_tile = per_layer;
        per_tile.dsm_per_tile = true;
        per_layer.sample_cap = 4096;
        per_tile.sample_cap = 4096;
        let mut src1 = SynthSource::new(11);
        let mut src2 = SynthSource::new(11);
        let arch = ArchSpec::sibia_hybrid();
        let l = layer();
        let t_layer = per_layer.run_layer(&arch, &l, &mut src1);
        let t_tile = per_tile.run_layer(&arch, &l, &mut src2);
        assert_eq!(t_layer.passes.len(), t_tile.passes.len());
        assert!(t_tile.total_cycles() > 0);
        let ratio = t_tile.total_cycles() as f64 / t_layer.total_cycles() as f64;
        assert!((0.5..=1.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn conventional_repr_finds_less_to_skip_on_dense_data() {
        let mut src1 = SynthSource::new(4);
        let mut src2 = SynthSource::new(4);
        let sbr_t = DetailedSim::sibia().run_layer(&ArchSpec::sibia_hybrid(), &layer(), &mut src1);
        let conv_t = DetailedSim::sibia().run_layer(&ArchSpec::sibia_no_sbr(), &layer(), &mut src2);
        assert!(
            sbr_t.total_cycles() < conv_t.total_cycles(),
            "sbr {} conv {}",
            sbr_t.total_cycles(),
            conv_t.total_cycles()
        );
    }
}
