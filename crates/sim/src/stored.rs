//! Read-through / write-back simulation against the persistent store.
//!
//! The store-backed entry points mirror the `*_cached` family one level
//! up: where [`DecompCache`] memoizes synthesis and decomposition within a
//! process, the [`Store`] memoizes whole [`NetworkResult`]s across
//! processes. Soundness comes from determinism — a network result is a
//! pure function of `(network, seed, repr, config)` — so the store key
//! ([`network_key`]) captures exactly those coordinates:
//!
//! * `kind` is [`KIND_NETWORK`];
//! * `network` and `seed` are the cell's own;
//! * `repr` is the architecture's slice representation;
//! * the config hash fingerprints *everything else* that shapes the bytes:
//!   the full [`ArchSpec`] and the simulator's sample cap, tech node,
//!   external memory, and latency model (via their `Debug` forms, which
//!   print every field — a changed field changes the fingerprint, so a
//!   stale entry can never be served for a new configuration).
//!
//! Writes are best-effort: a failed `put` (disk full, permissions) bumps
//! the `store.put_errors` counter in the process registry and the freshly
//! computed result is returned anyway — persistence trouble must never
//! fail a simulation that already succeeded. Reads are paranoid: a stored
//! value that does not parse back into a [`NetworkResult`] is recomputed
//! and overwritten, never served.

use sibia_nn::Network;
use sibia_store::{Store, StoreKey};

use crate::cache::DecompCache;
use crate::jsonio::{network_result_from_json, network_result_to_json};
use crate::perf::{NetworkResult, Simulator};
use crate::spec::{ArchSpec, Repr};

/// Store-key kind for one simulated network result.
pub const KIND_NETWORK: &str = "sim.network";

/// The store-key label of a slice representation.
pub fn repr_label(repr: Repr) -> &'static str {
    match repr {
        Repr::Sbr => "sbr",
        Repr::Conventional => "conv",
    }
}

/// The configuration fingerprint of a `(simulator, architecture)` pair:
/// everything that shapes a result's bytes except the key's own
/// `(network, seed, repr)` coordinates. The simulator fields are
/// enumerated explicitly rather than taken from its `Debug` form, so that
/// knobs which provably do **not** change result bytes stay out of the
/// key. [`Simulator::tile`] is the deliberate example: the tile fold is
/// exact ([`crate::tile`]), so a tiled and an untiled run share store
/// entries — a sweep warmed at one tile size hits at every other.
pub fn config_fingerprint(sim: &Simulator, arch: &ArchSpec) -> String {
    format!(
        "arch={arch:?}|cap={}|tech={:?}|extmem={:?}|latency={:?}",
        sim.sample_cap, sim.tech, sim.extmem, sim.latency_model
    )
}

/// The store key of one network simulation.
pub fn network_key(sim: &Simulator, arch: &ArchSpec, network: &str) -> StoreKey {
    StoreKey::new(
        KIND_NETWORK,
        network,
        sim.seed,
        repr_label(arch.repr),
        &config_fingerprint(sim, arch),
    )
}

/// [`Simulator::simulate_network_cached`] with store read-through: a valid
/// stored result is returned without simulating; a miss (or an unparsable
/// stored value) simulates, writes back, and returns the fresh result.
/// Either way the value is bit-identical to a direct simulation.
pub fn simulate_network_stored(
    sim: &Simulator,
    arch: &ArchSpec,
    net: &Network,
    cache: &DecompCache,
    store: &Store,
) -> NetworkResult {
    let key = network_key(sim, arch, net.name());
    if let Some(stored) = store.get(&key) {
        if let Some(result) = network_result_from_json(&stored) {
            return result;
        }
        // Parsable JSON, wrong shape: fall through and overwrite.
    }
    let result = sim.simulate_network_cached(arch, net, None, cache);
    put_best_effort(store, &key, &result);
    result
}

/// The stored result for one `(sim, arch, network)` cell, if present and
/// parsable; never computes anything. The batched grid probes every
/// architecture of a row through this before deciding which cells still
/// need a decomposition, so a fully warm row touches no planes at all.
/// The serve daemon's `lookup` verb (protocol revision 5) is a thin
/// wrapper over this, which is why it is public: a peer's answer must be
/// exactly what the local read-through would have served.
/// An unparsable stored value reads as a miss, exactly as
/// [`simulate_network_stored`] treats it.
pub fn try_stored(
    sim: &Simulator,
    arch: &ArchSpec,
    net: &Network,
    store: &Store,
) -> Option<NetworkResult> {
    store
        .get(&network_key(sim, arch, net.name()))
        .and_then(|stored| network_result_from_json(&stored))
}

/// Writes a result back without letting persistence failures poison the
/// computation; failures count in the process registry. Public for the
/// serve daemon's peer warm-start path, which writes back results fetched
/// from a peer's store exactly as if it had computed them.
pub fn put_best_effort(store: &Store, key: &StoreKey, result: &NetworkResult) {
    if store.put(key, &network_result_to_json(result)).is_err() {
        sibia_obs::registry().counter("store.put_errors").add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sibia_nn::network::{DensityClass, TaskDomain};
    use sibia_nn::{Activation, Layer};
    use sibia_obs::Json;
    use std::path::PathBuf;

    fn temp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sibia-stored-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    fn tiny_net() -> Network {
        Network::new(
            "stored-net",
            TaskDomain::Vision2d,
            DensityClass::Dense,
            vec![Layer::conv2d("c1", 8, 8, 3, 1, 1, 8)
                .with_activation(Activation::Relu)
                .with_input_sparsity(0.4)],
        )
    }

    #[test]
    fn cold_miss_then_warm_hit_byte_identical() {
        let dir = temp_dir("warm");
        let sim = Simulator::new(3);
        let arch = ArchSpec::sibia_hybrid();
        let net = tiny_net();
        let cold_bytes;
        {
            let store = Store::open(&dir).unwrap();
            let cold = simulate_network_stored(&sim, &arch, &net, &DecompCache::new(), &store);
            cold_bytes = network_result_to_json(&cold).to_string();
            let stats = store.stats();
            assert_eq!((stats.hits, stats.misses, stats.puts), (0, 1, 1));
        }
        // A new process: the store is reopened from disk.
        let store = Store::open(&dir).unwrap();
        let warm = simulate_network_stored(&sim, &arch, &net, &DecompCache::new(), &store);
        assert_eq!(network_result_to_json(&warm).to_string(), cold_bytes);
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses, stats.puts), (1, 0, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn distinct_configs_do_not_share_entries() {
        let dir = temp_dir("configs");
        let store = Store::open(&dir).unwrap();
        let net = tiny_net();
        let cache = DecompCache::new();
        let sim = Simulator::new(3);
        let mut small = sim;
        small.sample_cap = 1024;
        simulate_network_stored(&sim, &ArchSpec::sibia_hybrid(), &net, &cache, &store);
        simulate_network_stored(&small, &ArchSpec::sibia_hybrid(), &net, &cache, &store);
        simulate_network_stored(&sim, &ArchSpec::bit_fusion(), &net, &cache, &store);
        // Three distinct configurations → three entries, no false hits.
        assert_eq!(store.entries(), 3);
        assert_eq!(store.stats().hits, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unparsable_stored_value_is_recomputed_and_overwritten() {
        let dir = temp_dir("garbage");
        let store = Store::open(&dir).unwrap();
        let sim = Simulator::new(3);
        let arch = ArchSpec::sibia_hybrid();
        let net = tiny_net();
        let key = network_key(&sim, &arch, net.name());
        store.put(&key, &Json::from("not a result")).unwrap();

        let result = simulate_network_stored(&sim, &arch, &net, &DecompCache::new(), &store);
        let direct = sim.simulate_network(&arch, &net);
        assert_eq!(result, direct);
        // The garbage was overwritten with the real result.
        assert_eq!(
            store.get(&key),
            Some(network_result_to_json(&direct)),
            "store should hold the recomputed value"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_covers_every_simulator_knob() {
        let arch = ArchSpec::sibia_hybrid();
        let base = Simulator::new(1);
        let fp = config_fingerprint(&base, &arch);
        let mut capped = base;
        capped.sample_cap = 99;
        assert_ne!(config_fingerprint(&capped, &arch), fp);
        let mut lat = base;
        lat.latency_model = crate::perf::LatencyModel::MemoryBound;
        assert_ne!(config_fingerprint(&lat, &arch), fp);
        // The seed is deliberately NOT in the fingerprint: it is a key
        // coordinate of its own.
        let mut seeded = base;
        seeded.seed = 999;
        assert_eq!(config_fingerprint(&seeded, &arch), fp);
    }

    #[test]
    fn tile_size_does_not_enter_the_store_key() {
        // The tile fold is exact, so tiled and untiled runs must share
        // store entries: a grid warmed layer-at-a-time hits when re-swept
        // with any --tile value, and vice versa.
        let arch = ArchSpec::sibia_hybrid();
        let base = Simulator::new(1);
        let mut tiled = base;
        tiled.tile = Some(7);
        assert_eq!(
            config_fingerprint(&tiled, &arch),
            config_fingerprint(&base, &arch)
        );

        let dir = temp_dir("tile-shared");
        let store = Store::open(&dir).unwrap();
        let net = tiny_net();
        let warm = simulate_network_stored(&base, &arch, &net, &DecompCache::new(), &store);
        // The tiled run must be a pure store hit with identical bytes.
        let hit = try_stored(&tiled, &arch, &net, &store).expect("tiled run hits untiled entry");
        assert_eq!(hit, warm);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
