//! Cycle/energy performance simulator.
//!
//! For each layer the simulator (1) synthesizes distribution-calibrated
//! operand tensors, (2) decomposes them into the architecture's slice
//! representation, (3) measures per-order non-zero fractions at the
//! architecture's skip granularity, (4) converts the layer's MAC count into
//! cycles per slice-order pass scaled by those fractions (this is exactly
//! what the zero-skipping PE does: one cycle per non-skipped sub-word
//! feeding 16 MACs), and (5) accounts external-memory transfer time and the
//! event counts the energy model consumes.
//!
//! Event-count ratios (RF/SRAM accesses per MAC) are calibrated to the
//! paper's Fig. 14 energy breakdown and documented at the constants below.

use std::fmt;
use std::sync::Arc;

use sibia_arch::dsm::{DsmUnit, SkipSide};
use sibia_arch::energy::{EnergyBreakdown, EnergyModel, EventCounts};
use sibia_arch::extmem::HyperRam;
use sibia_arch::tech::TechNode;
use sibia_compress::rle::SUBWORD_BITS;
use sibia_compress::CompressionMode;
use sibia_nn::{Layer, Network, Reduction, SynthSource};

use crate::cache::{DecompCache, LayerDecomp, LayerTensors, OperandStats, DMU_INDEX_BITS};
use crate::spec::{ArchSpec, Repr, SkipGranularity, SkipPolicy};

/// RF accesses per executed MAC (operand staging + accumulator traffic),
/// calibrated to Fig. 14's 13.4 % RF energy share.
const RF_PER_MAC_NUM: u64 = 4;
const RF_PER_MAC_DEN: u64 = 5;
/// Executed MACs per 16-bit SRAM access, calibrated to Fig. 14's 37.8 %
/// SRAM energy share (buffers are touched for every sub-word of every
/// reuse pass).
const MACS_PER_SRAM_ACCESS: u64 = 3;
/// SRAM accesses per NoC flit-hop (only a fraction of buffer traffic
/// crosses the top-level NoC).
const SRAM_PER_NOC_HOP: u64 = 2;
/// External-memory burst size in bytes.
const DRAM_BURST_BYTES: u64 = 1024;

/// Simulation result for one layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerResult {
    /// Layer name.
    pub name: String,
    /// Precision-level MAC count.
    pub macs: u64,
    /// Slice-order passes (`k_i × k_w`).
    pub slice_pairs: usize,
    /// PE-array compute cycles.
    pub compute_cycles: u64,
    /// External-memory transfer cycles (overlapped with compute).
    pub memory_cycles: u64,
    /// Layer latency cycles: `max(compute, memory)` (double buffering).
    pub cycles: u64,
    /// Hardware events for the energy model.
    pub events: EventCounts,
    /// The skip side the DSM chose.
    pub skip_side: SkipSide,
    /// Stored-size ratio of the input tensor vs its fixed-point baseline.
    pub input_compression_ratio: f64,
    /// Executed fraction of slice-level work (1 = dense).
    pub work_fraction: f64,
}

/// Simulation result for a whole network on one architecture.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkResult {
    /// Architecture name.
    pub arch: String,
    /// Network name.
    pub network: String,
    /// Core clock in MHz.
    pub frequency_mhz: u32,
    /// Per-layer results in execution order.
    pub layers: Vec<LayerResult>,
    /// Energy breakdown over the whole run.
    pub energy: EnergyBreakdown,
}

impl NetworkResult {
    /// Total latency cycles.
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.cycles).sum()
    }

    /// Total precision-level MACs.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.macs).sum()
    }

    /// Wall-clock inference time in seconds.
    pub fn time_s(&self) -> f64 {
        self.total_cycles() as f64 / (self.frequency_mhz as f64 * 1e6)
    }

    /// Effective throughput in GOPS (2 ops per MAC at DNN precision).
    pub fn throughput_gops(&self) -> f64 {
        2.0 * self.total_macs() as f64 / self.time_s() / 1e9
    }

    /// Total energy in mJ.
    pub fn energy_mj(&self) -> f64 {
        self.energy.total_mj()
    }

    /// Energy efficiency in TOPS/W.
    pub fn efficiency_tops_w(&self) -> f64 {
        2.0 * self.total_macs() as f64 / (self.energy.total_pj() * 1e-12) / 1e12
    }

    /// Average power in mW.
    pub fn power_mw(&self) -> f64 {
        self.energy.total_pj() * 1e-12 / self.time_s() * 1e3
    }

    /// Latency speedup of `self` over `baseline` on the same network.
    pub fn speedup_over(&self, baseline: &NetworkResult) -> f64 {
        baseline.total_cycles() as f64 / self.total_cycles() as f64
    }

    /// Energy-efficiency gain of `self` over `baseline`.
    pub fn efficiency_gain_over(&self, baseline: &NetworkResult) -> f64 {
        self.efficiency_tops_w() / baseline.efficiency_tops_w()
    }
}

impl fmt::Display for NetworkResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {}: {:.2} ms, {:.1} GOPS, {:.2} TOPS/W, {:.1} mW",
            self.arch,
            self.network,
            self.time_s() * 1e3,
            self.throughput_gops(),
            self.efficiency_tops_w(),
            self.power_mw()
        )
    }
}

/// How layer latency combines compute and external-memory time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LatencyModel {
    /// Latency = compute cycles; memory transfers are fully hidden.
    /// This matches the paper's methodology ("the evaluation results report
    /// the performance of the MAC-based DNN operations"): RTL cycle counts
    /// of the cores, with HyperRAM traffic entering the *energy* account
    /// (Fig. 14's 19.7 % DRAM share) but not the reported speedups.
    #[default]
    ComputeOnly,
    /// Latency = max(compute, memory) per layer (double buffering) — an
    /// honesty ablation showing where HyperRAM would actually bound the
    /// workload.
    MemoryBound,
}

/// The performance simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Simulator {
    /// RNG seed for the synthetic tensor source.
    pub seed: u64,
    /// Maximum elements sampled per tensor for sparsity statistics.
    pub sample_cap: usize,
    /// Technology node for the energy model.
    pub tech: TechNode,
    /// External memory model.
    pub extmem: HyperRam,
    /// Latency composition.
    pub latency_model: LatencyModel,
    /// Measurement granularity: `Some(n)` measures decompositions as a
    /// streaming fold over `n`-sub-word tiles through the content-keyed
    /// tile cache (see [`crate::tile`]); `None` (the default) measures
    /// whole planes at once. The fold's exactness contract makes every
    /// result **byte-identical** either way — this field changes memoization
    /// granularity and scheduling, never output, and is deliberately
    /// excluded from the store's configuration fingerprint.
    pub tile: Option<usize>,
}

impl Simulator {
    /// A simulator with the paper's 28 nm node and HyperRAM.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            sample_cap: 32_768,
            tech: TechNode::samsung_28nm(),
            extmem: HyperRam::cypress_64mbit(),
            latency_model: LatencyModel::ComputeOnly,
            tile: None,
        }
    }

    /// Simulates a whole network.
    pub fn simulate_network(&self, arch: &ArchSpec, net: &Network) -> NetworkResult {
        self.simulate_network_scaled(arch, net, None)
    }

    /// Simulates a network over several seeds and returns the mean and
    /// sample standard deviation of the total cycle count — the error bar
    /// of the synthetic-tensor methodology.
    ///
    /// The seeds fan out over the parallel worker pool
    /// ([`crate::parallel::ParallelEngine`]); per-layer RNG streams make the
    /// result bit-identical to a serial walk of the seeds.
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is empty.
    pub fn simulate_network_multi(
        &self,
        arch: &ArchSpec,
        net: &Network,
        seeds: &[u64],
    ) -> (f64, f64) {
        assert!(!seeds.is_empty(), "need at least one seed");
        let grid = crate::parallel::ParallelEngine::new().simulate_grid(
            self,
            std::slice::from_ref(arch),
            std::slice::from_ref(net),
            seeds,
        );
        let cycles: Vec<f64> = grid
            .cells()
            .iter()
            .map(|c| c.result.total_cycles() as f64)
            .collect();
        let mean = cycles.iter().sum::<f64>() / cycles.len() as f64;
        let var = cycles.iter().map(|c| (c - mean).powi(2)).sum::<f64>()
            / (cycles.len() as f64 - 1.0).max(1.0);
        (mean, var.sqrt())
    }

    /// Simulates a network with optional per-layer workload scales
    /// (used by output-skipping experiments where pruned outputs shrink
    /// downstream layers, e.g. transformer token pruning). A scale of 1.0
    /// leaves the layer unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `scales` is provided with a length different from the
    /// layer count.
    pub fn simulate_network_scaled(
        &self,
        arch: &ArchSpec,
        net: &Network,
        scales: Option<&[f64]>,
    ) -> NetworkResult {
        self.simulate_network_cached(arch, net, scales, &DecompCache::new())
    }

    /// [`Self::simulate_network_scaled`] against a shared decomposition
    /// cache. Sweeps that run one network through several architecture
    /// variants (fig10/fig11 run five) should share one cache: synthesis
    /// and decomposition are keyed by `(layer, seed, repr)` and therefore
    /// paid once per representation instead of once per variant. The result
    /// is bit-identical with and without the cache.
    ///
    /// # Panics
    ///
    /// Panics if `scales` is provided with a length different from the
    /// layer count.
    pub fn simulate_network_cached(
        &self,
        arch: &ArchSpec,
        net: &Network,
        scales: Option<&[f64]>,
        cache: &DecompCache,
    ) -> NetworkResult {
        self.simulate_network_with(arch, net, scales, |l, i| {
            self.decompose_layer(l, i, arch.repr, cache)
        })
    }

    /// Decomposes (or recalls) every layer of `net` under `repr` — the
    /// cache-resident working set a grid row shares across the architecture
    /// variants that use the same representation.
    pub fn decompose_network(
        &self,
        net: &Network,
        repr: Repr,
        cache: &DecompCache,
    ) -> Vec<Arc<LayerDecomp>> {
        net.layers()
            .iter()
            .enumerate()
            .map(|(i, l)| self.decompose_layer(l, i, repr, cache))
            .collect()
    }

    /// [`Self::simulate_network_cached`] from pre-computed per-layer
    /// decompositions (see [`Self::decompose_network`]): identical spans and
    /// result assembly, so the output is byte-identical to the cached path.
    /// The batched grid uses this to decompose a (network, seed) row once
    /// per representation and keep the planes' statistics cache-resident
    /// while every architecture in the row consumes them.
    ///
    /// # Panics
    ///
    /// Panics if `decomps` or `scales` length differs from the layer count.
    pub fn simulate_network_from_decomps(
        &self,
        arch: &ArchSpec,
        net: &Network,
        scales: Option<&[f64]>,
        decomps: &[Arc<LayerDecomp>],
    ) -> NetworkResult {
        assert_eq!(
            decomps.len(),
            net.layers().len(),
            "one decomposition per layer"
        );
        self.simulate_network_with(arch, net, scales, |_, i| Arc::clone(&decomps[i]))
    }

    /// The single simulation driver behind the cached and pre-decomposed
    /// entry points: `decomp_for` supplies each layer's decomposition.
    fn simulate_network_with(
        &self,
        arch: &ArchSpec,
        net: &Network,
        scales: Option<&[f64]>,
        mut decomp_for: impl FnMut(&Layer, usize) -> Arc<LayerDecomp>,
    ) -> NetworkResult {
        if let Some(s) = scales {
            assert_eq!(s.len(), net.layers().len(), "one scale per layer");
        }
        // Spans go to the process-wide tracer; with tracing disabled (the
        // default) each call is a single atomic load.
        let mut net_span = sibia_obs::tracer().span("sim.network");
        net_span.attr("arch", &arch.name);
        net_span.attr("network", net.name());
        net_span.attr("seed", self.seed);
        let layers: Vec<LayerResult> = net
            .layers()
            .iter()
            .enumerate()
            .map(|(i, l)| {
                let mut span = sibia_obs::tracer().span("sim.layer");
                span.attr("layer", l.name());
                let scale = scales.map_or(1.0, |s| s[i]);
                let decomp = decomp_for(l, i);
                let result = self.simulate_layer_from(arch, l, &decomp, scale);
                span.attr("cycles", result.cycles);
                span.attr("skip_side", format!("{:?}", result.skip_side));
                result
            })
            .collect();
        let counts: EventCounts = layers.iter().map(|l| l.events).sum();
        let energy = EnergyModel::new(self.tech, arch.core.mac_kind).energy(&counts);
        NetworkResult {
            arch: arch.name.clone(),
            network: net.name().to_owned(),
            frequency_mhz: arch.core.frequency_mhz,
            layers,
            energy,
        }
    }

    /// Synthesizes (or recalls) the operand tensors of one layer. The RNG
    /// stream is derived from `(self.seed, layer_index)`, so the result
    /// does not depend on which other layers have been synthesized.
    pub fn synthesize_layer(
        &self,
        layer: &Layer,
        layer_index: usize,
        cache: &DecompCache,
    ) -> Arc<LayerTensors> {
        cache.tensors(layer, self.seed, layer_index, self.sample_cap, || {
            let mut src = SynthSource::for_layer(self.seed, layer_index);
            let inputs = src.activations(layer, self.sample_cap);
            let weights = src.weights(layer, self.sample_cap);
            LayerTensors {
                input_codes: inputs.codes().data().to_vec(),
                weight_codes: weights.codes().data().to_vec(),
            }
        })
    }

    /// Measures (or recalls) the slice-decomposition statistics of one
    /// layer under `repr`.
    pub fn decompose_layer(
        &self,
        layer: &Layer,
        layer_index: usize,
        repr: Repr,
        cache: &DecompCache,
    ) -> Arc<LayerDecomp> {
        cache.decomp(layer, self.seed, layer_index, self.sample_cap, repr, || {
            let tensors = self.synthesize_layer(layer, layer_index, cache);
            let (ki, kw) = match repr {
                Repr::Sbr => (
                    layer.input_precision().sbr_slices(),
                    layer.weight_precision().sbr_slices(),
                ),
                Repr::Conventional => (
                    layer.input_precision().conv_slices(),
                    layer.weight_precision().conv_slices(),
                ),
            };
            // Tile-grain measurement folds to byte-identical stats, so the
            // cache key deliberately ignores `self.tile`: both paths may
            // share one entry.
            let measure = |codes: &[i32], precision: sibia_sbr::Precision| match self.tile {
                Some(subwords) => {
                    let config = crate::tile::TileConfig::new(subwords)
                        .expect("tile size validated at configuration time");
                    OperandStats::measure_tiled(codes, precision, repr, config, cache)
                }
                None => OperandStats::measure(codes, precision, repr),
            };
            LayerDecomp {
                ki,
                kw,
                input: measure(&tensors.input_codes, layer.input_precision()),
                weight: measure(&tensors.weight_codes, layer.weight_precision()),
            }
        })
    }

    /// Non-zero fraction per slice order at the architecture's skip
    /// granularity, derived from cached integer counts with exactly the
    /// divisions the direct scalar measurement performs.
    fn nz_fractions(op: &OperandStats, granularity: SkipGranularity) -> Vec<f64> {
        match granularity {
            SkipGranularity::Slice => op
                .planes
                .iter()
                .map(|p| 1.0 - p.zero_slices as f64 / p.len.max(1) as f64)
                .collect(),
            SkipGranularity::SubWord => op
                .planes
                .iter()
                .map(|p| 1.0 - p.zero_subword_fraction())
                .collect(),
            SkipGranularity::ValueSubword => {
                // A group is skippable only when all four *values* are
                // zero; every slice order sees the same fraction.
                let total = op.value_groups.max(1);
                vec![1.0 - op.zero_value_groups as f64 / total as f64; op.planes.len()]
            }
        }
    }

    /// Simulates one layer from its decomposition statistics.
    /// `workload_scale` multiplies the layer's MAC workload (1.0 =
    /// unscaled).
    ///
    /// # Panics
    ///
    /// Panics if `workload_scale` is not positive.
    pub fn simulate_layer_from(
        &self,
        arch: &ArchSpec,
        layer: &Layer,
        decomp: &LayerDecomp,
        workload_scale: f64,
    ) -> LayerResult {
        assert!(workload_scale > 0.0, "workload scale must be positive");
        let (ki, kw) = (decomp.ki, decomp.kw);
        let nz_input = Self::nz_fractions(&decomp.input, arch.granularity);
        let nz_weight = Self::nz_fractions(&decomp.weight, arch.granularity);

        // Skip-side decision.
        let skip_side = match arch.policy {
            SkipPolicy::None => SkipSide::None,
            SkipPolicy::InputOnly => SkipSide::Input,
            SkipPolicy::Hybrid => {
                DsmUnit::new()
                    .decide_from_sparsity(
                        decomp.input.subword_sparsity(),
                        decomp.weight.subword_sparsity(),
                    )
                    .side
            }
        };

        // Output speculation (max-pool / softmax reduction layers): the
        // non-pre-computed passes of insensitive outputs are skipped.
        let (pre_kept, output_skip_fraction) =
            match (arch.output_skip_candidates, layer.reduction()) {
                (Some(c), Some(Reduction::MaxPool { group })) => {
                    let c = c.min(group);
                    // Very large pools pre-compute I_H×W_H only; smaller
                    // pools need I_H×W_H + I_L×W_H for stable ranking
                    // (§III-F: VoteNet 64-to-1 vs DGCNN 40-to-1 / 16-to-1).
                    let kept = if group > 40 { (1, 1) } else { (ki, 1) };
                    (kept, (group - c) as f64 / group as f64)
                }
                (Some(c), Some(Reduction::Softmax { row_len })) => {
                    let c = c.min(row_len);
                    // Most attention rows are peaked enough to speculate on;
                    // the rest complete at full precision.
                    const DOMINANT_ROWS: f64 = 0.9;
                    (
                        (1, 1),
                        DOMINANT_ROWS * (row_len - c) as f64 / row_len as f64,
                    )
                }
                _ => ((0, 0), 0.0),
            };

        // Cycle accounting per slice-order pass.
        let slice_macs = (layer.macs() as f64 * workload_scale).max(1.0);
        let macs_per_cycle = (arch.core.total_macs() as f64 * arch.utilization).max(1.0);
        let mut compute_cycles = 0f64;
        let mut executed_macs = 0f64;
        #[allow(clippy::needless_range_loop)] // oi/ow are slice orders indexing several arrays
        for oi in 0..ki {
            #[allow(clippy::needless_range_loop)]
            for ow in 0..kw {
                // Hybrid skipping picks the sparser operand per slice-order
                // pass (§II-E): I_H×W_* passes skip the sparse input highs,
                // while dense-I_L passes fall back to weight skipping. The
                // Bi-NoC swaps the IBUF/WBUF roles between passes.
                //
                // Output speculation encodes insensitive outputs as zeroed
                // *input* slices (§II-D), so on a speculating layer the data
                // path is committed to input skipping and cannot combine
                // with weight skipping.
                let speculating = output_skip_fraction > 0.0;
                let mut factor = match (arch.policy, skip_side) {
                    _ if speculating => nz_input[oi],
                    (SkipPolicy::Hybrid, s) if s != SkipSide::None => {
                        nz_input[oi].min(nz_weight[ow])
                    }
                    (_, SkipSide::Input) => nz_input[oi],
                    (_, SkipSide::Weight) => nz_weight[ow],
                    (_, SkipSide::None) => 1.0,
                };
                let is_pre =
                    oi >= ki.saturating_sub(pre_kept.0) && ow >= kw.saturating_sub(pre_kept.1);
                if speculating && !is_pre {
                    factor *= 1.0 - output_skip_fraction;
                }
                compute_cycles += slice_macs * factor / macs_per_cycle;
                executed_macs += slice_macs * factor;
            }
        }
        let compute_cycles = compute_cycles.ceil() as u64;

        // External-memory traffic: compressed inputs/weights, raw outputs.
        let input_bits = (Self::stored_bits(&decomp.input, layer.kind().input_len(), arch) as f64
            * layer.dram_input_fraction()) as u64;
        let weight_bits = Self::stored_bits(&decomp.weight, layer.kind().weight_len(), arch);
        let output_bits =
            layer.kind().output_len() as u64 * u64::from(layer.input_precision().bits());
        let dram_bits = input_bits + weight_bits + output_bits;
        let memory_cycles = self.extmem.transfer_cycles(
            dram_bits.div_ceil(8),
            DRAM_BURST_BYTES,
            arch.core.frequency_mhz,
        );

        let cycles = match self.latency_model {
            LatencyModel::ComputeOnly => compute_cycles,
            LatencyModel::MemoryBound => compute_cycles.max(memory_cycles),
        };
        let mac_ops = executed_macs as u64;
        // IDXBUF traffic: one index access per fetched non-zero sub-word of
        // the skipped operand. HNPU pays this whenever skipping is on; the
        // Sibia DSM disables it on dense layers (SkipSide::None).
        let idx_accesses = if skip_side == SkipSide::None {
            0
        } else {
            mac_ops / 16
        };
        let events = EventCounts {
            mac_ops,
            rf_accesses: mac_ops * RF_PER_MAC_NUM / RF_PER_MAC_DEN,
            sram_accesses: mac_ops / MACS_PER_SRAM_ACCESS
                + layer.kind().output_len() as u64
                + idx_accesses,
            noc_flit_hops: mac_ops / MACS_PER_SRAM_ACCESS / SRAM_PER_NOC_HOP,
            dram_bits,
            cycles,
        };
        let baseline_input_bits =
            layer.kind().input_len() as u64 * u64::from(layer.input_precision().bits());
        LayerResult {
            name: layer.name().to_owned(),
            macs: (layer.macs() as f64 * workload_scale) as u64,
            slice_pairs: ki * kw,
            compute_cycles,
            memory_cycles,
            cycles,
            events,
            skip_side,
            input_compression_ratio: baseline_input_bits as f64 / input_bits.max(1) as f64,
            work_fraction: executed_macs / (slice_macs * (ki * kw) as f64),
        }
    }

    /// Stored size in bits of a tensor under the architecture's compression
    /// mode, extrapolated from the sampled planes to the full tensor. The
    /// RLE sizes come from the cached entry counts, which are bit-exact
    /// with `RleCodec::default().compress(..).size_bits()`.
    fn stored_bits(op: &OperandStats, full_len: usize, arch: &ArchSpec) -> u64 {
        let entry_bits = SUBWORD_BITS + usize::from(DMU_INDEX_BITS);
        let mut bits = 0f64;
        for plane in &op.planes {
            let raw = plane.subwords * SUBWORD_BITS;
            let rle = plane.rle_entries * entry_bits;
            let stored = match arch.compression {
                CompressionMode::None => raw,
                CompressionMode::Rle => rle,
                CompressionMode::Hybrid => rle.min(raw),
            };
            bits += stored as f64;
        }
        let scale = full_len as f64 / op.sampled.max(1) as f64;
        (bits * scale).ceil() as u64
    }
}

impl Default for Simulator {
    fn default() -> Self {
        Self::new(0xA11CE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sibia_nn::zoo;

    fn small_net() -> Network {
        use sibia_nn::network::{DensityClass, TaskDomain};
        use sibia_nn::Activation;
        Network::new(
            "tiny-elu",
            TaskDomain::Vision2d,
            DensityClass::Dense,
            vec![
                Layer::conv2d("c1", 16, 32, 3, 1, 1, 16)
                    .with_activation(Activation::ELU_1)
                    .with_input_sparsity(0.2),
                Layer::conv2d("c2", 32, 32, 3, 1, 1, 16)
                    .with_activation(Activation::ELU_1)
                    .with_input_sparsity(0.2),
            ],
        )
    }

    #[test]
    fn sibia_beats_hnpu_beats_bitfusion_on_dense_net() {
        let sim = Simulator::new(7);
        let net = small_net();
        let bf = sim.simulate_network(&ArchSpec::bit_fusion(), &net);
        let hnpu = sim.simulate_network(&ArchSpec::hnpu(), &net);
        let sibia = sim.simulate_network(&ArchSpec::sibia_hybrid(), &net);
        let s_hnpu = hnpu.speedup_over(&bf);
        let s_sibia = sibia.speedup_over(&bf);
        assert!(s_hnpu > 1.0, "hnpu {s_hnpu}");
        assert!(s_sibia > s_hnpu, "sibia {s_sibia} vs hnpu {s_hnpu}");
        // Dense (ELU) data: HNPU gains little, Sibia gains a lot.
        assert!(
            s_hnpu < 2.2,
            "hnpu should gain little on dense data: {s_hnpu}"
        );
        assert!(s_sibia > 1.8, "sibia {s_sibia}");
    }

    #[test]
    fn sibia_efficiency_beats_baselines() {
        let sim = Simulator::new(7);
        let net = small_net();
        let bf = sim.simulate_network(&ArchSpec::bit_fusion(), &net);
        let sibia = sim.simulate_network(&ArchSpec::sibia_hybrid(), &net);
        assert!(sibia.efficiency_gain_over(&bf) > 1.5);
    }

    #[test]
    fn hybrid_never_slower_than_input_skip() {
        let sim = Simulator::new(9);
        for net in [small_net(), zoo::alexnet()] {
            let input = sim.simulate_network(&ArchSpec::sibia_input_skip(), &net);
            let hybrid = sim.simulate_network(&ArchSpec::sibia_hybrid(), &net);
            // The DSM picks the better side, so hybrid ≥ input-skip within
            // sampling noise.
            assert!(
                hybrid.total_cycles() as f64 <= input.total_cycles() as f64 * 1.02,
                "{}: hybrid {} input {}",
                net.name(),
                hybrid.total_cycles(),
                input.total_cycles()
            );
        }
    }

    #[test]
    fn output_skipping_accelerates_pooling_networks() {
        let sim = Simulator::new(11);
        let net = zoo::dgcnn();
        let hybrid = sim.simulate_network(&ArchSpec::sibia_hybrid(), &net);
        let out4 = sim.simulate_network(&ArchSpec::sibia_output_skip(4), &net);
        let out16 = sim.simulate_network(&ArchSpec::sibia_output_skip(16), &net);
        assert!(out4.total_cycles() < hybrid.total_cycles());
        assert!(out4.total_cycles() <= out16.total_cycles());
    }

    #[test]
    fn workload_scales_shrink_layers() {
        let sim = Simulator::new(13);
        let net = small_net();
        let full = sim.simulate_network(&ArchSpec::bit_fusion(), &net);
        let scaled = sim.simulate_network_scaled(&ArchSpec::bit_fusion(), &net, Some(&[1.0, 0.25]));
        assert!(scaled.total_cycles() < full.total_cycles());
        assert_eq!(scaled.layers[1].macs, full.layers[1].macs / 4);
    }

    #[test]
    fn utilization_ablation_slows_the_core() {
        let sim = Simulator::new(17);
        let net = small_net();
        let latched = sim.simulate_network(&ArchSpec::sibia_hybrid(), &net);
        let unlatched = sim.simulate_network(&ArchSpec::sibia_no_latching(), &net);
        assert!(unlatched.total_cycles() > latched.total_cycles());
    }

    #[test]
    fn compression_reduces_dram_bits() {
        let sim = Simulator::new(19);
        let net = small_net();
        let none = sim.simulate_network(&ArchSpec::bit_fusion(), &net);
        let hybrid = sim.simulate_network(&ArchSpec::sibia_hybrid(), &net);
        let dn: u64 = none.layers.iter().map(|l| l.events.dram_bits).sum();
        let dh: u64 = hybrid.layers.iter().map(|l| l.events.dram_bits).sum();
        assert!(dh < dn);
    }

    #[test]
    fn energy_breakdown_shape_matches_fig14() {
        // On a realistic conv workload, SRAM should carry a large share of
        // energy with DRAM a significant minority — the Fig. 14 shape.
        // (AlexNet would be FC-weight-DRAM-dominated; the paper's breakdown
        // is over its conv-heavy benchmark mix, so ResNet-18 is the
        // representative pick.)
        let sim = Simulator::new(23);
        let net = zoo::resnet18();
        let r = sim.simulate_network(&ArchSpec::sibia_hybrid(), &net);
        let (mac, rf, sram, _noc, dram, _ctl) = r.energy.fractions();
        assert!(sram > 0.2, "sram {sram}");
        assert!(mac > 0.1, "mac {mac}");
        assert!(rf > 0.04, "rf {rf}");
        assert!(dram > 0.02 && dram < 0.55, "dram {dram}");
    }

    #[test]
    fn multi_seed_variance_is_small() {
        // The synthetic methodology is stable across seeds: the cycle-count
        // coefficient of variation stays within a few percent.
        let sim = Simulator::new(0);
        let net = small_net();
        let (mean, std) =
            sim.simulate_network_multi(&ArchSpec::sibia_hybrid(), &net, &[1, 2, 3, 4, 5]);
        assert!(mean > 0.0);
        // The tiny two-layer test net is the worst case; real benchmarks
        // average over many layers and land well below this.
        assert!(std / mean < 0.15, "cv = {}", std / mean);
    }

    #[test]
    fn throughput_is_positive_and_bounded() {
        let sim = Simulator::new(29);
        let net = small_net();
        let r = sim.simulate_network(&ArchSpec::sibia_hybrid(), &net);
        // Effective GOPS can exceed the per-pass rate thanks to skipping but
        // never the raw slice peak.
        assert!(r.throughput_gops() < 768.0 * 2.0);
        assert!(r.throughput_gops() > 10.0);
    }
}
