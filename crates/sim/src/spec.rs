//! Architecture specifications for the performance simulator.

use std::fmt;

use sibia_arch::config::CoreConfig;
use sibia_compress::CompressionMode;

/// Which slice representation the datapath consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Repr {
    /// The paper's signed bit-slice representation.
    Sbr,
    /// Conventional radix-16 container slices (Bit-fusion, HNPU, and the
    /// "Sibia w/o SBR" ablation).
    Conventional,
}

/// Granularity at which zero operands are skipped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SkipGranularity {
    /// Individual 4-bit slices (idealized fine-grained units — an upper
    /// bound used for ablations).
    Slice,
    /// 16-bit sub-words of four adjacent same-order slices (Sibia's cheap
    /// units): a group is skipped when all four *slices* are zero, so a
    /// sparse high-order plane is skippable even when the low plane is not.
    SubWord,
    /// Groups of four adjacent *values*: skippable only when the whole
    /// values are zero. This models HNPU's grouped zero-skipping, whose
    /// measured gains track full-value sparsity (paper Fig. 10/11: ~1.2× on
    /// Albert's 11.9 %, ~2× on ResNet's 53.1 %) rather than per-plane slice
    /// sparsity.
    ValueSubword,
}

/// The skipping policy of a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SkipPolicy {
    /// No sparsity exploitation (Bit-fusion).
    None,
    /// Skip zero *input* slices only (HNPU, and Sibia's input-skipping
    /// mode).
    InputOnly,
    /// The DSM picks the more sparse operand per layer (Sibia hybrid
    /// skipping).
    Hybrid,
}

/// A fully-specified architecture to simulate.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchSpec {
    /// Display name (used in figure legends).
    pub name: String,
    /// The core's size/frequency/MAC configuration.
    pub core: CoreConfig,
    /// Slice representation.
    pub repr: Repr,
    /// Skip granularity.
    pub granularity: SkipGranularity,
    /// Skipping policy.
    pub policy: SkipPolicy,
    /// Whether output speculation (max-pool / softmax skipping) is enabled;
    /// the candidate count per pooling window.
    pub output_skip_candidates: Option<usize>,
    /// How tensors are stored in / fetched from external memory.
    pub compression: CompressionMode,
    /// PE-array utilization under skipping-induced load imbalance.
    /// Sibia's accumulation-unit latching keeps columns busy (0.92); HNPU's
    /// per-slice units suffer more imbalance (0.85); dense execution with
    /// Bit-fusion's dynamic composition overhead reaches 0.75 of raw peak.
    pub utilization: f64,
}

impl ArchSpec {
    /// The revised Bit-fusion baseline: conventional slices, no skipping,
    /// no compression.
    pub fn bit_fusion() -> Self {
        Self {
            name: "Bit-fusion".to_owned(),
            core: CoreConfig::bit_fusion(),
            repr: Repr::Conventional,
            granularity: SkipGranularity::Slice,
            policy: SkipPolicy::None,
            output_skip_candidates: None,
            compression: CompressionMode::None,
            utilization: 0.75,
        }
    }

    /// The revised HNPU baseline: conventional slices, zero input skipping
    /// at value-group granularity, RLE compression. HNPU's lanes share skip
    /// decisions across adjacent data and its conventional decomposition
    /// only zeroes whole values (plus positive near-zero high slices its
    /// grouping rarely aligns), which is what limits its dense-DNN speedup
    /// to the ~1.1–1.6× the paper measures (Fig. 10).
    pub fn hnpu() -> Self {
        Self {
            name: "HNPU".to_owned(),
            core: CoreConfig::hnpu(),
            repr: Repr::Conventional,
            granularity: SkipGranularity::ValueSubword,
            policy: SkipPolicy::InputOnly,
            output_skip_candidates: None,
            compression: CompressionMode::Rle,
            utilization: 0.85,
        }
    }

    /// Sibia hardware running conventional slices — the "Sibia w/o SBR"
    /// ablation of Fig. 10/11 (hybrid skipping still works).
    pub fn sibia_no_sbr() -> Self {
        Self {
            name: "Sibia w/o SBR".to_owned(),
            repr: Repr::Conventional,
            ..Self::sibia_hybrid()
        }
    }

    /// Sibia with the SBR, input skipping only.
    pub fn sibia_input_skip() -> Self {
        Self {
            name: "Sibia (input skip)".to_owned(),
            policy: SkipPolicy::InputOnly,
            ..Self::sibia_hybrid()
        }
    }

    /// Sibia with the SBR and DSM-driven hybrid skipping — the headline
    /// configuration.
    pub fn sibia_hybrid() -> Self {
        Self {
            name: "Sibia (hybrid)".to_owned(),
            core: CoreConfig::sibia(),
            repr: Repr::Sbr,
            granularity: SkipGranularity::SubWord,
            policy: SkipPolicy::Hybrid,
            output_skip_candidates: None,
            compression: CompressionMode::Hybrid,
            utilization: 0.92,
        }
    }

    /// Sibia with hybrid skipping plus output speculation with `candidates`
    /// maximal candidates per pooling window.
    pub fn sibia_output_skip(candidates: usize) -> Self {
        Self {
            name: format!("Sibia (output skip, {candidates} cand)"),
            output_skip_candidates: Some(candidates),
            ..Self::sibia_hybrid()
        }
    }

    /// The ablation of Sibia without accumulation-unit output latching:
    /// early-finishing columns idle until the slowest finishes.
    pub fn sibia_no_latching() -> Self {
        Self {
            name: "Sibia w/o column latching".to_owned(),
            utilization: 0.75,
            ..Self::sibia_hybrid()
        }
    }
}

impl fmt::Display for ArchSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_have_expected_policies() {
        assert_eq!(ArchSpec::bit_fusion().policy, SkipPolicy::None);
        assert_eq!(ArchSpec::hnpu().policy, SkipPolicy::InputOnly);
        assert_eq!(ArchSpec::hnpu().granularity, SkipGranularity::ValueSubword);
        assert_eq!(ArchSpec::sibia_hybrid().policy, SkipPolicy::Hybrid);
        assert_eq!(ArchSpec::sibia_no_sbr().repr, Repr::Conventional);
        assert_eq!(
            ArchSpec::sibia_output_skip(4).output_skip_candidates,
            Some(4)
        );
    }

    #[test]
    fn all_cores_have_equal_mac_counts() {
        // Table I's fairness requirement.
        let n = ArchSpec::sibia_hybrid().core.total_macs();
        assert_eq!(ArchSpec::bit_fusion().core.total_macs(), n);
        assert_eq!(ArchSpec::hnpu().core.total_macs(), n);
    }
}
