//! Bit-exact functional model of the flexible zero-skipping PE
//! (paper §II-C/D, Fig. 7/8).
//!
//! One PE column processes, per cycle, one input channel's *sub-word* (four
//! spatially adjacent 4-bit slices): each slice feeds a row of the signed
//! MAC array and is shared across four MAC units producing four output
//! channels — 16 MACs per cycle, skipped entirely when the sub-word is zero.
//! Slice-order passes are accumulated in narrow per-MAC registers and
//! recombined by shift-add in the accumulation unit.
//!
//! The model asserts the paper's datapath widths on every operation:
//! 7-bit products and 12-bit accumulators for signed slices, and the wider
//! 10-bit/18-bit datapath conventional slices force.

use sibia_arch::dsm::SkipSide;
use sibia_sbr::{ConvSlices, Precision, SbrSlices};
use sibia_tensor::{Shape, Tensor};

use crate::spec::Repr;

/// Spatial positions (MAC rows) per PE column.
pub const SPATIAL: usize = 4;
/// Output channels (MAC columns) per PE column.
pub const OUT_CH: usize = 4;

/// Result of running one PE tile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeRun {
    /// Outputs `[spatial][out_ch]`.
    pub outputs: [[i64; OUT_CH]; SPATIAL],
    /// Cycles consumed (non-skipped sub-words over all slice-order passes).
    pub cycles: u64,
    /// Cycles a dense (no-skipping) execution would take.
    pub baseline_cycles: u64,
    /// Executed MAC operations.
    pub mac_ops: u64,
    /// Sub-words skipped by the zero-skipping unit.
    pub skipped_subwords: u64,
}

impl PeRun {
    /// Speedup of skipping over dense execution of the same tile.
    pub fn speedup(&self) -> f64 {
        self.baseline_cycles as f64 / self.cycles.max(1) as f64
    }
}

/// The functional PE simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeSim {
    /// Input activation precision.
    pub input_precision: Precision,
    /// Weight precision.
    pub weight_precision: Precision,
    /// Slice representation (signed or conventional).
    pub repr: Repr,
    /// Which operand's zero sub-words are skipped.
    pub skip: SkipSide,
    /// Channels accumulated in the narrow per-MAC register before a
    /// shift-add flush into the wide partial sum.
    pub flush_interval: usize,
    /// Output-skipping mask: `true` marks an insensitive output channel
    /// whose non-pre-computed passes are skipped.
    pub output_mask: [bool; OUT_CH],
    /// High slice orders pre-computed for masked outputs
    /// `(input_kept, weight_kept)`.
    pub pre_kept: (usize, usize),
}

impl PeSim {
    /// A signed-bit-slice PE with input skipping at the given precisions.
    pub fn new(input_precision: Precision, weight_precision: Precision) -> Self {
        Self {
            input_precision,
            weight_precision,
            repr: Repr::Sbr,
            skip: SkipSide::Input,
            flush_interval: 32,
            output_mask: [false; OUT_CH],
            pre_kept: (1, 1),
        }
    }

    fn slice_counts(&self) -> (usize, usize) {
        match self.repr {
            Repr::Sbr => (
                self.input_precision.sbr_slices(),
                self.weight_precision.sbr_slices(),
            ),
            Repr::Conventional => (
                self.input_precision.conv_slices(),
                self.weight_precision.conv_slices(),
            ),
        }
    }

    fn digits(&self, v: i32, p: Precision) -> Vec<i8> {
        match self.repr {
            Repr::Sbr => SbrSlices::encode(v, p).digits().to_vec(),
            Repr::Conventional => ConvSlices::encode(v, p).digits().to_vec(),
        }
    }

    fn radix_shift(&self) -> u32 {
        match self.repr {
            Repr::Sbr => 3,
            Repr::Conventional => 4,
        }
    }

    fn acc_limit(&self) -> i64 {
        match self.repr {
            // 12-bit signed accumulator (paper §II-D).
            Repr::Sbr => 1 << 11,
            // The sign-extended datapath needs an 18-bit accumulator.
            Repr::Conventional => 1 << 17,
        }
    }

    fn product_limit(&self) -> i64 {
        match self.repr {
            // 7-bit product: SBR digits are in [-7, 7].
            Repr::Sbr => 1 << 6,
            // Conventional slices reach 15×15 = 225: a 9-bit product.
            Repr::Conventional => 1 << 8,
        }
    }

    /// Runs one tile: `x[c][s]` are four spatially adjacent inputs of
    /// channel `c`, `w[c][o]` the weights of channel `c` for four output
    /// channels. Returns the 4×4 outputs and the cycle/MAC trace.
    ///
    /// # Panics
    ///
    /// Panics if `x` and `w` have different channel counts, any value is
    /// out of range, or a datapath width is exceeded (which would indicate
    /// a broken tile schedule, not bad data).
    pub fn run_tile(&self, x: &[[i32; SPATIAL]], w: &[[i32; OUT_CH]]) -> PeRun {
        assert_eq!(x.len(), w.len(), "channel counts must match");
        let channels = x.len();
        let (ki, kw) = self.slice_counts();
        // Pre-decompose operands into digit planes.
        let xd: Vec<[Vec<i8>; SPATIAL]> = x
            .iter()
            .map(|ch| std::array::from_fn(|s| self.digits(ch[s], self.input_precision)))
            .collect();
        let wd: Vec<[Vec<i8>; OUT_CH]> = w
            .iter()
            .map(|ch| std::array::from_fn(|o| self.digits(ch[o], self.weight_precision)))
            .collect();

        let mut psum = [[0i64; OUT_CH]; SPATIAL];
        let mut cycles = 0u64;
        let mut mac_ops = 0u64;
        let mut skipped = 0u64;
        #[allow(clippy::needless_range_loop)] // oi/ow are slice orders indexing several arrays
        for oi in 0..ki {
            #[allow(clippy::needless_range_loop)]
            for ow in 0..kw {
                let is_pre = oi >= ki.saturating_sub(self.pre_kept.0)
                    && ow >= kw.saturating_sub(self.pre_kept.1);
                let shift = self.radix_shift() * (oi + ow) as u32;
                let mut acc = [[0i64; OUT_CH]; SPATIAL];
                for c in 0..channels {
                    // The zero-skipping unit inspects the skipped operand's
                    // sub-word.
                    let skippable = match self.skip {
                        SkipSide::Input => (0..SPATIAL).all(|s| xd[c][s][oi] == 0),
                        SkipSide::Weight => (0..OUT_CH).all(|o| wd[c][o][ow] == 0),
                        SkipSide::None => false,
                    };
                    if skippable {
                        skipped += 1;
                        continue;
                    }
                    cycles += 1;
                    for s in 0..SPATIAL {
                        for o in 0..OUT_CH {
                            if self.output_mask[o] && !is_pre {
                                continue; // insensitive output: low orders skipped
                            }
                            let p = i64::from(xd[c][s][oi]) * i64::from(wd[c][o][ow]);
                            assert!(
                                p.abs() < self.product_limit(),
                                "product width exceeded: {p}"
                            );
                            acc[s][o] += p;
                            assert!(
                                acc[s][o].abs() < self.acc_limit(),
                                "accumulator width exceeded: {}",
                                acc[s][o]
                            );
                            mac_ops += 1;
                        }
                    }
                    // Flush the narrow accumulator on tile boundaries.
                    if (c + 1) % self.flush_interval == 0 {
                        for s in 0..SPATIAL {
                            for o in 0..OUT_CH {
                                psum[s][o] += acc[s][o] << shift;
                                acc[s][o] = 0;
                            }
                        }
                    }
                }
                for s in 0..SPATIAL {
                    for o in 0..OUT_CH {
                        psum[s][o] += acc[s][o] << shift;
                    }
                }
            }
        }
        PeRun {
            outputs: psum,
            cycles,
            baseline_cycles: (channels * ki * kw) as u64,
            mac_ops,
            skipped_subwords: skipped,
        }
    }
}

/// Runs a whole `[M×K]·[K×N]` matmul through PE tiles (4 spatial × 4 output
/// channels each), with zero-padding of partial tiles.
///
/// # Panics
///
/// Panics on shape mismatches or out-of-range values.
pub fn matmul_via_pe(sim: &PeSim, a: &Tensor<i32>, b: &Tensor<i32>) -> (Tensor<i64>, PeRun) {
    assert_eq!(a.shape().rank(), 2, "lhs must be rank 2");
    assert_eq!(b.shape().rank(), 2, "rhs must be rank 2");
    let (m, k) = (a.shape().dim(0), a.shape().dim(1));
    let (k2, n) = (b.shape().dim(0), b.shape().dim(1));
    assert_eq!(k, k2, "inner dimensions must match");
    let mut out = vec![0i64; m * n];
    let mut total = PeRun {
        outputs: [[0; OUT_CH]; SPATIAL],
        cycles: 0,
        baseline_cycles: 0,
        mac_ops: 0,
        skipped_subwords: 0,
    };
    for m0 in (0..m).step_by(SPATIAL) {
        for n0 in (0..n).step_by(OUT_CH) {
            let x: Vec<[i32; SPATIAL]> = (0..k)
                .map(|c| {
                    std::array::from_fn(|s| {
                        if m0 + s < m {
                            a.data()[(m0 + s) * k + c]
                        } else {
                            0
                        }
                    })
                })
                .collect();
            let w: Vec<[i32; OUT_CH]> = (0..k)
                .map(|c| {
                    std::array::from_fn(|o| {
                        if n0 + o < n {
                            b.data()[c * n + n0 + o]
                        } else {
                            0
                        }
                    })
                })
                .collect();
            let run = sim.run_tile(&x, &w);
            for s in 0..SPATIAL.min(m - m0) {
                for o in 0..OUT_CH.min(n - n0) {
                    out[(m0 + s) * n + n0 + o] = run.outputs[s][o];
                }
            }
            total.cycles += run.cycles;
            total.baseline_cycles += run.baseline_cycles;
            total.mac_ops += run.mac_ops;
            total.skipped_subwords += run.skipped_subwords;
        }
    }
    (Tensor::from_vec(out, Shape::new(&[m, n])), total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sibia_tensor::ops;

    fn tensor(m: usize, n: usize, f: impl Fn(usize) -> i32) -> Tensor<i32> {
        Tensor::from_vec((0..m * n).map(f).collect(), Shape::new(&[m, n]))
    }

    #[test]
    fn pe_matches_reference_matmul_7bit() {
        let a = tensor(8, 24, |i| ((i * 37 + 5) % 127) as i32 - 63);
        let b = tensor(24, 8, |i| ((i * 53 + 11) % 127) as i32 - 63);
        let sim = PeSim::new(Precision::BITS7, Precision::BITS7);
        let (got, run) = matmul_via_pe(&sim, &a, &b);
        assert_eq!(got.data(), ops::matmul(&a, &b).data());
        assert!(run.mac_ops > 0);
    }

    #[test]
    fn pe_matches_reference_for_all_modes_and_reprs() {
        let a = tensor(4, 40, |i| ((i * 29 + 3) % 127) as i32 - 63);
        let b = tensor(40, 4, |i| ((i * 41 + 7) % 127) as i32 - 63);
        let reference = ops::matmul(&a, &b);
        for repr in [Repr::Sbr, Repr::Conventional] {
            for skip in [SkipSide::None, SkipSide::Input, SkipSide::Weight] {
                let sim = PeSim {
                    repr,
                    skip,
                    ..PeSim::new(Precision::BITS7, Precision::BITS7)
                };
                let (got, _) = matmul_via_pe(&sim, &a, &b);
                assert_eq!(got.data(), reference.data(), "{repr:?} {skip:?}");
            }
        }
    }

    #[test]
    fn pe_matches_reference_mixed_precision() {
        // MonoDepth2 decoder setting: 10-bit inputs, 7-bit weights.
        let a = tensor(4, 16, |i| ((i * 211 + 17) % 1023) as i32 - 511);
        let b = tensor(16, 4, |i| ((i * 47 + 1) % 127) as i32 - 63);
        let sim = PeSim::new(Precision::BITS10, Precision::BITS7);
        let (got, _) = matmul_via_pe(&sim, &a, &b);
        assert_eq!(got.data(), ops::matmul(&a, &b).data());
    }

    #[test]
    fn skipping_zero_input_subwords_saves_cycles_without_changing_results() {
        // Inputs with many zero and near-zero values (all four spatial rows
        // zero for many channels).
        let a = tensor(4, 64, |i| {
            let c = i % 64;
            if c % 2 == 0 {
                0
            } else {
                -((c % 7) as i32) - 1
            }
        });
        let b = tensor(64, 4, |i| ((i * 31 + 1) % 127) as i32 - 63);
        let dense = PeSim {
            skip: SkipSide::None,
            ..PeSim::new(Precision::BITS7, Precision::BITS7)
        };
        let skipping = PeSim::new(Precision::BITS7, Precision::BITS7);
        let (d_out, d_run) = matmul_via_pe(&dense, &a, &b);
        let (s_out, s_run) = matmul_via_pe(&skipping, &a, &b);
        assert_eq!(d_out.data(), s_out.data());
        assert!(s_run.cycles < d_run.cycles);
        assert!(s_run.skipped_subwords > 0);
        // Half the channels are fully zero; near-zero negatives also zero
        // their high-order slices under the SBR.
        assert!(s_run.speedup() > 2.0, "got {}", s_run.speedup());
    }

    #[test]
    fn sbr_skips_more_than_conventional_on_negative_near_zero_data() {
        let a = tensor(4, 64, |i| -(((i * 13) % 6) as i32) - 1); // in [-7, -1]
        let b = tensor(64, 4, |i| ((i * 31 + 1) % 127) as i32 - 63);
        let sbr = PeSim::new(Precision::BITS7, Precision::BITS7);
        let conv = PeSim {
            repr: Repr::Conventional,
            ..sbr
        };
        let (so, sr) = matmul_via_pe(&sbr, &a, &b);
        let (co, cr) = matmul_via_pe(&conv, &a, &b);
        assert_eq!(so.data(), co.data());
        assert!(sr.skipped_subwords > 0, "SBR finds zero high slices");
        assert_eq!(cr.skipped_subwords, 0, "conventional slices are all-ones");
    }

    #[test]
    fn weight_skipping_exploits_zero_weight_subwords() {
        let a = tensor(4, 32, |i| ((i * 37 + 5) % 127) as i32 - 63);
        // Half the channels have all-zero weights for all 4 output channels.
        let b = tensor(32, 4, |i| if (i / 4) % 2 == 0 { 0 } else { 3 });
        let sim = PeSim {
            skip: SkipSide::Weight,
            ..PeSim::new(Precision::BITS7, Precision::BITS7)
        };
        let (out, run) = matmul_via_pe(&sim, &a, &b);
        assert_eq!(out.data(), ops::matmul(&a, &b).data());
        assert!(run.skipped_subwords >= 32); // 16 zero channels × ≥2 passes
    }

    #[test]
    fn output_masking_skips_low_orders_of_insensitive_outputs() {
        let a = tensor(4, 16, |i| ((i * 37 + 5) % 127) as i32 - 63);
        let b = tensor(16, 4, |i| ((i * 53 + 11) % 127) as i32 - 63);
        let masked = PeSim {
            output_mask: [false, true, false, true],
            pre_kept: (1, 1),
            skip: SkipSide::None,
            ..PeSim::new(Precision::BITS7, Precision::BITS7)
        };
        let (got, run) = matmul_via_pe(&masked, &a, &b);
        let reference = ops::matmul(&a, &b);
        // Unmasked outputs exact.
        for s in 0..4 {
            assert_eq!(got.data()[s * 4], reference.data()[s * 4]);
            assert_eq!(got.data()[s * 4 + 2], reference.data()[s * 4 + 2]);
        }
        // Masked outputs hold the speculative (high-order-only) value.
        let full = PeSim {
            skip: SkipSide::None,
            ..PeSim::new(Precision::BITS7, Precision::BITS7)
        };
        let (full_out, full_run) = matmul_via_pe(&full, &a, &b);
        assert_eq!(full_out.data(), reference.data());
        for s in 0..4 {
            for o in [1usize, 3] {
                let spec = got.data()[s * 4 + o];
                let truth = reference.data()[s * 4 + o];
                // Error bounded by the dropped low-order terms:
                // |x_L·w| + |x_H·w_L| ≤ 7·63 + 56·7 per element.
                assert!((spec - truth).abs() <= 16 * (7 * 63 + 56 * 7));
            }
        }
        assert!(run.mac_ops < full_run.mac_ops);
    }

    #[test]
    fn accumulator_width_is_honoured_at_worst_case() {
        // 32 channels of worst-case digits must not trip the 12-bit assert:
        // 49 × 32 = 1568 < 2048.
        let a = tensor(4, 32, |_| -63); // digits (-7, -7)
        let b = tensor(32, 4, |_| -63);
        let sim = PeSim {
            skip: SkipSide::None,
            ..PeSim::new(Precision::BITS7, Precision::BITS7)
        };
        let (out, _) = matmul_via_pe(&sim, &a, &b);
        assert_eq!(out.data(), ops::matmul(&a, &b).data());
    }

    #[test]
    fn partial_tiles_are_zero_padded() {
        let a = tensor(5, 7, |i| (i % 13) as i32 - 6);
        let b = tensor(7, 3, |i| (i % 11) as i32 - 5);
        let sim = PeSim::new(Precision::BITS7, Precision::BITS7);
        let (got, _) = matmul_via_pe(&sim, &a, &b);
        assert_eq!(got.data(), ops::matmul(&a, &b).data());
    }

    #[test]
    fn conv_via_im2col_matches_reference_through_pe() {
        let x = Tensor::from_vec(
            (0..2 * 6 * 6).map(|i| ((i * 7) % 127) - 63).collect(),
            Shape::new(&[2, 6, 6]),
        );
        let w = Tensor::from_vec(
            (0..4 * 2 * 3 * 3).map(|i| ((i * 11) % 127) - 63).collect(),
            Shape::new(&[4, 2, 3, 3]),
        );
        let params = ops::Conv2dParams {
            stride: 1,
            padding: 1,
        };
        let reference = ops::conv2d(&x, &w, params);
        let cols = ops::im2col(&x, (3, 3), params);
        let wf = Tensor::from_vec(w.data().to_vec(), Shape::new(&[4, 18]));
        let sim = PeSim::new(Precision::BITS7, Precision::BITS7);
        // PE computes w_flat · im2col = conv output.
        let (got, _) = matmul_via_pe(&sim, &wf, &cols);
        assert_eq!(got.data(), reference.data());
    }
}
