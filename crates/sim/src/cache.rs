//! Memoized tensor synthesis and slice decomposition.
//!
//! Figure sweeps run the *same* network through several architecture
//! variants (fig10/fig11 use five), and every variant used to re-synthesize
//! and re-decompose every layer from scratch even though the tensors depend
//! only on `(layer, seed)` and the decomposition only additionally on the
//! slice representation. This module caches both levels:
//!
//! * [`DecompCache::tensors`]-level — the quantized input/weight codes of a
//!   layer, keyed by `(layer fingerprint, seed, layer index, sample cap)`;
//! * [`DecompCache::decomp`]-level — a [`LayerDecomp`]: the per-order
//!   [`PlaneStats`] (zero-slice / zero-sub-word / RLE-entry counts measured
//!   with the runtime-dispatched kernels in `sibia_sbr::kernels`) plus
//!   value-group counts,
//!   keyed additionally by [`Repr`].
//!
//! A [`LayerDecomp`] stores **integer counts, never fractions**: every
//! simulated quantity is derived from the counts with exactly the divisions
//! the uncached scalar path performed, in the same order, so cached, uncached,
//! serial, and parallel runs produce bit-identical floating-point results.
//!
//! The cache is `Mutex`-guarded and shared across the worker threads of
//! `crate::parallel`. Locks are never held while synthesizing or
//! decomposing; two threads racing the same key may both compute it, but the
//! value is a pure function of the key, so whichever insert lands first is
//! indistinguishable from the other.
//!
//! Long-lived owners (the `sibia-serve` daemon keeps one cache for its whole
//! lifetime) bound memory with [`DecompCache::with_capacity`]: each level
//! keeps at most `cap` entries, evicting the least-recently-used one on
//! overflow. Eviction only ever discards memoized values — a later request
//! for an evicted key recomputes the identical value — so a bounded cache
//! changes memory and wall-clock, never results. Hit/miss counters feed the
//! daemon's `metrics` endpoint.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use sibia_nn::Layer;
use sibia_sbr::packed::PackedPlane;

use crate::spec::Repr;
use crate::tile::{TileConfig, TileFold, TileKey, TilePlan, TileStats};

/// Zero-structure counts of one slice plane, measured once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlaneStats {
    /// Slices in the plane.
    pub len: usize,
    /// Exactly-zero slices.
    pub zero_slices: usize,
    /// Sub-words the plane groups into (tail zero-padded).
    pub subwords: usize,
    /// All-four-zero (skippable) sub-words.
    pub zero_subwords: usize,
    /// Entries the DMU's RLE codec (4-bit index) emits for the plane.
    pub rle_entries: usize,
}

impl PlaneStats {
    /// Measures a packed plane.
    pub fn measure(plane: &PackedPlane) -> Self {
        Self {
            len: plane.len(),
            zero_slices: plane.zero_slice_count(),
            subwords: plane.subword_count(),
            zero_subwords: plane.zero_subword_count(),
            rle_entries: plane.rle_entry_count(DMU_INDEX_BITS),
        }
    }

    /// Measures an unpacked digit plane in one pass through the active
    /// kernel tier — same counts as [`Self::measure`] (pinned by tests)
    /// without materialising a [`PackedPlane`].
    pub fn measure_plane(plane: &[i8]) -> Self {
        let c = sibia_sbr::kernels::active().plane_counts(plane, DMU_INDEX_BITS);
        Self {
            len: c.len,
            zero_slices: c.zero_digits,
            subwords: c.subwords,
            zero_subwords: c.zero_subwords,
            rle_entries: c.rle_entries,
        }
    }

    /// Zero sub-word fraction, with the same empty-plane convention as
    /// `sibia_sbr::subword::zero_subword_fraction`.
    pub fn zero_subword_fraction(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.zero_subwords as f64 / self.subwords as f64
        }
    }
}

/// Index width of the Sibia DMU's RLE code.
pub const DMU_INDEX_BITS: u8 = 4;

/// Decomposition statistics of one operand tensor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperandStats {
    /// Number of sampled codes the statistics were measured on.
    pub sampled: usize,
    /// Per-slice-order plane statistics, order 0 (LSB) first.
    pub planes: Vec<PlaneStats>,
    /// Groups of four adjacent *values* that are entirely zero (HNPU-style
    /// value-granular skipping; the tail group counts when its members are
    /// all zero).
    pub zero_value_groups: usize,
    /// Total value groups (`sampled.div_ceil(4)`).
    pub value_groups: usize,
}

impl OperandStats {
    /// Measures a quantized code tensor decomposed at `repr`.
    pub fn measure(codes: &[i32], precision: sibia_sbr::Precision, repr: Repr) -> Self {
        let planes = match repr {
            Repr::Sbr => sibia_sbr::sbr::planes(codes, precision),
            Repr::Conventional => sibia_sbr::conv::planes(codes, precision),
        };
        let planes = planes
            .iter()
            .map(|p| PlaneStats::measure_plane(p))
            .collect();
        let zero_value_groups = codes
            .chunks(4)
            .filter(|g| g.iter().all(|&v| v == 0))
            .count();
        Self {
            sampled: codes.len(),
            planes,
            zero_value_groups,
            value_groups: codes.len().div_ceil(4),
        }
    }

    /// [`Self::measure`] as a streaming fold over `config`-sized tiles,
    /// with per-tile stats recalled from `cache`'s content-keyed tile level.
    /// The fold's exactness contract (see [`crate::tile`]) makes the result
    /// **byte-identical** to the layer-at-a-time measurement; only the
    /// memoization granularity changes.
    pub fn measure_tiled(
        codes: &[i32],
        precision: sibia_sbr::Precision,
        repr: Repr,
        config: TileConfig,
        cache: &DecompCache,
    ) -> Self {
        let planes = match repr {
            Repr::Sbr => sibia_sbr::sbr::planes(codes, precision),
            Repr::Conventional => sibia_sbr::conv::planes(codes, precision),
        };
        let mut span = sibia_obs::tracer().span("sim.tile.measure");
        span.attr("tile_subwords", config.subwords());
        let mut tiles = 0u64;
        let planes = planes
            .iter()
            .map(|p| {
                let plan = TilePlan::new(p.len(), config);
                tiles += plan.tile_count() as u64;
                let mut fold = TileFold::new(DMU_INDEX_BITS);
                for tile in plan.iter(p) {
                    fold.push(cache.tile_stats(tile, DMU_INDEX_BITS));
                }
                fold.finish()
            })
            .collect();
        span.attr("tiles", tiles);
        let registry = sibia_obs::registry();
        registry.counter("sim.tile.tiles").add(tiles);
        let zero_value_groups = codes
            .chunks(4)
            .filter(|g| g.iter().all(|&v| v == 0))
            .count();
        Self {
            sampled: codes.len(),
            planes,
            zero_value_groups,
            value_groups: codes.len().div_ceil(4),
        }
    }

    /// Per-order zero-sub-word fractions (the DSM's input).
    pub fn subword_sparsity(&self) -> Vec<f64> {
        self.planes
            .iter()
            .map(|p| p.zero_subword_fraction())
            .collect()
    }
}

/// Everything the cycle model needs to know about one layer's operands
/// under one slice representation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerDecomp {
    /// Input slice orders (`k_i`).
    pub ki: usize,
    /// Weight slice orders (`k_w`).
    pub kw: usize,
    /// Input-operand statistics.
    pub input: OperandStats,
    /// Weight-operand statistics.
    pub weight: OperandStats,
}

/// Synthesized quantized codes of one layer's operands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerTensors {
    /// Quantized input-activation codes.
    pub input_codes: Vec<i32>,
    /// Quantized weight codes.
    pub weight_codes: Vec<i32>,
}

/// Cache key for synthesized tensors. The layer itself is fingerprinted via
/// its `Debug` form (layers carry `f32` fields and so cannot implement
/// `Hash` directly); the fingerprint covers every generation-relevant field.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct TensorKey {
    layer_fp: String,
    seed: u64,
    layer_index: usize,
    sample_cap: usize,
}

/// Cache key for decomposition statistics.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct DecompKey {
    layer_fp: String,
    seed: u64,
    layer_index: usize,
    sample_cap: usize,
    repr: Repr,
}

/// One bounded, LRU-ish memo level: entries carry a last-use stamp from a
/// per-level logical clock; on overflow the smallest stamp is evicted.
/// Eviction scans linearly — "LRU-ish" — which is exact LRU behaviour at
/// O(n) evict cost, fine for the few-thousand-entry caps a server uses.
#[derive(Debug)]
struct Shard<K, V> {
    map: HashMap<K, (Arc<V>, u64)>,
    tick: u64,
}

impl<K: Eq + Hash + Clone, V> Shard<K, V> {
    fn new() -> Self {
        Self {
            map: HashMap::new(),
            tick: 0,
        }
    }

    fn get(&mut self, key: &K) -> Option<Arc<V>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|(v, stamp)| {
            *stamp = tick;
            Arc::clone(v)
        })
    }

    /// Inserts (keeping an existing value if a racing thread beat us),
    /// evicts down to `cap`, and returns the stored value.
    fn insert(&mut self, key: K, value: Arc<V>, cap: Option<usize>) -> Arc<V> {
        self.tick += 1;
        let tick = self.tick;
        let stored = Arc::clone(
            &self
                .map
                .entry(key)
                .and_modify(|(_, stamp)| *stamp = tick)
                .or_insert((value, tick))
                .0,
        );
        if let Some(cap) = cap {
            while self.map.len() > cap {
                let oldest = self
                    .map
                    .iter()
                    .min_by_key(|(_, (_, stamp))| *stamp)
                    .map(|(k, _)| k.clone())
                    .expect("non-empty map");
                self.map.remove(&oldest);
            }
        }
        stored
    }
}

/// Thread-safe memo of synthesis, decomposition, and per-tile measurement
/// results, optionally bounded per level.
///
/// The tile level is **content-keyed** ([`TileKey`]): identical tile bytes
/// hit the same entry regardless of which layer, network, or position they
/// came from, so all-zero tiles and repeated activation patterns (the
/// albert GLUE variants share many) collapse to single entries. Tile hits
/// and misses are tracked separately from the layer levels — they answer a
/// different question (sub-layer sharing) at a very different rate.
#[derive(Debug)]
pub struct DecompCache {
    tensors: Mutex<Shard<TensorKey, LayerTensors>>,
    decomps: Mutex<Shard<DecompKey, LayerDecomp>>,
    tiles: Mutex<Shard<TileKey, TileStats>>,
    capacity: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
    tile_hits: AtomicU64,
    tile_misses: AtomicU64,
}

impl DecompCache {
    /// An empty, unbounded cache (sweep-scoped use: the working set is the
    /// grid's layer count, naturally bounded).
    pub fn new() -> Self {
        Self {
            tensors: Mutex::new(Shard::new()),
            decomps: Mutex::new(Shard::new()),
            tiles: Mutex::new(Shard::new()),
            capacity: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            tile_hits: AtomicU64::new(0),
            tile_misses: AtomicU64::new(0),
        }
    }

    /// An empty cache holding at most `cap` (≥ 1) entries *per level*, with
    /// least-recently-used eviction. Long-lived owners (the serve daemon)
    /// use this to keep memory bounded across an unbounded request stream.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            capacity: Some(cap.max(1)),
            ..Self::new()
        }
    }

    /// The per-level entry cap, if bounded.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Number of cached layer tensors.
    pub fn tensor_entries(&self) -> usize {
        self.tensors.lock().expect("cache lock").map.len()
    }

    /// Number of cached layer decompositions.
    pub fn decomp_entries(&self) -> usize {
        self.decomps.lock().expect("cache lock").map.len()
    }

    /// Number of cached per-tile measurements (distinct tile contents).
    pub fn tile_entries(&self) -> usize {
        self.tiles.lock().expect("cache lock").map.len()
    }

    /// Tile-level lookups answered from the cache.
    pub fn tile_hits(&self) -> u64 {
        self.tile_hits.load(Ordering::Relaxed)
    }

    /// Tile-level lookups that had to measure.
    pub fn tile_misses(&self) -> u64 {
        self.tile_misses.load(Ordering::Relaxed)
    }

    /// Tile-level hit fraction; 0 before the first tile lookup.
    pub fn tile_hit_rate(&self) -> f64 {
        let (h, m) = (self.tile_hits(), self.tile_misses());
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Returns the stats of one tile, measuring on a miss. Content-keyed:
    /// the lookup fingerprints the tile bytes, so identical tiles anywhere
    /// in the grid share one entry. The lock is not held while measuring.
    pub fn tile_stats(&self, tile: &[i8], index_bits: u8) -> TileStats {
        // Registry handles are resolved once per process: the per-tile path
        // must not pay a registry lookup per call.
        static HITS: std::sync::OnceLock<Arc<sibia_obs::Counter>> = std::sync::OnceLock::new();
        static MISSES: std::sync::OnceLock<Arc<sibia_obs::Counter>> = std::sync::OnceLock::new();
        let key = TileKey::of(tile, index_bits);
        if let Some(hit) = self.tiles.lock().expect("cache lock").get(&key) {
            self.tile_hits.fetch_add(1, Ordering::Relaxed);
            HITS.get_or_init(|| sibia_obs::registry().counter("sim.tile.cache_hits"))
                .add(1);
            return *hit;
        }
        self.tile_misses.fetch_add(1, Ordering::Relaxed);
        MISSES
            .get_or_init(|| sibia_obs::registry().counter("sim.tile.cache_misses"))
            .add(1);
        let value = TileStats::measure(tile, index_bits);
        self.tiles
            .lock()
            .expect("cache lock")
            .insert(key, Arc::new(value), self.tile_capacity());
        value
    }

    /// The tile level's entry cap: tiles are tiny `Copy` summaries, so a
    /// bounded cache affords them 64× the layer-level cap before memory
    /// matters.
    fn tile_capacity(&self) -> Option<usize> {
        self.capacity.map(|c| c.saturating_mul(64))
    }

    /// Lookups answered from the cache (both levels).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to compute (both levels).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Hit fraction over all lookups; 0 before the first lookup.
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = (self.hits(), self.misses());
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Returns the synthesized tensors for a key, computing them with
    /// `synth` on a miss. The lock is not held during `synth`.
    pub fn tensors(
        &self,
        layer: &Layer,
        seed: u64,
        layer_index: usize,
        sample_cap: usize,
        synth: impl FnOnce() -> LayerTensors,
    ) -> Arc<LayerTensors> {
        let key = TensorKey {
            layer_fp: format!("{layer:?}"),
            seed,
            layer_index,
            sample_cap,
        };
        if let Some(hit) = self.tensors.lock().expect("cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return hit;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let value = Arc::new(synth());
        self.tensors
            .lock()
            .expect("cache lock")
            .insert(key, value, self.capacity)
    }

    /// Returns the decomposition statistics for a key, computing them with
    /// `measure` on a miss. The lock is not held during `measure`.
    pub fn decomp(
        &self,
        layer: &Layer,
        seed: u64,
        layer_index: usize,
        sample_cap: usize,
        repr: Repr,
        measure: impl FnOnce() -> LayerDecomp,
    ) -> Arc<LayerDecomp> {
        let key = DecompKey {
            layer_fp: format!("{layer:?}"),
            seed,
            layer_index,
            sample_cap,
            repr,
        };
        if let Some(hit) = self.decomps.lock().expect("cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return hit;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let value = Arc::new(measure());
        self.decomps
            .lock()
            .expect("cache lock")
            .insert(key, value, self.capacity)
    }
}

impl Default for DecompCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sibia_sbr::subword::{to_subwords, zero_subword_fraction};
    use sibia_sbr::Precision;

    #[test]
    fn plane_stats_match_scalar_definitions() {
        let values: Vec<i32> = (-40..40).map(|v| v * 3 % 41).collect();
        for repr in [Repr::Sbr, Repr::Conventional] {
            let stats = OperandStats::measure(&values, Precision::BITS7, repr);
            let planes = match repr {
                Repr::Sbr => sibia_sbr::sbr::planes(&values, Precision::BITS7),
                Repr::Conventional => sibia_sbr::conv::planes(&values, Precision::BITS7),
            };
            for (p, s) in planes.iter().zip(&stats.planes) {
                assert_eq!(s.len, p.len());
                assert_eq!(s.zero_slices, p.iter().filter(|&&d| d == 0).count());
                let sw = to_subwords(p);
                assert_eq!(s.subwords, sw.len());
                assert_eq!(s.zero_subwords, sw.iter().filter(|w| w.is_zero()).count());
                assert_eq!(s.zero_subword_fraction(), zero_subword_fraction(p));
            }
        }
    }

    #[test]
    fn measure_plane_matches_packed_measure() {
        let values: Vec<i32> = (-63..=63).chain([0; 130]).collect();
        for repr in [Repr::Sbr, Repr::Conventional] {
            let planes = match repr {
                Repr::Sbr => sibia_sbr::sbr::planes(&values, Precision::BITS7),
                Repr::Conventional => sibia_sbr::conv::planes(&values, Precision::BITS7),
            };
            for p in &planes {
                assert_eq!(
                    PlaneStats::measure_plane(p),
                    PlaneStats::measure(&PackedPlane::pack(p))
                );
            }
        }
    }

    #[test]
    fn value_groups_cover_the_tail() {
        let stats = OperandStats::measure(&[0, 0, 0, 0, 1, 0, 0], Precision::BITS7, Repr::Sbr);
        assert_eq!(stats.value_groups, 2);
        assert_eq!(stats.zero_value_groups, 1);
        let stats = OperandStats::measure(&[1, 0, 0, 0, 0, 0], Precision::BITS7, Repr::Sbr);
        assert_eq!(stats.zero_value_groups, 1, "all-zero tail group counts");
    }

    #[test]
    fn cache_hits_return_the_same_value() {
        use sibia_nn::Layer;
        let cache = DecompCache::new();
        let layer = Layer::linear("l", 4, 8, 8);
        let mut calls = 0;
        for _ in 0..3 {
            let t = cache.tensors(&layer, 1, 0, 64, || {
                calls += 1;
                LayerTensors {
                    input_codes: vec![1, 2],
                    weight_codes: vec![3],
                }
            });
            assert_eq!(t.input_codes, vec![1, 2]);
        }
        assert_eq!(calls, 1);
        assert_eq!(cache.tensor_entries(), 1);
        // A different layer index is a different stream → separate entry.
        cache.tensors(&layer, 1, 1, 64, || LayerTensors {
            input_codes: vec![],
            weight_codes: vec![],
        });
        assert_eq!(cache.tensor_entries(), 2);
    }

    #[test]
    fn capacity_is_respected_with_lru_eviction() {
        use sibia_nn::Layer;
        let cache = DecompCache::with_capacity(2);
        assert_eq!(cache.capacity(), Some(2));
        let layer = Layer::linear("l", 4, 8, 8);
        let fill = |codes: Vec<i32>| LayerTensors {
            input_codes: codes,
            weight_codes: vec![],
        };
        // Three distinct keys (layer indices 0/1/2) through a cap of 2.
        cache.tensors(&layer, 1, 0, 64, || fill(vec![0]));
        cache.tensors(&layer, 1, 1, 64, || fill(vec![1]));
        assert_eq!(cache.tensor_entries(), 2);
        // Touch index 0 so index 1 becomes the LRU victim.
        cache.tensors(&layer, 1, 0, 64, || unreachable!("hit"));
        cache.tensors(&layer, 1, 2, 64, || fill(vec![2]));
        assert_eq!(cache.tensor_entries(), 2, "cap respected");
        // Index 0 survived (hit), index 1 was evicted (recompute runs).
        let mut recomputed = false;
        cache.tensors(&layer, 1, 0, 64, || unreachable!("still cached"));
        cache.tensors(&layer, 1, 1, 64, || {
            recomputed = true;
            fill(vec![1])
        });
        assert!(recomputed, "LRU victim was index 1");
        // Counters: misses = 4 computes (0, 1, 2, 1-again), hits = 2.
        assert_eq!(cache.misses(), 4);
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.hit_rate(), 2.0 / 6.0);
    }

    #[test]
    fn counters_track_both_levels() {
        use sibia_nn::Layer;
        let cache = DecompCache::new();
        assert_eq!(cache.hit_rate(), 0.0);
        let layer = Layer::linear("l", 4, 8, 8);
        let values: Vec<i32> = (-10..10).collect();
        for _ in 0..3 {
            cache.decomp(&layer, 1, 0, 64, Repr::Sbr, || LayerDecomp {
                ki: 2,
                kw: 2,
                input: OperandStats::measure(&values, Precision::BITS7, Repr::Sbr),
                weight: OperandStats::measure(&values, Precision::BITS7, Repr::Sbr),
            });
        }
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.decomp_entries(), 1);
    }
}
