//! Memoized tensor synthesis and slice decomposition.
//!
//! Figure sweeps run the *same* network through several architecture
//! variants (fig10/fig11 use five), and every variant used to re-synthesize
//! and re-decompose every layer from scratch even though the tensors depend
//! only on `(layer, seed)` and the decomposition only additionally on the
//! slice representation. This module caches both levels:
//!
//! * [`DecompCache::tensors`]-level — the quantized input/weight codes of a
//!   layer, keyed by `(layer fingerprint, seed, layer index, sample cap)`;
//! * [`DecompCache::decomp`]-level — a [`LayerDecomp`]: the per-order
//!   [`PlaneStats`] (zero-slice / zero-sub-word / RLE-entry counts measured
//!   with the SWAR kernels in `sibia_sbr::packed`) plus value-group counts,
//!   keyed additionally by [`Repr`].
//!
//! A [`LayerDecomp`] stores **integer counts, never fractions**: every
//! simulated quantity is derived from the counts with exactly the divisions
//! the uncached scalar path performed, in the same order, so cached, uncached,
//! serial, and parallel runs produce bit-identical floating-point results.
//!
//! The cache is `Mutex`-guarded and shared across the worker threads of
//! `crate::parallel`. Locks are never held while synthesizing or
//! decomposing; two threads racing the same key may both compute it, but the
//! value is a pure function of the key, so whichever insert lands first is
//! indistinguishable from the other.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use sibia_nn::Layer;
use sibia_sbr::packed::PackedPlane;

use crate::spec::Repr;

/// Zero-structure counts of one slice plane, measured once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlaneStats {
    /// Slices in the plane.
    pub len: usize,
    /// Exactly-zero slices.
    pub zero_slices: usize,
    /// Sub-words the plane groups into (tail zero-padded).
    pub subwords: usize,
    /// All-four-zero (skippable) sub-words.
    pub zero_subwords: usize,
    /// Entries the DMU's RLE codec (4-bit index) emits for the plane.
    pub rle_entries: usize,
}

impl PlaneStats {
    /// Measures a packed plane.
    pub fn measure(plane: &PackedPlane) -> Self {
        Self {
            len: plane.len(),
            zero_slices: plane.zero_slice_count(),
            subwords: plane.subword_count(),
            zero_subwords: plane.zero_subword_count(),
            rle_entries: plane.rle_entry_count(DMU_INDEX_BITS),
        }
    }

    /// Zero sub-word fraction, with the same empty-plane convention as
    /// `sibia_sbr::subword::zero_subword_fraction`.
    pub fn zero_subword_fraction(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.zero_subwords as f64 / self.subwords as f64
        }
    }
}

/// Index width of the Sibia DMU's RLE code.
pub const DMU_INDEX_BITS: u8 = 4;

/// Decomposition statistics of one operand tensor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperandStats {
    /// Number of sampled codes the statistics were measured on.
    pub sampled: usize,
    /// Per-slice-order plane statistics, order 0 (LSB) first.
    pub planes: Vec<PlaneStats>,
    /// Groups of four adjacent *values* that are entirely zero (HNPU-style
    /// value-granular skipping; the tail group counts when its members are
    /// all zero).
    pub zero_value_groups: usize,
    /// Total value groups (`sampled.div_ceil(4)`).
    pub value_groups: usize,
}

impl OperandStats {
    /// Measures a quantized code tensor decomposed at `repr`.
    pub fn measure(codes: &[i32], precision: sibia_sbr::Precision, repr: Repr) -> Self {
        let planes = match repr {
            Repr::Sbr => sibia_sbr::sbr::planes(codes, precision),
            Repr::Conventional => sibia_sbr::conv::planes(codes, precision),
        };
        let planes = planes
            .iter()
            .map(|p| PlaneStats::measure(&PackedPlane::pack(p)))
            .collect();
        let zero_value_groups = codes
            .chunks(4)
            .filter(|g| g.iter().all(|&v| v == 0))
            .count();
        Self {
            sampled: codes.len(),
            planes,
            zero_value_groups,
            value_groups: codes.len().div_ceil(4),
        }
    }

    /// Per-order zero-sub-word fractions (the DSM's input).
    pub fn subword_sparsity(&self) -> Vec<f64> {
        self.planes
            .iter()
            .map(|p| p.zero_subword_fraction())
            .collect()
    }
}

/// Everything the cycle model needs to know about one layer's operands
/// under one slice representation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerDecomp {
    /// Input slice orders (`k_i`).
    pub ki: usize,
    /// Weight slice orders (`k_w`).
    pub kw: usize,
    /// Input-operand statistics.
    pub input: OperandStats,
    /// Weight-operand statistics.
    pub weight: OperandStats,
}

/// Synthesized quantized codes of one layer's operands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerTensors {
    /// Quantized input-activation codes.
    pub input_codes: Vec<i32>,
    /// Quantized weight codes.
    pub weight_codes: Vec<i32>,
}

/// Cache key for synthesized tensors. The layer itself is fingerprinted via
/// its `Debug` form (layers carry `f32` fields and so cannot implement
/// `Hash` directly); the fingerprint covers every generation-relevant field.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct TensorKey {
    layer_fp: String,
    seed: u64,
    layer_index: usize,
    sample_cap: usize,
}

/// Cache key for decomposition statistics.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct DecompKey {
    layer_fp: String,
    seed: u64,
    layer_index: usize,
    sample_cap: usize,
    repr: Repr,
}

/// Thread-safe two-level memo of synthesis and decomposition results.
#[derive(Debug, Default)]
pub struct DecompCache {
    tensors: Mutex<HashMap<TensorKey, Arc<LayerTensors>>>,
    decomps: Mutex<HashMap<DecompKey, Arc<LayerDecomp>>>,
}

impl DecompCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached layer tensors.
    pub fn tensor_entries(&self) -> usize {
        self.tensors.lock().expect("cache lock").len()
    }

    /// Number of cached layer decompositions.
    pub fn decomp_entries(&self) -> usize {
        self.decomps.lock().expect("cache lock").len()
    }

    /// Returns the synthesized tensors for a key, computing them with
    /// `synth` on a miss. The lock is not held during `synth`.
    pub fn tensors(
        &self,
        layer: &Layer,
        seed: u64,
        layer_index: usize,
        sample_cap: usize,
        synth: impl FnOnce() -> LayerTensors,
    ) -> Arc<LayerTensors> {
        let key = TensorKey {
            layer_fp: format!("{layer:?}"),
            seed,
            layer_index,
            sample_cap,
        };
        if let Some(hit) = self.tensors.lock().expect("cache lock").get(&key) {
            return Arc::clone(hit);
        }
        let value = Arc::new(synth());
        Arc::clone(
            self.tensors
                .lock()
                .expect("cache lock")
                .entry(key)
                .or_insert(value),
        )
    }

    /// Returns the decomposition statistics for a key, computing them with
    /// `measure` on a miss. The lock is not held during `measure`.
    pub fn decomp(
        &self,
        layer: &Layer,
        seed: u64,
        layer_index: usize,
        sample_cap: usize,
        repr: Repr,
        measure: impl FnOnce() -> LayerDecomp,
    ) -> Arc<LayerDecomp> {
        let key = DecompKey {
            layer_fp: format!("{layer:?}"),
            seed,
            layer_index,
            sample_cap,
            repr,
        };
        if let Some(hit) = self.decomps.lock().expect("cache lock").get(&key) {
            return Arc::clone(hit);
        }
        let value = Arc::new(measure());
        Arc::clone(
            self.decomps
                .lock()
                .expect("cache lock")
                .entry(key)
                .or_insert(value),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sibia_sbr::subword::{to_subwords, zero_subword_fraction};
    use sibia_sbr::Precision;

    #[test]
    fn plane_stats_match_scalar_definitions() {
        let values: Vec<i32> = (-40..40).map(|v| v * 3 % 41).collect();
        for repr in [Repr::Sbr, Repr::Conventional] {
            let stats = OperandStats::measure(&values, Precision::BITS7, repr);
            let planes = match repr {
                Repr::Sbr => sibia_sbr::sbr::planes(&values, Precision::BITS7),
                Repr::Conventional => sibia_sbr::conv::planes(&values, Precision::BITS7),
            };
            for (p, s) in planes.iter().zip(&stats.planes) {
                assert_eq!(s.len, p.len());
                assert_eq!(s.zero_slices, p.iter().filter(|&&d| d == 0).count());
                let sw = to_subwords(p);
                assert_eq!(s.subwords, sw.len());
                assert_eq!(s.zero_subwords, sw.iter().filter(|w| w.is_zero()).count());
                assert_eq!(s.zero_subword_fraction(), zero_subword_fraction(p));
            }
        }
    }

    #[test]
    fn value_groups_cover_the_tail() {
        let stats = OperandStats::measure(&[0, 0, 0, 0, 1, 0, 0], Precision::BITS7, Repr::Sbr);
        assert_eq!(stats.value_groups, 2);
        assert_eq!(stats.zero_value_groups, 1);
        let stats = OperandStats::measure(&[1, 0, 0, 0, 0, 0], Precision::BITS7, Repr::Sbr);
        assert_eq!(stats.zero_value_groups, 1, "all-zero tail group counts");
    }

    #[test]
    fn cache_hits_return_the_same_value() {
        use sibia_nn::Layer;
        let cache = DecompCache::new();
        let layer = Layer::linear("l", 4, 8, 8);
        let mut calls = 0;
        for _ in 0..3 {
            let t = cache.tensors(&layer, 1, 0, 64, || {
                calls += 1;
                LayerTensors {
                    input_codes: vec![1, 2],
                    weight_codes: vec![3],
                }
            });
            assert_eq!(t.input_codes, vec![1, 2]);
        }
        assert_eq!(calls, 1);
        assert_eq!(cache.tensor_entries(), 1);
        // A different layer index is a different stream → separate entry.
        cache.tensors(&layer, 1, 1, 64, || LayerTensors {
            input_codes: vec![],
            weight_codes: vec![],
        });
        assert_eq!(cache.tensor_entries(), 2);
    }
}
