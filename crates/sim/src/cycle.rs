//! Cycle-accurate model of one PE array.
//!
//! Where the [`crate::perf`] simulator converts sparsity fractions into
//! cycles analytically (with a constant utilization factor), this module
//! accounts an MPU core's PE columns individually: every column consumes
//! its own compressed sub-word stream, columns finish spatial tiles at
//! different times under skipping, and the accumulation unit either
//! *latches* early-finished columns' outputs so they can proceed (paper
//! §II-D) or stalls them until the slowest column drains. Utilization is
//! therefore an **output** of this model — it is what calibrates the
//! constant the analytic simulator uses.
//!
//! The modelled hierarchy is one PE: `columns` MAC columns (16 MACs each:
//! 4 spatial × 4 output channels), sharing one accumulation unit on the
//! Uni-NoC chain.

use std::fmt;

use sibia_sbr::subword::SubWord;

/// Result of a cycle-accurate run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleTrace {
    /// Total cycles until every column drained and the accumulation chain
    /// flushed.
    pub cycles: u64,
    /// Sum of busy cycles over all columns.
    pub busy_cycles: u64,
    /// Column-cycles available (`cycles × columns`).
    pub capacity_cycles: u64,
    /// Cycles lost to column imbalance (idle while another column works).
    pub stall_cycles: u64,
    /// Spatial tiles processed.
    pub tiles: usize,
}

impl CycleTrace {
    /// Measured PE utilization: busy / capacity.
    pub fn utilization(&self) -> f64 {
        if self.capacity_cycles == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / self.capacity_cycles as f64
        }
    }
}

impl fmt::Display for CycleTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cycles, {:.1}% utilization over {} tiles",
            self.cycles,
            self.utilization() * 100.0,
            self.tiles
        )
    }
}

/// Cycle-accurate PE model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleSim {
    /// MAC columns sharing one accumulation unit.
    pub columns: usize,
    /// Whether the accumulation unit latches early-finished columns'
    /// outputs so they can start the next spatial tile immediately
    /// (paper §II-D). Without latching, all columns synchronize on every
    /// tile boundary.
    pub column_latching: bool,
    /// Cycles the accumulation chain needs to drain one tile's outputs
    /// through the Uni-NoC.
    pub accum_drain_cycles: u64,
}

impl CycleSim {
    /// The Sibia PE configuration: 4 columns, latching on.
    pub fn sibia() -> Self {
        Self {
            columns: 4,
            column_latching: true,
            accum_drain_cycles: 2,
        }
    }

    /// The latching ablation.
    pub fn without_latching() -> Self {
        Self {
            column_latching: false,
            ..Self::sibia()
        }
    }

    /// Runs the model on per-column, per-tile non-zero sub-word counts:
    /// `work[c][t]` is the number of non-zero sub-words column `c` must
    /// process in spatial tile `t` (one sub-word per cycle).
    ///
    /// With latching, a column's tiles flow back-to-back, so its finish
    /// time is simply its total work; the PE finishes when the busiest
    /// column does, plus one final accumulation drain. Without latching,
    /// every tile costs the maximum column work in that tile plus a drain.
    ///
    /// # Panics
    ///
    /// Panics if `work.len() != self.columns` or tile counts differ across
    /// columns.
    pub fn run(&self, work: &[Vec<u32>]) -> CycleTrace {
        assert_eq!(work.len(), self.columns, "one work queue per column");
        let tiles = work.first().map_or(0, Vec::len);
        assert!(
            work.iter().all(|w| w.len() == tiles),
            "columns must cover the same spatial tiles"
        );
        let busy_cycles: u64 = work
            .iter()
            .map(|w| w.iter().map(|&n| u64::from(n)).sum::<u64>())
            .sum();
        let cycles = if self.column_latching {
            let slowest = work
                .iter()
                .map(|w| w.iter().map(|&n| u64::from(n)).sum::<u64>())
                .max()
                .unwrap_or(0);
            slowest
                + if tiles > 0 {
                    self.accum_drain_cycles
                } else {
                    0
                }
        } else {
            (0..tiles)
                .map(|t| {
                    let tile_cost = work.iter().map(|w| u64::from(w[t])).max().unwrap_or(0);
                    tile_cost + self.accum_drain_cycles
                })
                .sum()
        };
        let capacity = cycles * self.columns as u64;
        CycleTrace {
            cycles,
            busy_cycles,
            capacity_cycles: capacity,
            stall_cycles: capacity.saturating_sub(busy_cycles),
            tiles,
        }
    }

    /// Builds per-column work queues from tile sub-words: channels are
    /// dealt round-robin across columns; `tile_subwords[t][c]` is channel
    /// `c`'s sub-word (4 spatially adjacent slices) in tile `t`.
    pub fn work_from_plane(&self, tile_subwords: &[Vec<SubWord>]) -> Vec<Vec<u32>> {
        let mut work = vec![Vec::with_capacity(tile_subwords.len()); self.columns];
        for tile in tile_subwords {
            let mut counts = vec![0u32; self.columns];
            for (c, sw) in tile.iter().enumerate() {
                if !sw.is_zero() {
                    counts[c % self.columns] += 1;
                }
            }
            for (w, n) in work.iter_mut().zip(counts) {
                w.push(n);
            }
        }
        work
    }
}

impl Default for CycleSim {
    fn default() -> Self {
        Self::sibia()
    }
}

/// Groups a flat slice plane (spatial-major: 4 spatial positions × all
/// channels per tile) into the `tile_subwords` layout
/// [`CycleSim::work_from_plane`] expects.
///
/// # Panics
///
/// Panics if `plane.len()` is not a multiple of `channels * 4`.
pub fn tiles_from_plane(plane: &[i8], channels: usize) -> Vec<Vec<SubWord>> {
    assert!(channels > 0, "need at least one channel");
    assert_eq!(
        plane.len() % (channels * 4),
        0,
        "plane must hold whole spatial tiles"
    );
    plane
        .chunks(channels * 4)
        .map(|tile| {
            (0..channels)
                .map(|c| {
                    let mut sw = [0i8; 4];
                    for (s, slot) in sw.iter_mut().enumerate() {
                        *slot = tile[s * channels + c];
                    }
                    SubWord(sw)
                })
                .collect()
        })
        .collect()
}

/// Measures utilization of latched vs unlatched execution on a synthetic
/// zero-pattern. Returns `(latched, unlatched)` traces.
pub fn latching_experiment(
    channels: usize,
    tiles: usize,
    zero_pattern: impl Fn(usize, usize) -> bool,
) -> (CycleTrace, CycleTrace) {
    let tile_subwords: Vec<Vec<SubWord>> = (0..tiles)
        .map(|t| {
            (0..channels)
                .map(|c| {
                    if zero_pattern(t, c) {
                        SubWord::default()
                    } else {
                        SubWord([1, 0, 0, 0])
                    }
                })
                .collect()
        })
        .collect();
    let latched_sim = CycleSim::sibia();
    let unlatched_sim = CycleSim::without_latching();
    let work = latched_sim.work_from_plane(&tile_subwords);
    (latched_sim.run(&work), unlatched_sim.run(&work))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_work_is_fully_utilized_either_way() {
        let work = vec![vec![8u32; 10]; 4];
        let latched = CycleSim::sibia().run(&work);
        let unlatched = CycleSim::without_latching().run(&work);
        assert!(latched.utilization() > 0.95, "{latched}");
        assert!(unlatched.cycles >= latched.cycles);
        assert_eq!(latched.busy_cycles, 4 * 8 * 10);
    }

    #[test]
    fn imbalanced_work_punishes_unlatched_execution() {
        // The heavy channel rotates across columns tile by tile, so the
        // unlatched PE pays the 4× tile cost every time while latched
        // columns average it out.
        let work: Vec<Vec<u32>> = (0..4usize)
            .map(|c| {
                (0..20usize)
                    .map(|t| if t % 4 == c { 16 } else { 4 })
                    .collect()
            })
            .collect();
        let latched = CycleSim::sibia().run(&work);
        let unlatched = CycleSim::without_latching().run(&work);
        assert!(
            unlatched.cycles as f64 > latched.cycles as f64 * 1.2,
            "latched {} unlatched {}",
            latched.cycles,
            unlatched.cycles
        );
        assert!(latched.utilization() > unlatched.utilization());
    }

    #[test]
    fn latched_cycles_equal_busiest_column_plus_drain() {
        let work = vec![vec![3u32; 5], vec![7; 5], vec![1; 5], vec![2; 5]];
        let t = CycleSim::sibia().run(&work);
        assert_eq!(t.cycles, 35 + 2);
        assert_eq!(t.busy_cycles, (3 + 7 + 1 + 2) * 5);
    }

    #[test]
    fn empty_work_costs_only_the_final_drain() {
        let t = CycleSim::sibia().run(&vec![vec![0u32; 100]; 4]);
        assert_eq!(t.cycles, 2);
        assert_eq!(t.busy_cycles, 0);
        let t = CycleSim::sibia().run(&vec![Vec::new(); 4]);
        assert_eq!(t.cycles, 0);
    }

    #[test]
    fn unlatched_pays_drain_per_tile() {
        let work = vec![vec![1u32; 10]; 4];
        let t = CycleSim::without_latching().run(&work);
        assert_eq!(t.cycles, 10 * (1 + 2));
    }

    #[test]
    fn utilization_gap_matches_perf_model_constants() {
        // Pseudo-random skipping at ~60% zero sub-words: measured
        // utilizations bracket the analytic constants (0.92 latched,
        // 0.75 unlatched).
        let (latched, unlatched) = latching_experiment(64, 200, |t, c| {
            (t.wrapping_mul(31) ^ c.wrapping_mul(2_654_435_761)) % 10 < 6
        });
        assert!(
            latched.utilization() > 0.85,
            "latched {}",
            latched.utilization()
        );
        assert!(
            unlatched.utilization() < latched.utilization() - 0.05,
            "latched {} unlatched {}",
            latched.utilization(),
            unlatched.utilization()
        );
    }

    #[test]
    fn work_from_plane_distributes_round_robin() {
        let sim = CycleSim::sibia();
        let tiles = vec![vec![
            SubWord([1, 0, 0, 0]),
            SubWord::default(),
            SubWord([2, 0, 0, 0]),
            SubWord([3, 0, 0, 0]),
            SubWord([4, 0, 0, 0]),
        ]];
        let work = sim.work_from_plane(&tiles);
        assert_eq!(work[0], vec![2]); // channels 0 and 4
        assert_eq!(work[1], vec![0]);
        assert_eq!(work[2], vec![1]);
        assert_eq!(work[3], vec![1]);
    }

    #[test]
    fn tiles_from_plane_transposes_spatial_major_data() {
        // 2 channels, 1 tile of 4 spatial positions, spatial-major layout.
        let plane = vec![1i8, 2, 0, 0, 3, 4, 0, 0];
        let tiles = tiles_from_plane(&plane, 2);
        assert_eq!(tiles.len(), 1);
        assert_eq!(tiles[0][0], SubWord([1, 0, 3, 0]));
        assert_eq!(tiles[0][1], SubWord([2, 0, 4, 0]));
    }

    #[test]
    #[should_panic(expected = "one work queue per column")]
    fn run_validates_column_count() {
        let _ = CycleSim::sibia().run(&[vec![1]]);
    }
}
