//! CSV export of simulation results, for external analysis/plotting.

use std::fmt::Write as _;

use crate::detailed::DetailedTrace;
use crate::perf::NetworkResult;

/// Quotes one CSV field per RFC 4180: fields containing a comma, a double
/// quote, or a line break are wrapped in double quotes with embedded quotes
/// doubled. Layer names come from network definitions (user-supplied in
/// custom zoos), so they must not be able to smuggle extra columns or rows
/// into the export.
fn csv_field(raw: &str) -> String {
    if raw.contains(['"', ',', '\n', '\r']) {
        let mut quoted = String::with_capacity(raw.len() + 2);
        quoted.push('"');
        for ch in raw.chars() {
            if ch == '"' {
                quoted.push('"');
            }
            quoted.push(ch);
        }
        quoted.push('"');
        quoted
    } else {
        raw.to_string()
    }
}

/// Renders a [`NetworkResult`]'s per-layer rows as CSV (with header).
pub fn network_csv(result: &NetworkResult) -> String {
    let mut out = String::from(
        "layer,macs,slice_pairs,compute_cycles,memory_cycles,cycles,mac_ops,\
         sram_accesses,dram_bits,skip_side,work_fraction,input_compression_ratio\n",
    );
    for l in &result.layers {
        writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{:?},{:.4},{:.3}",
            csv_field(&l.name),
            l.macs,
            l.slice_pairs,
            l.compute_cycles,
            l.memory_cycles,
            l.cycles,
            l.events.mac_ops,
            l.events.sram_accesses,
            l.events.dram_bits,
            l.skip_side,
            l.work_fraction,
            l.input_compression_ratio,
        )
        .expect("writing to a String cannot fail");
    }
    out
}

/// Renders a [`DetailedTrace`]'s per-pass rows as CSV (with header).
pub fn detailed_csv(trace: &DetailedTrace) -> String {
    let mut out =
        String::from("layer,input_order,weight_order,cycles,nonzero_fraction,fetch_stalls\n");
    for p in &trace.passes {
        writeln!(
            out,
            "{},{},{},{},{:.4},{}",
            csv_field(&trace.name),
            p.input_order,
            p.weight_order,
            p.cycles,
            p.nonzero_fraction,
            p.fetch_stalls,
        )
        .expect("writing to a String cannot fail");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::Simulator;
    use crate::spec::ArchSpec;
    use sibia_nn::zoo;

    #[test]
    fn network_csv_has_one_row_per_layer() {
        let mut sim = Simulator::new(1);
        sim.sample_cap = 2048;
        let net = zoo::alexnet();
        let r = sim.simulate_network(&ArchSpec::sibia_hybrid(), &net);
        let csv = network_csv(&r);
        assert_eq!(csv.lines().count(), net.layers().len() + 1);
        assert!(csv.starts_with("layer,macs"));
        assert!(csv.contains("conv1,"));
    }

    #[test]
    fn hostile_layer_names_cannot_inject_csv_columns() {
        use sibia_nn::network::{DensityClass, TaskDomain};
        use sibia_nn::{Activation, Layer, Network};
        let evil = "conv,9999,\"x\"\ninjected";
        let net = Network::new(
            "evil-net",
            TaskDomain::Vision2d,
            DensityClass::Dense,
            vec![Layer::conv2d(evil, 8, 8, 3, 1, 1, 8)
                .with_activation(Activation::Relu)
                .with_input_sparsity(0.4)],
        );
        let mut sim = Simulator::new(1);
        sim.sample_cap = 1024;
        let r = sim.simulate_network(&ArchSpec::sibia_hybrid(), &net);
        let csv = network_csv(&r);
        // Still exactly header + one row: the embedded newline is quoted,
        // so a naive line count sees the quoted break, but every *record*
        // keeps 12 fields once quotes are honoured.
        assert!(csv.contains("\"conv,9999,\"\"x\"\"\ninjected\""));
        let header_fields = csv.lines().next().unwrap().split(',').count();
        assert_eq!(header_fields, 12);
        // A hostile name must not be emitted raw (which would add fields).
        assert!(!csv.contains("\nconv,9999,"));
        // The quoted field parses back to the original name under RFC 4180.
        assert_eq!(csv_field(evil), "\"conv,9999,\"\"x\"\"\ninjected\"");
        assert_eq!(csv_field("plain"), "plain");
    }

    #[test]
    fn detailed_csv_has_one_row_per_pass() {
        use crate::detailed::DetailedSim;
        use sibia_nn::{Activation, Layer, SynthSource};
        let mut src = SynthSource::new(1);
        let layer = Layer::linear("l", 16, 64, 16).with_activation(Activation::Gelu);
        let t = DetailedSim::sibia().run_layer(&ArchSpec::sibia_hybrid(), &layer, &mut src);
        let csv = detailed_csv(&t);
        assert_eq!(csv.lines().count(), t.passes.len() + 1);
    }
}
