//! CSV export of simulation results, for external analysis/plotting.

use std::fmt::Write as _;

use crate::detailed::DetailedTrace;
use crate::perf::NetworkResult;

/// Renders a [`NetworkResult`]'s per-layer rows as CSV (with header).
pub fn network_csv(result: &NetworkResult) -> String {
    let mut out = String::from(
        "layer,macs,slice_pairs,compute_cycles,memory_cycles,cycles,mac_ops,\
         sram_accesses,dram_bits,skip_side,work_fraction,input_compression_ratio\n",
    );
    for l in &result.layers {
        writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{:?},{:.4},{:.3}",
            l.name,
            l.macs,
            l.slice_pairs,
            l.compute_cycles,
            l.memory_cycles,
            l.cycles,
            l.events.mac_ops,
            l.events.sram_accesses,
            l.events.dram_bits,
            l.skip_side,
            l.work_fraction,
            l.input_compression_ratio,
        )
        .expect("writing to a String cannot fail");
    }
    out
}

/// Renders a [`DetailedTrace`]'s per-pass rows as CSV (with header).
pub fn detailed_csv(trace: &DetailedTrace) -> String {
    let mut out =
        String::from("layer,input_order,weight_order,cycles,nonzero_fraction,fetch_stalls\n");
    for p in &trace.passes {
        writeln!(
            out,
            "{},{},{},{},{:.4},{}",
            trace.name, p.input_order, p.weight_order, p.cycles, p.nonzero_fraction, p.fetch_stalls,
        )
        .expect("writing to a String cannot fail");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::Simulator;
    use crate::spec::ArchSpec;
    use sibia_nn::zoo;

    #[test]
    fn network_csv_has_one_row_per_layer() {
        let mut sim = Simulator::new(1);
        sim.sample_cap = 2048;
        let net = zoo::alexnet();
        let r = sim.simulate_network(&ArchSpec::sibia_hybrid(), &net);
        let csv = network_csv(&r);
        assert_eq!(csv.lines().count(), net.layers().len() + 1);
        assert!(csv.starts_with("layer,macs"));
        assert!(csv.contains("conv1,"));
    }

    #[test]
    fn detailed_csv_has_one_row_per_pass() {
        use crate::detailed::DetailedSim;
        use sibia_nn::{Activation, Layer, SynthSource};
        let mut src = SynthSource::new(1);
        let layer = Layer::linear("l", 16, 64, 16).with_activation(Activation::Gelu);
        let t = DetailedSim::sibia().run_layer(&ArchSpec::sibia_hybrid(), &layer, &mut src);
        let csv = detailed_csv(&t);
        assert_eq!(csv.lines().count(), t.passes.len() + 1);
    }
}
