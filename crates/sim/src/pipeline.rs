//! Cycle-stepped PE pipeline: fetch → zero-skip → MAC → accumulate, with
//! finite operand buffers (paper Fig. 8's datapath walked cycle by cycle).
//!
//! Unlike the closed-form [`crate::cycle`] model, this simulator advances
//! global time one cycle at a time: the compressed operand stream refills
//! the IBUF over the NoC, the skip unit pops one (sub-word, index) pair per
//! cycle, the 16 MACs of a column consume it, and the accumulation register
//! flushes every channel tile. It exposes *fetch-bound* behaviour — when
//! skipping is so effective that the PE drains its buffer faster than the
//! NoC can refill it, the paper's compression is what keeps the PE fed.

use std::fmt;

use sibia_arch::buffer::OperandBuffer;
use sibia_sbr::subword::SubWord;

/// Result of a pipeline run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineTrace {
    /// Total cycles.
    pub cycles: u64,
    /// Cycles with a MAC issue.
    pub active_cycles: u64,
    /// Cycles stalled on operand fetch.
    pub fetch_stall_cycles: u64,
    /// MAC operations executed (16 per active cycle).
    pub mac_ops: u64,
    /// Sub-words skipped by the zero-skipping unit (never fetched: the RLE
    /// stream only carries non-zero sub-words).
    pub skipped_subwords: u64,
}

impl PipelineTrace {
    /// Fraction of cycles with useful MAC work.
    pub fn activity(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.active_cycles as f64 / self.cycles as f64
        }
    }
}

impl fmt::Display for PipelineTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cycles ({:.0}% active, {} fetch stalls, {} sub-words skipped)",
            self.cycles,
            self.activity() * 100.0,
            self.fetch_stall_cycles,
            self.skipped_subwords
        )
    }
}

/// The pipeline simulator for one PE column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineSim {
    /// Operand buffer configuration.
    pub ibuf: OperandBuffer,
    /// Whether the stream arrives RLE-compressed (only non-zero sub-words
    /// cross the NoC) or raw (zeros consume refill bandwidth and are
    /// dropped at the skip unit).
    pub compressed_stream: bool,
}

impl PipelineSim {
    /// The Sibia configuration: compressed streams into the standard IBUF.
    pub fn sibia() -> Self {
        Self {
            ibuf: OperandBuffer::ibuf(),
            compressed_stream: true,
        }
    }

    /// The uncompressed-stream ablation: zeros burn NoC bandwidth.
    pub fn uncompressed() -> Self {
        Self {
            compressed_stream: false,
            ..Self::sibia()
        }
    }

    /// Runs one slice-order pass over a sub-word stream.
    ///
    /// The skip unit pops one buffered sub-word per cycle. With a
    /// compressed stream only non-zero sub-words ever cross the NoC or
    /// occupy the buffer; with a raw stream, zeros consume refill bandwidth
    /// and a drop cycle at the buffer head before the skip unit discards
    /// them.
    pub fn run_pass(&self, stream: &[SubWord]) -> PipelineTrace {
        let nonzero = stream.iter().filter(|s| !s.is_zero()).count() as u64;
        let zero = stream.len() as u64 - nonzero;
        let data_total = if self.compressed_stream {
            nonzero
        } else {
            stream.len() as u64
        };
        let preload = u64::from(self.ibuf.capacity).min(data_total) as u32;
        let mut ibuf = OperandBuffer::like(&self.ibuf, preload);
        let mut in_flight = data_total - u64::from(preload);
        let mut zeros_left = if self.compressed_stream { 0 } else { zero };
        let mut nonzero_left = nonzero;
        let mut cycles = 0u64;
        let mut active = 0u64;
        let mut stalls = 0u64;
        while zeros_left + nonzero_left > 0 {
            cycles += 1;
            if ibuf.tick(1, &mut in_flight) == 0 {
                stalls += 1;
                continue;
            }
            // Deterministic proportional interleave of the remaining zero
            // and non-zero sub-words.
            let take_zero =
                zeros_left * 2 > nonzero_left + zeros_left || (nonzero_left == 0 && zeros_left > 0);
            if take_zero {
                zeros_left -= 1; // dropped at the skip unit, no MAC issue
            } else {
                nonzero_left -= 1;
                active += 1;
            }
        }
        PipelineTrace {
            cycles,
            active_cycles: active,
            fetch_stall_cycles: stalls,
            mac_ops: active * 16,
            skipped_subwords: zero,
        }
    }
}

impl Default for PipelineSim {
    fn default() -> Self {
        Self::sibia()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(n: usize, zero_every: usize) -> Vec<SubWord> {
        (0..n)
            .map(|i| {
                if zero_every > 0 && i % zero_every == 0 {
                    SubWord::default()
                } else {
                    SubWord([1, 0, 0, 0])
                }
            })
            .collect()
    }

    #[test]
    fn dense_stream_is_refill_bound_at_one_subword_per_cycle() {
        let s = stream(1000, 0);
        let t = PipelineSim::sibia().run_pass(&s);
        // Consume 1/cycle, refill 2/cycle: no stalls after preload.
        assert_eq!(t.fetch_stall_cycles, 0, "{t}");
        assert_eq!(t.active_cycles, 1000);
        assert_eq!(t.mac_ops, 16_000);
    }

    #[test]
    fn compressed_sparse_stream_skips_for_free() {
        let s = stream(1000, 2); // 50% zeros
        let t = PipelineSim::sibia().run_pass(&s);
        assert_eq!(t.active_cycles, 500);
        assert_eq!(t.skipped_subwords, 500);
        // Zeros never crossed the NoC: cycles ≈ non-zero count.
        assert!(t.cycles <= 520, "{t}");
    }

    #[test]
    fn uncompressed_sparse_stream_wastes_cycles_on_zeros() {
        let s = stream(1000, 2);
        let comp = PipelineSim::sibia().run_pass(&s);
        let raw = PipelineSim::uncompressed().run_pass(&s);
        assert!(
            raw.cycles > comp.cycles,
            "raw {} vs compressed {}",
            raw.cycles,
            comp.cycles
        );
        assert_eq!(raw.active_cycles, comp.active_cycles);
    }

    #[test]
    fn starved_buffer_stalls() {
        // Tiny buffer, refill only every other cycle: the PE outruns the
        // shared NoC.
        let s = stream(400, 0);
        let mut sim = PipelineSim::sibia();
        sim.ibuf = sibia_arch::buffer::OperandBuffer::new(2, 1).with_refill_period(2);
        let t = sim.run_pass(&s);
        assert!(t.fetch_stall_cycles > 0, "{t}");
        assert_eq!(t.active_cycles, 400);
        assert!(t.cycles > 400);
    }

    #[test]
    fn empty_stream_costs_nothing() {
        let t = PipelineSim::sibia().run_pass(&[]);
        assert_eq!(t.cycles, 0);
        assert_eq!(t.mac_ops, 0);
    }
}
