//! Architecture-control model: the RISC-V core's instruction stream
//! (paper §III-B and Fig. 4).
//!
//! The RISC-V core compiles each DNN layer into a stream of tile-level
//! commands — load a tile of inputs/weights into global memory over the
//! HyperRAM interface, arm the DSM on the first tile, set the skip mode the
//! DSM's interrupt reports, execute, store outputs — and the DMA double-
//! buffers transfers against execution. This module models exactly those
//! interactions: the instruction stream itself and the resulting
//! compute/transfer timeline. It is not an ISA simulator (DESIGN.md §10).

use std::fmt;

use sibia_arch::dsm::SkipSide;
use sibia_arch::extmem::HyperRam;
use sibia_nn::{Layer, Network};

/// One tile-level command issued by the control core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// DMA a tile of input activations into global memory.
    LoadInput {
        /// Layer index.
        layer: usize,
        /// Tile index within the layer.
        tile: usize,
        /// Transfer size.
        bytes: u64,
    },
    /// DMA a tile of weights into global memory.
    LoadWeights {
        /// Layer index.
        layer: usize,
        /// Tile index within the layer.
        tile: usize,
        /// Transfer size.
        bytes: u64,
    },
    /// Arm the DSM to count zero slices while the first tile streams in.
    ArmDsm {
        /// Layer index.
        layer: usize,
    },
    /// DSM interrupt servicing: commit the layer's skip mode.
    SetSkipMode {
        /// Layer index.
        layer: usize,
        /// Chosen side.
        side: SkipSide,
    },
    /// Dispatch one tile to the MPU.
    Execute {
        /// Layer index.
        layer: usize,
        /// Tile index within the layer.
        tile: usize,
    },
    /// DMA a tile of outputs back to external memory.
    StoreOutputs {
        /// Layer index.
        layer: usize,
        /// Tile index within the layer.
        tile: usize,
        /// Transfer size.
        bytes: u64,
    },
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::LoadInput { layer, tile, bytes } => {
                write!(f, "ld.in   L{layer} T{tile} {bytes}B")
            }
            Instr::LoadWeights { layer, tile, bytes } => {
                write!(f, "ld.w    L{layer} T{tile} {bytes}B")
            }
            Instr::ArmDsm { layer } => write!(f, "dsm.arm L{layer}"),
            Instr::SetSkipMode { layer, side } => write!(f, "dsm.set L{layer} {side}"),
            Instr::Execute { layer, tile } => write!(f, "exec    L{layer} T{tile}"),
            Instr::StoreOutputs { layer, tile, bytes } => {
                write!(f, "st.out  L{layer} T{tile} {bytes}B")
            }
        }
    }
}

/// A compiled layer: its instruction range and tiling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledLayer {
    /// Layer name.
    pub name: String,
    /// Number of tiles the working set was split into.
    pub tiles: usize,
    /// Bytes transferred per tile (in + weights + out).
    pub tile_bytes: u64,
}

/// A compiled network program.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// The flat instruction stream.
    pub instrs: Vec<Instr>,
    /// Per-layer tiling summary.
    pub layers: Vec<CompiledLayer>,
}

impl Program {
    /// Total tile executions.
    pub fn total_tiles(&self) -> usize {
        self.layers.iter().map(|l| l.tiles).sum()
    }
}

/// The control-unit compiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControlUnit {
    /// Global memory capacity available for double-buffered tiles, bytes.
    pub gmem_bytes: u64,
    /// Re-arm the DSM on every tile instead of only the first.
    ///
    /// Off (the default), the monitor samples the first tile and its
    /// interrupt commits one skip mode for the layer — the paper's flow.
    /// On, each tile gets its own `ArmDsm`/`SetSkipMode` pair, modelling a
    /// monitor that re-decides per tile (the control-side counterpart of
    /// [`crate::detailed::DetailedSim::dsm_per_tile`]).
    pub dsm_per_tile: bool,
}

impl ControlUnit {
    /// The Sibia configuration: 2 DMU cores × 64 KiB, half reserved for the
    /// outgoing buffer of the double buffer.
    pub fn sibia() -> Self {
        Self {
            gmem_bytes: 64 * 1024,
            dsm_per_tile: false,
        }
    }

    /// Working-set bytes of one layer (inputs + weights + outputs at their
    /// container precisions).
    fn working_set_bytes(layer: &Layer) -> u64 {
        let inputs = layer.kind().input_len() as u64
            * u64::from(layer.input_precision().conv_container_bits())
            / 8;
        let weights = layer.kind().weight_len() as u64
            * u64::from(layer.weight_precision().conv_container_bits())
            / 8;
        let outputs = layer.kind().output_len() as u64 * 2;
        ((inputs as f64 * layer.dram_input_fraction()) as u64) + weights + outputs
    }

    /// Compiles one layer into tile commands.
    pub fn compile_layer(&self, index: usize, layer: &Layer) -> (Vec<Instr>, CompiledLayer) {
        let ws = Self::working_set_bytes(layer).max(1);
        let tiles = ws.div_ceil(self.gmem_bytes).max(1) as usize;
        let tile_bytes = ws.div_ceil(tiles as u64);
        let mut instrs = Vec::with_capacity(if self.dsm_per_tile {
            tiles * 6
        } else {
            tiles * 4 + 2
        });
        if !self.dsm_per_tile {
            instrs.push(Instr::ArmDsm { layer: index });
        }
        for t in 0..tiles {
            if self.dsm_per_tile {
                instrs.push(Instr::ArmDsm { layer: index });
            }
            instrs.push(Instr::LoadInput {
                layer: index,
                tile: t,
                bytes: tile_bytes / 2,
            });
            instrs.push(Instr::LoadWeights {
                layer: index,
                tile: t,
                bytes: tile_bytes - tile_bytes / 2,
            });
            if self.dsm_per_tile || t == 0 {
                // The DSM measured this tile while it streamed in; its
                // interrupt sets the mode before execution starts.
                instrs.push(Instr::SetSkipMode {
                    layer: index,
                    side: SkipSide::Input,
                });
            }
            instrs.push(Instr::Execute {
                layer: index,
                tile: t,
            });
            instrs.push(Instr::StoreOutputs {
                layer: index,
                tile: t,
                bytes: (layer.kind().output_len() as u64 * 2).div_ceil(tiles as u64),
            });
        }
        (
            instrs,
            CompiledLayer {
                name: layer.name().to_owned(),
                tiles,
                tile_bytes,
            },
        )
    }

    /// Compiles a whole network.
    pub fn compile(&self, net: &Network) -> Program {
        let mut instrs = Vec::new();
        let mut layers = Vec::with_capacity(net.layers().len());
        for (i, layer) in net.layers().iter().enumerate() {
            let (li, cl) = self.compile_layer(i, layer);
            instrs.extend(li);
            layers.push(cl);
        }
        Program { instrs, layers }
    }
}

impl Default for ControlUnit {
    fn default() -> Self {
        Self::sibia()
    }
}

/// Timeline of executing a [`Program`] with double-buffered DMA.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    /// Per-layer `(compute_cycles, dma_cycles, total_cycles)`.
    pub layers: Vec<(u64, u64, u64)>,
}

impl Timeline {
    /// Total cycles of the run.
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(|&(_, _, t)| t).sum()
    }

    /// Fraction of total time in which DMA was the bottleneck.
    pub fn dma_bound_fraction(&self) -> f64 {
        let bound: u64 = self
            .layers
            .iter()
            .filter(|&&(c, d, _)| d > c)
            .map(|&(_, _, t)| t)
            .sum();
        bound as f64 / self.total_cycles().max(1) as f64
    }
}

/// Executes a program's timing: per layer, the first tile's load is
/// exposed (pipeline fill), subsequent tiles double-buffer
/// (`max(compute, dma)` per tile), and the last store is exposed.
///
/// `compute_cycles_per_layer[i]` is layer `i`'s total execution cycle count
/// (e.g. from the analytic or cycle-accurate simulator).
///
/// # Panics
///
/// Panics if the compute-cycle slice length differs from the program's
/// layer count.
pub fn run_timeline(
    program: &Program,
    compute_cycles_per_layer: &[u64],
    extmem: &HyperRam,
    core_mhz: u32,
) -> Timeline {
    assert_eq!(
        compute_cycles_per_layer.len(),
        program.layers.len(),
        "one compute-cycle figure per layer"
    );
    let layers = program
        .layers
        .iter()
        .zip(compute_cycles_per_layer)
        .map(|(cl, &compute)| {
            let tile_dma = extmem.transfer_cycles(cl.tile_bytes, 1024, core_mhz);
            let dma_total = tile_dma * cl.tiles as u64;
            let compute_per_tile = compute / cl.tiles.max(1) as u64;
            // Fill + steady state + drain.
            let steady: u64 = (1..cl.tiles).map(|_| compute_per_tile.max(tile_dma)).sum();
            let total = tile_dma + steady + compute_per_tile;
            (compute, dma_total, total)
        })
        .collect();
    Timeline { layers }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sibia_nn::zoo;

    #[test]
    fn compile_produces_expected_stream_shape() {
        let cu = ControlUnit::sibia();
        let layer = Layer::linear("l", 64, 256, 256);
        let (instrs, cl) = cu.compile_layer(0, &layer);
        assert!(cl.tiles >= 1);
        // One ArmDsm, one SetSkipMode, per tile: 2 loads + exec + store.
        assert_eq!(instrs.len(), 2 + cl.tiles * 4);
        assert!(matches!(instrs[0], Instr::ArmDsm { .. }));
        assert!(instrs
            .iter()
            .any(|i| matches!(i, Instr::SetSkipMode { .. })));
        // SetSkipMode precedes the first Execute.
        let set = instrs
            .iter()
            .position(|i| matches!(i, Instr::SetSkipMode { .. }))
            .unwrap();
        let exec = instrs
            .iter()
            .position(|i| matches!(i, Instr::Execute { .. }))
            .unwrap();
        assert!(set < exec);
    }

    #[test]
    fn per_tile_rearm_emits_a_dsm_pair_for_every_tile() {
        let mut cu = ControlUnit::sibia();
        cu.dsm_per_tile = true;
        let big = Layer::linear("b", 128, 3072, 3072);
        let (instrs, cl) = cu.compile_layer(0, &big);
        assert!(cl.tiles > 1);
        // Per tile: ArmDsm + 2 loads + SetSkipMode + exec + store.
        assert_eq!(instrs.len(), cl.tiles * 6);
        let arms = instrs
            .iter()
            .filter(|i| matches!(i, Instr::ArmDsm { .. }))
            .count();
        let sets = instrs
            .iter()
            .filter(|i| matches!(i, Instr::SetSkipMode { .. }))
            .count();
        assert_eq!(arms, cl.tiles);
        assert_eq!(sets, cl.tiles);
        // Every SetSkipMode still precedes its tile's Execute.
        for w in instrs.windows(2) {
            if let Instr::Execute { .. } = w[1] {
                assert!(matches!(w[0], Instr::SetSkipMode { .. }));
            }
        }
        // The default flow is untouched.
        let (default_instrs, dl) = ControlUnit::sibia().compile_layer(0, &big);
        assert_eq!(default_instrs.len(), 2 + dl.tiles * 4);
    }

    #[test]
    fn big_layers_are_tiled_by_global_memory() {
        let cu = ControlUnit::sibia();
        let small = Layer::linear("s", 8, 64, 64);
        let big = Layer::linear("b", 128, 3072, 3072);
        let (_, cs) = cu.compile_layer(0, &small);
        let (_, cb) = cu.compile_layer(0, &big);
        assert_eq!(cs.tiles, 1);
        assert!(cb.tiles > 50, "got {}", cb.tiles);
        assert!(cb.tile_bytes <= cu.gmem_bytes);
    }

    #[test]
    fn network_program_covers_all_layers() {
        let net = zoo::alexnet();
        let p = ControlUnit::sibia().compile(&net);
        assert_eq!(p.layers.len(), net.layers().len());
        let execs = p
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::Execute { .. }))
            .count();
        assert_eq!(execs, p.total_tiles());
    }

    #[test]
    fn timeline_overlaps_dma_with_compute() {
        let net = zoo::alexnet();
        let p = ControlUnit::sibia().compile(&net);
        let hyper = HyperRam::cypress_64mbit();
        // Compute-heavy: per-layer compute far above DMA.
        let heavy: Vec<u64> = p
            .layers
            .iter()
            .map(|l| l.tiles as u64 * 1_000_000)
            .collect();
        let t = run_timeline(&p, &heavy, &hyper, 250);
        assert!(t.dma_bound_fraction() < 0.05, "{}", t.dma_bound_fraction());
        // Compute-light: DMA dominates.
        let light: Vec<u64> = p.layers.iter().map(|l| l.tiles as u64).collect();
        let t = run_timeline(&p, &light, &hyper, 250);
        assert!(t.dma_bound_fraction() > 0.9);
        // Total is at least the larger of the two components per layer.
        for &(c, d, total) in &t.layers {
            assert!(total >= c.max(d) / 2, "c={c} d={d} total={total}");
        }
    }

    #[test]
    fn instr_display_is_informative() {
        let i = Instr::Execute { layer: 3, tile: 7 };
        assert_eq!(i.to_string(), "exec    L3 T7");
    }
}
