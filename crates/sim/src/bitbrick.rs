//! Bit-brick composition: the Bit-fusion baseline's defining mechanism.
//!
//! Bit-fusion builds an `N×M`-bit product out of 2-bit × 2-bit "bit-brick"
//! multipliers whose partial products are shift-added (Sharma et al.,
//! ISCA'18). This module models that composition bit-exactly: operands are
//! decomposed into 2-bit bricks (signed top brick for 2's-complement
//! operands), all brick pairs are multiplied, and the fusion network
//! recombines them. It demonstrates *why* the conventional architecture
//! needs sign extension (mixed signed/unsigned bricks) and provides the
//! reference semantics for the revised-Bit-fusion core.

use std::fmt;

/// The 2-bit bricks of an `bits`-wide 2's-complement operand,
/// least-significant first; all bricks unsigned except the top one.
///
/// # Panics
///
/// Panics unless `bits` is a positive multiple of 2 and `value` fits.
pub fn bricks(value: i32, bits: u8) -> Vec<i8> {
    assert!(bits >= 2 && bits % 2 == 0, "brick width needs even bits");
    let min = -(1i32 << (bits - 1));
    let max = (1i32 << (bits - 1)) - 1;
    assert!(
        (min..=max).contains(&value),
        "value {value} outside {bits}-bit range"
    );
    let k = usize::from(bits) / 2;
    (0..k)
        .map(|i| {
            if i + 1 == k {
                (value >> (2 * i)) as i8 // signed top brick
            } else {
                ((value >> (2 * i)) & 0x3) as i8 // unsigned brick
            }
        })
        .collect()
}

/// Reconstructs a value from its bricks.
pub fn fuse(bricks: &[i8]) -> i32 {
    bricks
        .iter()
        .rev()
        .fold(0i32, |acc, &b| acc * 4 + i32::from(b))
}

/// A fused multiplier: multiplies two 2's-complement operands entirely via
/// 2-bit brick products (what a Bit-fusion MAC array does spatially).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusedMultiplier {
    /// Left operand width (even).
    pub a_bits: u8,
    /// Right operand width (even).
    pub b_bits: u8,
}

impl FusedMultiplier {
    /// Creates a multiplier for the given operand widths.
    ///
    /// # Panics
    ///
    /// Panics unless both widths are positive multiples of 2.
    pub fn new(a_bits: u8, b_bits: u8) -> Self {
        assert!(a_bits >= 2 && a_bits % 2 == 0, "even a_bits required");
        assert!(b_bits >= 2 && b_bits % 2 == 0, "even b_bits required");
        Self { a_bits, b_bits }
    }

    /// Number of 2b×2b brick multipliers the product consumes.
    pub fn brick_count(&self) -> usize {
        usize::from(self.a_bits / 2) * usize::from(self.b_bits / 2)
    }

    /// The fused product, computed brick-by-brick.
    ///
    /// # Panics
    ///
    /// Panics if an operand is outside its configured width.
    pub fn multiply(&self, a: i32, b: i32) -> i64 {
        let ab = bricks(a, self.a_bits);
        let bb = bricks(b, self.b_bits);
        let mut acc = 0i64;
        for (i, &x) in ab.iter().enumerate() {
            for (j, &y) in bb.iter().enumerate() {
                // Mixed signed/unsigned brick products: this is exactly the
                // sign-extension obligation the paper's signed MAC removes.
                acc += (i64::from(x) * i64::from(y)) << (2 * (i + j));
            }
        }
        acc
    }
}

impl fmt::Display for FusedMultiplier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fused {}b×{}b ({} bricks)",
            self.a_bits,
            self.b_bits,
            self.brick_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bricks_round_trip_8bit() {
        for v in -128..=127 {
            assert_eq!(fuse(&bricks(v, 8)), v, "v={v}");
        }
    }

    #[test]
    fn fused_8x8_matches_direct_multiplication() {
        let m = FusedMultiplier::new(8, 8);
        assert_eq!(m.brick_count(), 16);
        for a in (-128..=127).step_by(7) {
            for b in (-128..=127).step_by(5) {
                assert_eq!(m.multiply(a, b), i64::from(a) * i64::from(b), "{a}x{b}");
            }
        }
    }

    #[test]
    fn fused_mixed_widths_match() {
        let m = FusedMultiplier::new(4, 8);
        for a in -8..=7 {
            for b in (-128..=127).step_by(3) {
                assert_eq!(m.multiply(a, b), i64::from(a) * i64::from(b));
            }
        }
    }

    #[test]
    fn fusion_scales_quadratically() {
        // The paper's Fig. 3a premise: matching an 8-bit product with 2-bit
        // bricks costs 16 multipliers; a 4-bit product costs 4.
        assert_eq!(FusedMultiplier::new(8, 8).brick_count(), 16);
        assert_eq!(FusedMultiplier::new(4, 4).brick_count(), 4);
        assert_eq!(FusedMultiplier::new(2, 2).brick_count(), 1);
    }

    #[test]
    fn exhaustive_4x4() {
        let m = FusedMultiplier::new(4, 4);
        for a in -8..=7 {
            for b in -8..=7 {
                assert_eq!(m.multiply(a, b), i64::from(a) * i64::from(b));
            }
        }
    }

    #[test]
    #[should_panic(expected = "even a_bits")]
    fn odd_widths_rejected() {
        let _ = FusedMultiplier::new(3, 4);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn range_checked() {
        let _ = bricks(8, 4);
    }
}
