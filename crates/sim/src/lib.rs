//! Simulators for the Sibia accelerator and its baselines.
//!
//! Two complementary levels (DESIGN.md §6):
//!
//! * [`functional`] — a bit-exact model of the flexible zero-skipping PE:
//!   signed 4b×4b MACs with 7-bit products and 12-bit accumulators,
//!   sub-word-granular zero skipping, shift-add recombination of slice
//!   orders. Its outputs are proven equal to the `sibia-tensor` reference
//!   operators for every skipping mode and precision, which validates that
//!   **skipping zero slices never changes results**.
//! * [`perf`] — a cycle/energy performance simulator that runs whole
//!   networks from the model zoo through a configured core
//!   ([`spec::ArchSpec`]): Bit-fusion, HNPU, and Sibia in its input /
//!   weight / hybrid / output-skipping modes, with or without the SBR.
//! * [`analytic`] — spec-level throughput/energy models of the non-bit-slice
//!   comparison points (SparTen, S2TA, GPUs) for Table II / Fig. 15 / §III-J.

pub mod analytic;
pub mod bitbrick;
pub mod cache;
pub mod chip;
pub mod control;
pub mod cycle;
pub mod detailed;
pub mod functional;
pub mod jsonio;
pub mod mpu;
pub mod parallel;
pub mod perf;
pub mod pipeline;
pub mod spec;
pub mod stored;
pub mod tile;
pub mod trace;

pub use cache::DecompCache;
pub use functional::{PeRun, PeSim};
pub use jsonio::{grid_to_json, network_result_from_json, network_result_to_json};
pub use parallel::{GridCell, GridResult, ParallelEngine};
pub use perf::{LayerResult, NetworkResult, Simulator};
pub use stored::{config_fingerprint, network_key, simulate_network_stored, try_stored};
pub use tile::{TileConfig, TileFold, TileIter, TilePlan, TileStats};

pub use spec::{ArchSpec, Repr, SkipGranularity, SkipPolicy};
