//! Spec-level analytic models of non-bit-slice comparison points
//! (paper Table II, Fig. 15, §III-J).
//!
//! The paper compares Sibia against published accelerators (SparTen,
//! S2TA-AW) and GPUs using their spec-sheet numbers; this module models each
//! comparator from its published MAC count, frequency, sparsity-exploitation
//! class, and power, so the comparison harness can regenerate the same
//! rows. Sibia's own entries come from the real performance simulator, not
//! from this module.

use std::fmt;

/// How a comparator exploits sparsity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SparsityClass {
    /// No sparsity exploitation.
    Dense,
    /// Unstructured two-sided sparsity (SparTen): skips individual zero
    /// operand pairs, gain ≈ 1 / ((1−s_i)(1−s_w)), requiring pruning to
    /// create weight zeros.
    Unstructured,
    /// Structured block sparsity (S2TA): gains appear only at block-aligned
    /// densities; ≈2× at 50/50, nothing below ~12.5 %.
    Structured,
}

/// An analytically-modelled accelerator.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyticAccel {
    /// Name, e.g. `"SparTen"`.
    pub name: String,
    /// Technology node label.
    pub technology: &'static str,
    /// Clock in MHz.
    pub frequency_mhz: u32,
    /// Die area in mm².
    pub area_mm2: f64,
    /// MAC units.
    pub macs: usize,
    /// MAC operand width in bits.
    pub mac_bits: u8,
    /// Sparsity exploitation class.
    pub sparsity: SparsityClass,
    /// Energy per (dense) INT-op in pJ, from the published efficiency.
    pub dense_pj_per_op: f64,
}

impl AnalyticAccel {
    /// SparTen (MICRO'19): 45 nm, 800 MHz, 0.766 mm², 32 INT8 MACs,
    /// unstructured two-sided sparsity.
    pub fn sparten() -> Self {
        Self {
            name: "SparTen".to_owned(),
            technology: "45nm",
            frequency_mhz: 800,
            area_mm2: 0.766,
            macs: 32,
            mac_bits: 8,
            sparsity: SparsityClass::Unstructured,
            dense_pj_per_op: 2.1,
        }
    }

    /// S2TA-AW (HPCA'22): 65 nm, 500 MHz, 24 mm², 2048 INT8 MACs,
    /// structured sparsity. Published: 2 TOPS dense, 4 TOPS and 1.1 TOPS/W
    /// at 50/50 sparsity.
    pub fn s2ta() -> Self {
        Self {
            name: "S2TA-AW".to_owned(),
            technology: "65nm",
            frequency_mhz: 500,
            area_mm2: 24.0,
            macs: 2048,
            mac_bits: 8,
            sparsity: SparsityClass::Structured,
            dense_pj_per_op: 1.0 / 0.55, // 0.55 TOPS/W dense → 1.1 @ 50/50
        }
    }

    /// Dense throughput in TOPS (2 ops per MAC per cycle).
    pub fn dense_tops(&self) -> f64 {
        self.macs as f64 * self.frequency_mhz as f64 * 1e6 * 2.0 / 1e12
    }

    /// Speedup from sparsity exploitation at the given input/weight value
    /// sparsities.
    pub fn sparsity_gain(&self, input_sparsity: f64, weight_sparsity: f64) -> f64 {
        assert!((0.0..1.0).contains(&input_sparsity), "sparsity in [0,1)");
        assert!((0.0..1.0).contains(&weight_sparsity), "sparsity in [0,1)");
        match self.sparsity {
            SparsityClass::Dense => 1.0,
            SparsityClass::Unstructured => 1.0 / ((1.0 - input_sparsity) * (1.0 - weight_sparsity)),
            SparsityClass::Structured => {
                // Block-structured: only block-aligned sparsity on the
                // *denser* operand path converts into speedup (S2TA's
                // published 2 → 4 TOPS at 50/50 is a 2× gain), and nothing
                // below one block (1/8) of density.
                let usable = |s: f64| if s < 0.125 { 0.0 } else { s };
                1.0 / (1.0 - usable(input_sparsity).max(usable(weight_sparsity)))
            }
        }
    }

    /// Effective throughput in TOPS at the given sparsities.
    pub fn throughput_tops(&self, input_sparsity: f64, weight_sparsity: f64) -> f64 {
        self.dense_tops() * self.sparsity_gain(input_sparsity, weight_sparsity)
    }

    /// Energy in mJ for a layer of `macs` MACs at the given sparsities
    /// (executed ops × per-op energy).
    pub fn layer_energy_mj(&self, macs: u64, input_sparsity: f64, weight_sparsity: f64) -> f64 {
        let executed = 2.0 * macs as f64 / self.sparsity_gain(input_sparsity, weight_sparsity);
        executed * self.dense_pj_per_op / 1e9
    }

    /// Energy efficiency in TOPS/W at the given sparsities.
    pub fn efficiency_tops_w(&self, input_sparsity: f64, weight_sparsity: f64) -> f64 {
        // Power is roughly constant (busy array); efficiency scales with the
        // sparsity gain.
        self.sparsity_gain(input_sparsity, weight_sparsity) / self.dense_pj_per_op
    }
}

impl fmt::Display for AnalyticAccel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, {} INT{} MACs @ {} MHz, {:.2} TOPS dense)",
            self.name,
            self.technology,
            self.macs,
            self.mac_bits,
            self.frequency_mhz,
            self.dense_tops()
        )
    }
}

/// A GPU comparison point (§III-J).
#[derive(Debug, Clone, PartialEq)]
pub struct Gpu {
    /// Name.
    pub name: String,
    /// Peak arithmetic throughput in TFLOPS at the precision used.
    pub peak_tflops: f64,
    /// Achievable fraction of peak on convolution workloads.
    pub achievable_fraction: f64,
    /// Board/SoC power in W while running.
    pub power_w: f64,
}

impl Gpu {
    /// NVIDIA RTX 2080 Ti with FP32 CUDA kernels (13.4 TFLOPS, 250 W TDP).
    pub fn rtx_2080_ti() -> Self {
        Self {
            name: "RTX 2080 Ti (FP32)".to_owned(),
            peak_tflops: 13.4,
            achievable_fraction: 0.40,
            power_w: 250.0,
        }
    }

    /// Qualcomm Adreno 650 (Snapdragon 865) with FP16 TensorFlow-Lite
    /// (≈1.2 TFLOPS, ≈5 W GPU power).
    pub fn adreno_650() -> Self {
        Self {
            name: "Adreno 650 (FP16)".to_owned(),
            peak_tflops: 1.2,
            achievable_fraction: 0.25,
            power_w: 5.0,
        }
    }

    /// Inference time in seconds for `macs` MAC operations.
    pub fn time_s(&self, macs: u64) -> f64 {
        2.0 * macs as f64 / (self.peak_tflops * 1e12 * self.achievable_fraction)
    }

    /// Energy in J for `macs` MAC operations.
    pub fn energy_j(&self, macs: u64) -> f64 {
        self.time_s(macs) * self.power_w
    }

    /// Efficiency in TOPS/W.
    pub fn efficiency_tops_w(&self, macs: u64) -> f64 {
        2.0 * macs as f64 / self.energy_j(macs) / 1e12
    }
}

impl fmt::Display for Gpu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({:.1} TFLOPS peak, {:.0} W)",
            self.name, self.peak_tflops, self.power_w
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparten_matches_published_tops_at_50_50() {
        // Table II: SparTen 0.2 TOPS at 50 % input & weight sparsity.
        let s = AnalyticAccel::sparten();
        let t = s.throughput_tops(0.5, 0.5);
        assert!((t - 0.2).abs() < 0.01, "got {t}");
    }

    #[test]
    fn s2ta_matches_published_tops() {
        // Table II: S2TA 2 TOPS dense-ish, 4 TOPS and 1.1 TOPS/W at 50/50.
        let s = AnalyticAccel::s2ta();
        assert!((s.throughput_tops(0.05, 0.05) - 2.048).abs() < 0.05);
        assert!((s.throughput_tops(0.5, 0.5) - 4.096).abs() < 0.05);
        assert!((s.efficiency_tops_w(0.5, 0.5) - 1.1).abs() < 0.05);
    }

    #[test]
    fn structured_sparsity_ignores_low_sparsity() {
        let s = AnalyticAccel::s2ta();
        assert_eq!(s.sparsity_gain(0.08, 0.05), 1.0);
        assert!((s.sparsity_gain(0.5, 0.5) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn unstructured_exploits_everything() {
        let s = AnalyticAccel::sparten();
        assert!(s.sparsity_gain(0.08, 0.05) > 1.1);
    }

    #[test]
    fn gpu_ordering_matches_section_3j() {
        // RTX is fast but inefficient; Adreno is slow.
        let macs = 10_000_000_000u64; // ~MonoDepth2 scale
        let rtx = Gpu::rtx_2080_ti();
        let adreno = Gpu::adreno_650();
        assert!(rtx.time_s(macs) < adreno.time_s(macs));
        assert!(rtx.efficiency_tops_w(macs) < adreno.efficiency_tops_w(macs));
        // Efficiency gap Sibia(≈7 TOPS/W) / RTX ≈ two orders of magnitude.
        assert!(rtx.efficiency_tops_w(macs) < 0.1);
    }

    #[test]
    #[should_panic(expected = "sparsity in [0,1)")]
    fn gain_validates_range() {
        let _ = AnalyticAccel::sparten().sparsity_gain(1.0, 0.0);
    }
}
