//! Canonical JSON serialization of simulation results — and its inverse.
//!
//! These functions were born in `sibia-serve` as the wire serialization of
//! `simulate`/`sweep` responses; they live here (one layer down) because
//! the persistent store needs the same encoding for read-through caching,
//! and serve re-exports them unchanged. They are pure functions of the
//! result: the byte-identity guarantee of both the protocol and the store
//! rests on that.
//!
//! The round trip is exact in both directions:
//!
//! * [`network_result_from_json`] `∘` [`network_result_to_json`] rebuilds
//!   an equal [`NetworkResult`] (derived scalars like `total_cycles` are
//!   serialized for human consumers but recomputed, not trusted, on read);
//! * [`network_result_to_json`] `∘` [`network_result_from_json`] reproduces
//!   the exact serialized bytes, because the JSON layer's canonical float
//!   formatting makes `parse → serialize` the identity on canonical text.
//!   This is what lets a warm store hit serve byte-identical responses.

use sibia_arch::dsm::SkipSide;
use sibia_arch::energy::{EnergyBreakdown, EventCounts};
use sibia_obs::Json;

use crate::parallel::GridResult;
use crate::perf::{LayerResult, NetworkResult};

/// Canonical serialization of one simulated network result. Pure function
/// of the result — the byte-identity guarantee of the protocol and the
/// persistent store.
pub fn network_result_to_json(r: &NetworkResult) -> Json {
    Json::obj(vec![
        ("arch", Json::from(r.arch.as_str())),
        ("network", Json::from(r.network.as_str())),
        ("frequency_mhz", Json::from(u64::from(r.frequency_mhz))),
        ("total_cycles", Json::from(r.total_cycles())),
        ("total_macs", Json::from(r.total_macs())),
        ("time_s", Json::from(r.time_s())),
        ("throughput_gops", Json::from(r.throughput_gops())),
        ("efficiency_tops_w", Json::from(r.efficiency_tops_w())),
        (
            "energy",
            Json::obj(vec![
                ("mac_pj", Json::from(r.energy.mac_pj)),
                ("rf_pj", Json::from(r.energy.rf_pj)),
                ("sram_pj", Json::from(r.energy.sram_pj)),
                ("noc_pj", Json::from(r.energy.noc_pj)),
                ("dram_pj", Json::from(r.energy.dram_pj)),
                ("control_pj", Json::from(r.energy.control_pj)),
            ]),
        ),
        (
            "layers",
            Json::Array(r.layers.iter().map(layer_result_to_json).collect()),
        ),
    ])
}

fn layer_result_to_json(l: &LayerResult) -> Json {
    Json::obj(vec![
        ("name", Json::from(l.name.as_str())),
        ("macs", Json::from(l.macs)),
        ("slice_pairs", Json::from(l.slice_pairs)),
        ("compute_cycles", Json::from(l.compute_cycles)),
        ("memory_cycles", Json::from(l.memory_cycles)),
        ("cycles", Json::from(l.cycles)),
        (
            "skip_side",
            Json::from(match l.skip_side {
                SkipSide::Input => "input",
                SkipSide::Weight => "weight",
                SkipSide::None => "none",
            }),
        ),
        (
            "input_compression_ratio",
            Json::from(l.input_compression_ratio),
        ),
        ("work_fraction", Json::from(l.work_fraction)),
        (
            "events",
            Json::obj(vec![
                ("mac_ops", Json::from(l.events.mac_ops)),
                ("rf_accesses", Json::from(l.events.rf_accesses)),
                ("sram_accesses", Json::from(l.events.sram_accesses)),
                ("noc_flit_hops", Json::from(l.events.noc_flit_hops)),
                ("dram_bits", Json::from(l.events.dram_bits)),
                ("cycles", Json::from(l.events.cycles)),
            ]),
        ),
    ])
}

/// Canonical serialization of a sweep grid, cells in the engine's row-major
/// (arch, network, seed) order.
pub fn grid_to_json(grid: &GridResult) -> Json {
    Json::obj(vec![("cells", {
        Json::Array(
            grid.cells()
                .iter()
                .map(|c| {
                    Json::obj(vec![
                        ("arch_index", Json::from(c.arch_index)),
                        ("network_index", Json::from(c.network_index)),
                        ("seed", Json::from(c.seed)),
                        ("result", network_result_to_json(&c.result)),
                    ])
                })
                .collect(),
        )
    })])
}

/// Parses [`network_result_to_json`] output back into a [`NetworkResult`].
///
/// `None` on any missing or mistyped field — a store record that fails here
/// is treated as foreign and recomputed, never half-trusted. Derived fields
/// (`total_cycles`, `time_s`, …) are intentionally ignored: they are
/// recomputed from the per-layer data, so a tampered summary cannot
/// disagree with its layers.
pub fn network_result_from_json(v: &Json) -> Option<NetworkResult> {
    let layers = v
        .get("layers")?
        .as_array()?
        .iter()
        .map(layer_result_from_json)
        .collect::<Option<Vec<_>>>()?;
    let e = v.get("energy")?;
    Some(NetworkResult {
        arch: v.get("arch")?.as_str()?.to_owned(),
        network: v.get("network")?.as_str()?.to_owned(),
        frequency_mhz: u32::try_from(v.get("frequency_mhz")?.as_u64()?).ok()?,
        layers,
        energy: EnergyBreakdown {
            mac_pj: e.get("mac_pj")?.as_f64()?,
            rf_pj: e.get("rf_pj")?.as_f64()?,
            sram_pj: e.get("sram_pj")?.as_f64()?,
            noc_pj: e.get("noc_pj")?.as_f64()?,
            dram_pj: e.get("dram_pj")?.as_f64()?,
            control_pj: e.get("control_pj")?.as_f64()?,
        },
    })
}

fn layer_result_from_json(v: &Json) -> Option<LayerResult> {
    let ev = v.get("events")?;
    Some(LayerResult {
        name: v.get("name")?.as_str()?.to_owned(),
        macs: v.get("macs")?.as_u64()?,
        slice_pairs: v.get("slice_pairs")?.as_u64()? as usize,
        compute_cycles: v.get("compute_cycles")?.as_u64()?,
        memory_cycles: v.get("memory_cycles")?.as_u64()?,
        cycles: v.get("cycles")?.as_u64()?,
        events: EventCounts {
            mac_ops: ev.get("mac_ops")?.as_u64()?,
            rf_accesses: ev.get("rf_accesses")?.as_u64()?,
            sram_accesses: ev.get("sram_accesses")?.as_u64()?,
            noc_flit_hops: ev.get("noc_flit_hops")?.as_u64()?,
            dram_bits: ev.get("dram_bits")?.as_u64()?,
            cycles: ev.get("cycles")?.as_u64()?,
        },
        skip_side: match v.get("skip_side")?.as_str()? {
            "input" => SkipSide::Input,
            "weight" => SkipSide::Weight,
            "none" => SkipSide::None,
            _ => return None,
        },
        input_compression_ratio: v.get("input_compression_ratio")?.as_f64()?,
        work_fraction: v.get("work_fraction")?.as_f64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::Simulator;
    use crate::spec::ArchSpec;
    use sibia_nn::network::{DensityClass, TaskDomain};
    use sibia_nn::{Activation, Layer, Network};

    fn result() -> NetworkResult {
        let net = Network::new(
            "jsonio-net",
            TaskDomain::Vision2d,
            DensityClass::Dense,
            vec![Layer::conv2d("c1", 8, 8, 3, 1, 1, 8)
                .with_activation(Activation::Relu)
                .with_input_sparsity(0.4)],
        );
        Simulator::new(5).simulate_network(&ArchSpec::sibia_hybrid(), &net)
    }

    #[test]
    fn value_round_trip_is_exact() {
        let r = result();
        let back = network_result_from_json(&network_result_to_json(&r)).expect("round trip");
        assert_eq!(back, r);
    }

    #[test]
    fn byte_round_trip_is_exact() {
        // serialize → parse-from-text → deserialize → serialize must be the
        // identity on bytes: this is the warm-restart byte-identity lemma.
        let r = result();
        let first = network_result_to_json(&r).to_string();
        let reparsed = Json::parse(&first).unwrap();
        let back = network_result_from_json(&reparsed).expect("round trip");
        assert_eq!(network_result_to_json(&back).to_string(), first);
    }

    #[test]
    fn malformed_documents_yield_none_not_panics() {
        for bad in [
            Json::Null,
            Json::obj(vec![]),
            Json::obj(vec![("arch", Json::from("x"))]),
            Json::parse(r#"{"arch":"a","network":"n","frequency_mhz":-1,"layers":[],"energy":{}}"#)
                .unwrap(),
        ] {
            assert_eq!(network_result_from_json(&bad), None, "{bad}");
        }
        // A single bad layer poisons the whole document.
        let mut good = network_result_to_json(&result());
        if let Json::Object(members) = &mut good {
            for (k, v) in members.iter_mut() {
                if k == "layers" {
                    *v = Json::Array(vec![Json::obj(vec![("name", Json::from("broken"))])]);
                }
            }
        }
        assert_eq!(network_result_from_json(&good), None);
    }
}
