//! Deterministic parallel execution over (architecture × network × seed)
//! grids.
//!
//! Figure sweeps are embarrassingly parallel: every cell of the grid is an
//! independent `Simulator::simulate_network` call. This module fans the
//! cells out over a scoped worker pool built only on `std` (no external
//! thread-pool crate):
//!
//! * jobs are claimed from a shared atomic counter, so workers stay busy
//!   regardless of per-cell cost skew;
//! * a job is a **(network, seed) row** spanning every architecture, not a
//!   single cell: the worker decomposes the row's layers once per slice
//!   representation (via `Simulator::decompose_network`) and feeds the same
//!   `Arc<LayerDecomp>`s to every architecture in the row
//!   (`Simulator::simulate_network_from_decomps`), so the planes' statistics
//!   stay cache-resident instead of being re-derived per cell through the
//!   [`DecompCache`] miss path;
//! * every worker writes each result into the cell's own slot, so the
//!   output order is the deterministic row-major (arch, network, seed)
//!   order no matter which worker ran which row;
//! * all workers still share one [`DecompCache`], so rows that repeat a
//!   layer shape (or later grids against a long-lived cache) skip synthesis
//!   and decomposition entirely.
//!
//! Determinism does not stop at ordering: because each layer's RNG stream
//! is derived from `(seed, layer_index)` (see `sibia_nn::SynthSource::
//! for_layer`) and the cycle model computes from cached integer counts, a
//! grid simulated with 1, 2, or 64 threads — or serially without this
//! module — produces byte-identical [`NetworkResult`]s. The determinism
//! test in `tests/parallel.rs` pins this.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use sibia_nn::Network;

use crate::cache::DecompCache;
use crate::perf::{NetworkResult, Simulator};
use crate::spec::ArchSpec;

/// One completed grid cell.
#[derive(Debug, Clone, PartialEq)]
pub struct GridCell {
    /// Index into the `archs` slice passed to
    /// [`ParallelEngine::simulate_grid`].
    pub arch_index: usize,
    /// Index into the `networks` slice.
    pub network_index: usize,
    /// The seed this cell ran with.
    pub seed: u64,
    /// The simulation result.
    pub result: NetworkResult,
}

/// All cells of a simulated grid, in row-major (arch, network, seed) order.
#[derive(Debug, Clone, PartialEq)]
pub struct GridResult {
    cells: Vec<GridCell>,
    network_count: usize,
    seed_count: usize,
}

impl GridResult {
    /// The cells in row-major (arch, network, seed) order.
    pub fn cells(&self) -> &[GridCell] {
        &self.cells
    }

    /// The result of one cell.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn get(
        &self,
        arch_index: usize,
        network_index: usize,
        seed_index: usize,
    ) -> &NetworkResult {
        assert!(network_index < self.network_count && seed_index < self.seed_count);
        let flat = (arch_index * self.network_count + network_index) * self.seed_count + seed_index;
        &self.cells[flat].result
    }
}

/// The scoped-thread worker pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelEngine {
    threads: usize,
}

impl ParallelEngine {
    /// An engine sized to the machine (`std::thread::available_parallelism`,
    /// falling back to 1).
    pub fn new() -> Self {
        Self::with_threads(
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// Upper bound on the worker count: grids never profit from more
    /// workers than cells, and an absurd request (`usize::MAX` from a bad
    /// config division) must not try to spawn that many OS threads.
    pub const MAX_THREADS: usize = 1024;

    /// An engine with an explicit worker count, clamped into
    /// `[1, Self::MAX_THREADS]`. Zero (a common result of misconfigured
    /// `available_parallelism` arithmetic) means 1, not a panic or a
    /// spin — the worker count only ever changes wall-clock time, so
    /// clamping is always safe.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.clamp(1, Self::MAX_THREADS),
        }
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Simulates every (arch, network, seed) combination and returns the
    /// cells in row-major order. The worker count affects wall-clock time
    /// only, never the results.
    ///
    /// `sim` provides everything but the seed (sample cap, tech node,
    /// external memory, latency model); each cell runs with its grid seed.
    ///
    /// # Panics
    ///
    /// Panics if `archs`, `networks`, or `seeds` is empty.
    pub fn simulate_grid(
        &self,
        sim: &Simulator,
        archs: &[ArchSpec],
        networks: &[Network],
        seeds: &[u64],
    ) -> GridResult {
        self.simulate_grid_cached(sim, archs, networks, seeds, &DecompCache::new())
    }

    /// [`Self::simulate_grid`] against a caller-owned [`DecompCache`].
    /// Long-lived owners (the serve daemon) pass a shared, bounded cache so
    /// repeated grids over the same layers skip synthesis entirely; results
    /// are bit-identical to a fresh cache.
    ///
    /// # Panics
    ///
    /// Panics if `archs`, `networks`, or `seeds` is empty.
    pub fn simulate_grid_cached(
        &self,
        sim: &Simulator,
        archs: &[ArchSpec],
        networks: &[Network],
        seeds: &[u64],
        cache: &DecompCache,
    ) -> GridResult {
        self.run_grid(sim, archs, networks, seeds, cache, None, None)
    }

    /// [`Self::simulate_grid_cached`] with per-cell read-through against the
    /// persistent store: a cell whose key is already stored skips simulation
    /// entirely; a missed cell simulates and writes back. Keys are the same
    /// `sim.network` keys single simulations use (see
    /// [`crate::stored::network_key`]), so a sweep warms later single
    /// requests and vice versa. Results are bit-identical to
    /// [`Self::simulate_grid_cached`] either way.
    ///
    /// # Panics
    ///
    /// Panics if `archs`, `networks`, or `seeds` is empty.
    pub fn simulate_grid_stored(
        &self,
        sim: &Simulator,
        archs: &[ArchSpec],
        networks: &[Network],
        seeds: &[u64],
        cache: &DecompCache,
        store: &sibia_store::Store,
    ) -> GridResult {
        self.run_grid(sim, archs, networks, seeds, cache, Some(store), None)
    }

    /// The fully-general entry point: optional store read-through plus an
    /// optional per-cell observer, invoked from worker threads the moment
    /// each cell's result lands in its slot (in completion order, not grid
    /// order). The observer feeds streamed progress frames (`sibia-serve`
    /// sweep streaming) and fleet status without perturbing results: the
    /// returned grid is byte-identical with or without it.
    #[allow(clippy::too_many_arguments)]
    pub fn simulate_grid_observed(
        &self,
        sim: &Simulator,
        archs: &[ArchSpec],
        networks: &[Network],
        seeds: &[u64],
        cache: &DecompCache,
        store: Option<&sibia_store::Store>,
        on_cell: &(dyn Fn(&GridCell) + Sync),
    ) -> GridResult {
        self.run_grid(sim, archs, networks, seeds, cache, store, Some(on_cell))
    }

    #[allow(clippy::too_many_arguments)]
    fn run_grid(
        &self,
        sim: &Simulator,
        archs: &[ArchSpec],
        networks: &[Network],
        seeds: &[u64],
        cache: &DecompCache,
        store: Option<&sibia_store::Store>,
        on_cell: Option<&(dyn Fn(&GridCell) + Sync)>,
    ) -> GridResult {
        if sim.tile.is_some() {
            return self.run_grid_tiled(sim, archs, networks, seeds, cache, store, on_cell);
        }
        assert!(!archs.is_empty(), "need at least one architecture");
        assert!(!networks.is_empty(), "need at least one network");
        assert!(!seeds.is_empty(), "need at least one seed");
        let cell_count = archs.len() * networks.len() * seeds.len();
        // A job is a (network, seed) row across all architectures, so the
        // row's decompositions are computed once per representation and
        // consumed while still cache-resident.
        let rows = networks.len() * seeds.len();
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<GridCell>>> =
            (0..cell_count).map(|_| Mutex::new(None)).collect();

        let slot_of = |arch_index: usize, network_index: usize, seed_index: usize| {
            (arch_index * networks.len() + network_index) * seeds.len() + seed_index
        };
        let run_row = |row: usize| {
            let seed_index = row % seeds.len();
            let network_index = row / seeds.len();
            let net = &networks[network_index];
            let mut cell_sim = *sim;
            cell_sim.seed = seeds[seed_index];

            // Store fast path: a stored cell skips the row's decomposition
            // work entirely; only the misses are computed below.
            let mut pending: Vec<usize> = Vec::with_capacity(archs.len());
            for (arch_index, arch) in archs.iter().enumerate() {
                let stored =
                    store.and_then(|store| crate::stored::try_stored(&cell_sim, arch, net, store));
                match stored {
                    Some(result) => {
                        // One `sim.cell` span per cell either way; a stored
                        // hit's span covers only the slot write.
                        let mut span = sibia_obs::tracer().span("sim.cell");
                        span.attr("arch", &arch.name);
                        span.attr("network", net.name());
                        span.attr("seed", cell_sim.seed);
                        let cell = GridCell {
                            arch_index,
                            network_index,
                            seed: cell_sim.seed,
                            result,
                        };
                        if let Some(observe) = on_cell {
                            observe(&cell);
                        }
                        *slots[slot_of(arch_index, network_index, seed_index)]
                            .lock()
                            .expect("slot lock") = Some(cell);
                    }
                    None => pending.push(arch_index),
                }
            }

            // One decomposition per representation the pending architectures
            // need — at most one per `Repr` variant per row.
            let mut decomps = Vec::new();
            for &arch_index in &pending {
                let repr = archs[arch_index].repr;
                if !decomps.iter().any(|(r, _)| *r == repr) {
                    decomps.push((repr, cell_sim.decompose_network(net, repr, cache)));
                }
            }

            for &arch_index in &pending {
                let arch = &archs[arch_index];
                let mut span = sibia_obs::tracer().span("sim.cell");
                span.attr("arch", &arch.name);
                span.attr("network", net.name());
                span.attr("seed", cell_sim.seed);
                let row_decomps = &decomps
                    .iter()
                    .find(|(r, _)| *r == arch.repr)
                    .expect("repr decomposed above")
                    .1;
                let result = cell_sim.simulate_network_from_decomps(arch, net, None, row_decomps);
                if let Some(store) = store {
                    let key = crate::stored::network_key(&cell_sim, arch, net.name());
                    crate::stored::put_best_effort(store, &key, &result);
                }
                let cell = GridCell {
                    arch_index,
                    network_index,
                    seed: cell_sim.seed,
                    result,
                };
                if let Some(observe) = on_cell {
                    observe(&cell);
                }
                *slots[slot_of(arch_index, network_index, seed_index)]
                    .lock()
                    .expect("slot lock") = Some(cell);
            }
        };

        let mut grid_span = sibia_obs::tracer().span("sim.grid");
        grid_span.attr("archs", archs.len());
        grid_span.attr("networks", networks.len());
        grid_span.attr("seeds", seeds.len());
        grid_span.attr("cells", cell_count);
        grid_span.attr("threads", self.threads.min(rows));

        std::thread::scope(|scope| {
            for worker_index in 0..self.threads.min(rows) {
                let next = &next;
                let run_row = &run_row;
                scope.spawn(move || {
                    let started = Instant::now();
                    let mut busy = Duration::ZERO;
                    let mut cells_run = 0u64;
                    loop {
                        let row = next.fetch_add(1, Ordering::Relaxed);
                        if row >= rows {
                            break;
                        }
                        let claimed = Instant::now();
                        run_row(row);
                        busy += claimed.elapsed();
                        cells_run += archs.len() as u64;
                    }
                    // Per-worker accounting in the process-wide registry.
                    // There is no work stealing to report — workers claim
                    // cells from a shared counter — so busy vs idle time
                    // plus the claimed-cell count captures the skew.
                    let total = started.elapsed();
                    let registry = sibia_obs::registry();
                    // Aggregate cells-completed counter: the telemetry
                    // sampler turns its deltas into a fleet-comparable
                    // cells/s rate without summing per-worker series.
                    registry.counter("sim.engine.cells").add(cells_run);
                    let prefix = format!("sim.engine.worker.{worker_index}");
                    registry.counter(&format!("{prefix}.cells")).add(cells_run);
                    registry
                        .counter(&format!("{prefix}.busy_us"))
                        .add(busy.as_micros() as u64);
                    registry
                        .counter(&format!("{prefix}.idle_us"))
                        .add(total.saturating_sub(busy).as_micros() as u64);
                });
            }
        });

        let cells = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("slot lock")
                    .expect("every job completed")
            })
            .collect();
        GridResult {
            cells,
            network_count: networks.len(),
            seed_count: seeds.len(),
        }
    }

    /// The tile-grain scheduler, used when `sim.tile` is set.
    ///
    /// The layer-grain engine claims whole (network, seed) rows, so one fat
    /// layer serializes its row behind a single worker. Here the stealable
    /// quantum shrinks to a **tile stream**: every (row, representation,
    /// layer) decomposition — a streaming fold over that layer's tiles
    /// through the shared content-keyed tile cache — is one task on a
    /// shared counter, and cells are claimed individually afterwards from
    /// the now-warm [`DecompCache`]. Three phases, each a scoped fan-out:
    ///
    /// 1. **probe** — per-row store read-through, exactly as the row engine
    ///    does it, producing the pending-architecture lists;
    /// 2. **stream** — the flattened tile-stream tasks; a row with eight
    ///    layers spreads over up to eight workers instead of one;
    /// 3. **cells** — per-cell simulation from the warmed cache, store
    ///    write-back, slot write, observer.
    ///
    /// The fold's exactness contract makes every decomposition — and hence
    /// every cell — byte-identical to the layer-grain engine at any thread
    /// count (pinned by `tests/tile.rs`).
    #[allow(clippy::too_many_arguments)]
    fn run_grid_tiled(
        &self,
        sim: &Simulator,
        archs: &[ArchSpec],
        networks: &[Network],
        seeds: &[u64],
        cache: &DecompCache,
        store: Option<&sibia_store::Store>,
        on_cell: Option<&(dyn Fn(&GridCell) + Sync)>,
    ) -> GridResult {
        assert!(!archs.is_empty(), "need at least one architecture");
        assert!(!networks.is_empty(), "need at least one network");
        assert!(!seeds.is_empty(), "need at least one seed");
        let cell_count = archs.len() * networks.len() * seeds.len();
        let rows = networks.len() * seeds.len();
        let slots: Vec<Mutex<Option<GridCell>>> =
            (0..cell_count).map(|_| Mutex::new(None)).collect();
        let slot_of = |arch_index: usize, network_index: usize, seed_index: usize| {
            (arch_index * networks.len() + network_index) * seeds.len() + seed_index
        };
        let sim_for_row = |row: usize| {
            let mut cell_sim = *sim;
            cell_sim.seed = seeds[row % seeds.len()];
            cell_sim
        };
        let net_of_row = |row: usize| &networks[row / seeds.len()];

        let mut grid_span = sibia_obs::tracer().span("sim.grid");
        grid_span.attr("archs", archs.len());
        grid_span.attr("networks", networks.len());
        grid_span.attr("seeds", seeds.len());
        grid_span.attr("cells", cell_count);
        grid_span.attr("threads", self.threads);
        grid_span.attr("tile_subwords", sim.tile.unwrap_or(0));

        let fan_out = |tasks: usize, work: &(dyn Fn(usize) + Sync)| {
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..self.threads.min(tasks) {
                    let next = &next;
                    scope.spawn(move || loop {
                        let task = next.fetch_add(1, Ordering::Relaxed);
                        if task >= tasks {
                            break;
                        }
                        work(task);
                    });
                }
            });
        };

        // Phase 1: store probes, one row per task.
        let pending: Vec<Mutex<Vec<usize>>> = (0..rows).map(|_| Mutex::new(Vec::new())).collect();
        fan_out(rows, &|row| {
            let cell_sim = sim_for_row(row);
            let net = net_of_row(row);
            let mut missed = Vec::with_capacity(archs.len());
            for (arch_index, arch) in archs.iter().enumerate() {
                let stored =
                    store.and_then(|store| crate::stored::try_stored(&cell_sim, arch, net, store));
                match stored {
                    Some(result) => {
                        let mut span = sibia_obs::tracer().span("sim.cell");
                        span.attr("arch", &arch.name);
                        span.attr("network", net.name());
                        span.attr("seed", cell_sim.seed);
                        let cell = GridCell {
                            arch_index,
                            network_index: row / seeds.len(),
                            seed: cell_sim.seed,
                            result,
                        };
                        if let Some(observe) = on_cell {
                            observe(&cell);
                        }
                        let slot = slot_of(arch_index, cell.network_index, row % seeds.len());
                        *slots[slot].lock().expect("slot lock") = Some(cell);
                    }
                    None => missed.push(arch_index),
                }
            }
            *pending[row].lock().expect("pending lock") = missed;
        });
        let pending: Vec<Vec<usize>> = pending
            .into_iter()
            .map(|p| p.into_inner().expect("pending lock"))
            .collect();

        // Phase 2: the flattened tile-stream tasks. One task = one
        // (row, repr, layer) decomposition, folded tile by tile through the
        // shared cache; `decompose_layer` memoizes the result, so phase 3
        // recalls it without recomputing.
        let mut streams: Vec<(usize, crate::spec::Repr, usize)> = Vec::new();
        for (row, missed) in pending.iter().enumerate() {
            let mut reprs: Vec<crate::spec::Repr> = Vec::new();
            for &arch_index in missed {
                let repr = archs[arch_index].repr;
                if !reprs.contains(&repr) {
                    reprs.push(repr);
                }
            }
            for repr in reprs {
                for layer_index in 0..net_of_row(row).layers().len() {
                    streams.push((row, repr, layer_index));
                }
            }
        }
        let stream_count = streams.len();
        fan_out(stream_count, &|task| {
            let (row, repr, layer_index) = streams[task];
            let cell_sim = sim_for_row(row);
            let net = net_of_row(row);
            let mut span = sibia_obs::tracer().span("sim.tile.stream");
            span.attr("network", net.name());
            span.attr("layer", net.layers()[layer_index].name());
            span.attr("seed", cell_sim.seed);
            let _ = cell_sim.decompose_layer(&net.layers()[layer_index], layer_index, repr, cache);
        });
        sibia_obs::registry()
            .counter("sim.tile.streams")
            .add(stream_count as u64);

        // Phase 3: per-cell simulation from the warmed cache.
        let cells: Vec<(usize, usize)> = pending
            .iter()
            .enumerate()
            .flat_map(|(row, missed)| missed.iter().map(move |&a| (row, a)))
            .collect();
        fan_out(cells.len(), &|task| {
            let (row, arch_index) = cells[task];
            let cell_sim = sim_for_row(row);
            let net = net_of_row(row);
            let arch = &archs[arch_index];
            let mut span = sibia_obs::tracer().span("sim.cell");
            span.attr("arch", &arch.name);
            span.attr("network", net.name());
            span.attr("seed", cell_sim.seed);
            let decomps = cell_sim.decompose_network(net, arch.repr, cache);
            let result = cell_sim.simulate_network_from_decomps(arch, net, None, &decomps);
            if let Some(store) = store {
                let key = crate::stored::network_key(&cell_sim, arch, net.name());
                crate::stored::put_best_effort(store, &key, &result);
            }
            let cell = GridCell {
                arch_index,
                network_index: row / seeds.len(),
                seed: cell_sim.seed,
                result,
            };
            if let Some(observe) = on_cell {
                observe(&cell);
            }
            let slot = slot_of(arch_index, cell.network_index, row % seeds.len());
            *slots[slot].lock().expect("slot lock") = Some(cell);
        });
        sibia_obs::registry()
            .counter("sim.engine.cells")
            .add(cells.len() as u64);

        let cells = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("slot lock")
                    .expect("every job completed")
            })
            .collect();
        GridResult {
            cells,
            network_count: networks.len(),
            seed_count: seeds.len(),
        }
    }
}

impl Default for ParallelEngine {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sibia_nn::network::{DensityClass, TaskDomain};
    use sibia_nn::{Activation, Layer};

    fn tiny_net(name: &str) -> Network {
        Network::new(
            name,
            TaskDomain::Vision2d,
            DensityClass::Dense,
            vec![Layer::conv2d("c1", 8, 8, 3, 1, 1, 8)
                .with_activation(Activation::Relu)
                .with_input_sparsity(0.4)],
        )
    }

    #[test]
    fn grid_is_complete_and_ordered() {
        let sim = Simulator::new(1);
        let archs = [ArchSpec::bit_fusion(), ArchSpec::sibia_hybrid()];
        let nets = [tiny_net("a"), tiny_net("b")];
        let seeds = [1, 2, 3];
        let grid = ParallelEngine::with_threads(4).simulate_grid(&sim, &archs, &nets, &seeds);
        assert_eq!(grid.cells().len(), 12);
        for (flat, cell) in grid.cells().iter().enumerate() {
            assert_eq!(cell.arch_index, flat / 6);
            assert_eq!(cell.network_index, (flat / 3) % 2);
            assert_eq!(cell.seed, seeds[flat % 3]);
            assert_eq!(cell.result.arch, archs[cell.arch_index].name);
        }
        assert_eq!(grid.get(1, 0, 2).arch, "Sibia (hybrid)");
    }

    #[test]
    fn extreme_worker_counts_clamp_instead_of_panicking() {
        assert_eq!(ParallelEngine::with_threads(0).threads(), 1);
        assert_eq!(ParallelEngine::with_threads(1).threads(), 1);
        assert_eq!(
            ParallelEngine::with_threads(usize::MAX).threads(),
            ParallelEngine::MAX_THREADS
        );
    }
}
