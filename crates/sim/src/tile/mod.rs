//! Tile-level streaming IR: the simulator's unit of measurement as a
//! streaming fold over fixed-size tiles.
//!
//! The paper's PE does not see whole tensors: it consumes 16-bit sub-words
//! (four 4-bit slices) in 64-MAC tiles, with the dynamic sparsity monitor
//! choosing the skip side per region (PAPER.md §DSM, DESIGN.md §6). This
//! module makes that granularity a first-class IR:
//!
//! * [`TileConfig`] — the tile geometry in sub-words (default
//!   [`TileConfig::PAPER_SUBWORDS`] = 16 sub-words = 64 slices = one
//!   64-MAC PE pass);
//! * [`TilePlan`] / [`TileIter`] — a deterministic, gap-free, overlap-free
//!   partition of a digit plane into sub-word-aligned tiles (only the last
//!   tile may be ragged), streamed without materialising copies;
//! * [`TileStats`] — the per-tile summary, a **monoid**: `merge` is
//!   associative with [`TileStats::EMPTY`] as identity, so any tile
//!   partition — and any parallel fold shape over it — reduces to the same
//!   value;
//! * [`TileFold`] — the streaming reduction of per-tile stats back into a
//!   whole-plane [`PlaneStats`], **byte-identical** to the layer-at-a-time
//!   measurement (`PlaneStats::measure_plane`) for every plane, tile size,
//!   and kernel tier (pinned by `tests/tile.rs`).
//!
//! ## Why the fold is exact
//!
//! Slice, sub-word, and zero counts are plainly additive over a sub-word-
//! aligned partition. The only cross-tile state is the DMU RLE codec's
//! zero-run register: a run of `g` zero sub-words entered at run state `r`
//! emits `⌊(r + g) / cycle⌋` padding entries (the codec flushes every
//! `cycle = 2^index_bits` zeros) and leaves state `(r + g) % cycle`; a
//! non-zero sub-word emits one entry and resets the state to zero. A tile
//! measured in isolation therefore differs from the same tile inside a
//! stream **only across its leading zero gap** — after the first non-zero
//! sub-word the run state is reset and history is irrelevant. Keeping the
//! leading / trailing zero-gap lengths in [`TileStats`] lets `merge`
//! re-price exactly that boundary:
//!
//! ```text
//! entries(A ⧺ B) = entries(A) + entries(B)
//!                + ⌊(r_A + lead_B) / cycle⌋ − ⌊lead_B / cycle⌋
//! where r_A = trail_A mod cycle  (subwords_A mod cycle if A is all zero)
//! ```
//!
//! The correction is associative because it depends only on `r_A` (a pure
//! function of A) and `lead_B` (a pure function of B), both of which the
//! merged stats reproduce exactly; `tests/tile.rs` exercises random
//! re-parenthesisations against the sequential fold.
//!
//! ## Content-keyed tile identity
//!
//! A tile's stats are position-independent (run-in sensitivity lives in the
//! merge, not the measurement), so tiles are memoizable **by content**:
//! [`TileKey`] fingerprints the tile's digit bytes with two independent
//! FNV-64 streams plus the exact length. Identical tiles — every all-zero
//! tile, repeated activation patterns across the albert GLUE variants —
//! collapse to one cache entry regardless of which layer or network they
//! came from (see `DecompCache::tile_stats`).

use std::fmt;
use std::ops::Range;

use sibia_sbr::kernels::PlaneCounts;

/// Digits (slices) per sub-word: the PE consumes 16-bit sub-words of four
/// 4-bit slices.
pub const DIGITS_PER_SUBWORD: usize = 4;

/// Why a tile configuration is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TileError {
    /// A tile must hold at least one sub-word.
    ZeroSize,
}

impl fmt::Display for TileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TileError::ZeroSize => write!(f, "tile size must be at least 1 sub-word"),
        }
    }
}

impl std::error::Error for TileError {}

/// Tile geometry: how many sub-words one tile spans.
///
/// Tiles are sub-word aligned by construction — a tile boundary can never
/// split a sub-word, so sub-word counts stay additive across the partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileConfig {
    subwords: usize,
}

impl TileConfig {
    /// The paper's PE geometry: 64 MACs consume 16 sub-words per pass.
    pub const PAPER_SUBWORDS: usize = 16;

    /// A configuration of `subwords` sub-words per tile.
    ///
    /// # Errors
    ///
    /// [`TileError::ZeroSize`] when `subwords` is zero.
    pub fn new(subwords: usize) -> Result<Self, TileError> {
        if subwords == 0 {
            return Err(TileError::ZeroSize);
        }
        Ok(Self { subwords })
    }

    /// Sub-words per tile.
    pub fn subwords(self) -> usize {
        self.subwords
    }

    /// Digits (slices) per tile.
    pub fn digits(self) -> usize {
        self.subwords * DIGITS_PER_SUBWORD
    }
}

impl Default for TileConfig {
    /// The paper's 64-MAC / 16-sub-word PE tile.
    fn default() -> Self {
        Self {
            subwords: Self::PAPER_SUBWORDS,
        }
    }
}

/// A deterministic partition of one digit plane into tiles.
///
/// Tiles cover the plane exactly — no overlap, no gap — in index order;
/// every tile spans `config.digits()` digits except possibly the last,
/// which takes the remainder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TilePlan {
    plane_len: usize,
    tile_digits: usize,
}

impl TilePlan {
    /// Plans the partition of a `plane_len`-digit plane.
    pub fn new(plane_len: usize, config: TileConfig) -> Self {
        Self {
            plane_len,
            tile_digits: config.digits(),
        }
    }

    /// Number of tiles (zero for an empty plane).
    pub fn tile_count(&self) -> usize {
        self.plane_len.div_ceil(self.tile_digits)
    }

    /// The digit range of tile `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= tile_count()`.
    pub fn bounds(&self, index: usize) -> Range<usize> {
        assert!(index < self.tile_count(), "tile index out of range");
        let start = index * self.tile_digits;
        start..self.plane_len.min(start + self.tile_digits)
    }

    /// Streams the tiles of `plane` in index order.
    ///
    /// # Panics
    ///
    /// Panics if `plane.len()` differs from the planned length.
    pub fn iter<'p>(&self, plane: &'p [i8]) -> TileIter<'p> {
        assert_eq!(plane.len(), self.plane_len, "plane does not match plan");
        TileIter {
            rest: plane,
            tile_digits: self.tile_digits,
        }
    }
}

/// Streaming iterator over a plane's tiles (borrowed slices, no copies).
#[derive(Debug, Clone)]
pub struct TileIter<'p> {
    rest: &'p [i8],
    tile_digits: usize,
}

impl<'p> Iterator for TileIter<'p> {
    type Item = &'p [i8];

    fn next(&mut self) -> Option<&'p [i8]> {
        if self.rest.is_empty() {
            return None;
        }
        let take = self.rest.len().min(self.tile_digits);
        let (tile, rest) = self.rest.split_at(take);
        self.rest = rest;
        Some(tile)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.rest.len().div_ceil(self.tile_digits);
        (n, Some(n))
    }
}

impl ExactSizeIterator for TileIter<'_> {}

/// Zero-structure summary of one tile — the monoid element of the fold.
///
/// `rle_entries` counts the entries the DMU codec emits for the tile *as
/// its own stream* (run state entering at zero, trailing run unflushed);
/// [`TileStats::merge`] re-prices the boundary when tiles concatenate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileStats {
    /// Digits in the tile.
    pub len: usize,
    /// Exactly-zero digits.
    pub zero_digits: usize,
    /// Sub-words (tail zero-padded, as in the whole-plane measurement).
    pub subwords: usize,
    /// All-zero sub-words.
    pub zero_subwords: usize,
    /// RLE entries of the tile as its own stream.
    pub rle_entries: usize,
    /// Leading run of all-zero sub-words (= `subwords` when all zero).
    pub lead_zero_subwords: usize,
    /// Trailing run of all-zero sub-words (= `subwords` when all zero).
    pub trail_zero_subwords: usize,
}

impl TileStats {
    /// The fold identity: the empty tile.
    pub const EMPTY: TileStats = TileStats {
        len: 0,
        zero_digits: 0,
        subwords: 0,
        zero_subwords: 0,
        rle_entries: 0,
        lead_zero_subwords: 0,
        trail_zero_subwords: 0,
    };

    /// Whether every sub-word of the tile is zero (vacuously true when
    /// empty).
    pub fn all_zero(&self) -> bool {
        self.zero_subwords == self.subwords
    }

    /// Measures one tile through the active kernel tier, plus the boundary
    /// runs the merge needs.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is outside the codec's `[1, 15]` domain.
    pub fn measure(tile: &[i8], index_bits: u8) -> Self {
        let c: PlaneCounts = sibia_sbr::kernels::active().plane_counts(tile, index_bits);
        let mut lead = 0usize;
        let mut groups = tile.chunks(DIGITS_PER_SUBWORD);
        for g in groups.by_ref() {
            if g.iter().any(|&d| d != 0) {
                break;
            }
            lead += 1;
        }
        let trail = if lead == c.subwords {
            lead
        } else {
            tile.chunks(DIGITS_PER_SUBWORD)
                .rev()
                .take_while(|g| g.iter().all(|&d| d == 0))
                .count()
        };
        Self {
            len: c.len,
            zero_digits: c.zero_digits,
            subwords: c.subwords,
            zero_subwords: c.zero_subwords,
            rle_entries: c.rle_entries,
            lead_zero_subwords: lead,
            trail_zero_subwords: trail,
        }
    }

    /// The residual RLE run state after streaming this tile from run state
    /// zero.
    fn run_out(&self, cycle: usize) -> usize {
        let tail = if self.all_zero() {
            self.subwords
        } else {
            self.trail_zero_subwords
        };
        tail % cycle
    }

    /// Concatenates two tile summaries: `self` followed by `other`.
    ///
    /// Associative with [`Self::EMPTY`] as identity; the RLE boundary
    /// correction re-prices `other`'s leading zero gap at `self`'s residual
    /// run state (see the module docs for the argument).
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is outside `[1, 15]`, or if `self` ends on a
    /// ragged (non-sub-word-aligned) tile that is not the stream's last —
    /// partitions from [`TilePlan`] never do.
    pub fn merge(self, other: TileStats, index_bits: u8) -> TileStats {
        assert!(
            (1..=15).contains(&index_bits),
            "index bits must be in [1, 15], got {index_bits}"
        );
        if self.len == 0 {
            return other;
        }
        if other.len == 0 {
            return self;
        }
        assert!(
            self.len % DIGITS_PER_SUBWORD == 0,
            "only the final tile of a stream may be ragged"
        );
        let cycle = 1usize << index_bits;
        let run_in = self.run_out(cycle);
        let boundary =
            (run_in + other.lead_zero_subwords) / cycle - other.lead_zero_subwords / cycle;
        let lead = if self.all_zero() {
            self.subwords + other.lead_zero_subwords
        } else {
            self.lead_zero_subwords
        };
        let trail = if other.all_zero() {
            other.subwords
                + if self.all_zero() {
                    self.subwords
                } else {
                    self.trail_zero_subwords
                }
        } else {
            other.trail_zero_subwords
        };
        TileStats {
            len: self.len + other.len,
            zero_digits: self.zero_digits + other.zero_digits,
            subwords: self.subwords + other.subwords,
            zero_subwords: self.zero_subwords + other.zero_subwords,
            rle_entries: self.rle_entries + other.rle_entries + boundary,
            lead_zero_subwords: lead,
            trail_zero_subwords: trail,
        }
    }
}

/// The streaming reduction: push per-tile stats in partition order, then
/// finish into the whole-plane [`crate::cache::PlaneStats`].
#[derive(Debug, Clone, Copy)]
pub struct TileFold {
    acc: TileStats,
    index_bits: u8,
}

impl TileFold {
    /// An empty fold at the DMU's `index_bits`.
    pub fn new(index_bits: u8) -> Self {
        Self {
            acc: TileStats::EMPTY,
            index_bits,
        }
    }

    /// Folds the next tile's stats into the accumulator.
    pub fn push(&mut self, tile: TileStats) {
        self.acc = self.acc.merge(tile, self.index_bits);
    }

    /// The accumulated stream summary so far.
    pub fn stats(&self) -> TileStats {
        self.acc
    }

    /// Finishes the fold into whole-plane counts — byte-identical to
    /// `PlaneStats::measure_plane` over the concatenated stream.
    pub fn finish(self) -> crate::cache::PlaneStats {
        crate::cache::PlaneStats {
            len: self.acc.len,
            zero_slices: self.acc.zero_digits,
            subwords: self.acc.subwords,
            zero_subwords: self.acc.zero_subwords,
            rle_entries: self.acc.rle_entries,
        }
    }
}

/// Content fingerprint of one tile: two independent FNV-64 streams over the
/// digit bytes plus the exact length and codec width. Identical content —
/// wherever it appears in whatever layer — maps to one key; 128 independent
/// hash bits make an accidental collision across a cache's working set
/// (thousands of entries) negligible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileKey {
    fp_a: u64,
    fp_b: u64,
    len: u32,
    index_bits: u8,
}

impl TileKey {
    /// Fingerprints a tile's content.
    pub fn of(tile: &[i8], index_bits: u8) -> Self {
        // FNV-1a with the standard offset/prime, and a second stream with a
        // different offset basis and per-byte tweak so the two 64-bit
        // digests fail independently.
        const PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut a = 0xCBF2_9CE4_8422_2325u64;
        let mut b = 0x6C62_272E_07BB_0142u64;
        for &d in tile {
            let byte = d as u8;
            a = (a ^ u64::from(byte)).wrapping_mul(PRIME);
            b = (b ^ u64::from(byte.rotate_left(3)) ^ 0x5A).wrapping_mul(PRIME);
        }
        Self {
            fp_a: a,
            fp_b: b,
            len: tile.len() as u32,
            index_bits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{PlaneStats, DMU_INDEX_BITS};

    fn fold_plane(plane: &[i8], config: TileConfig) -> PlaneStats {
        let plan = TilePlan::new(plane.len(), config);
        let mut fold = TileFold::new(DMU_INDEX_BITS);
        for tile in plan.iter(plane) {
            fold.push(TileStats::measure(tile, DMU_INDEX_BITS));
        }
        fold.finish()
    }

    #[test]
    fn config_rejects_zero_and_defaults_to_the_paper_tile() {
        assert_eq!(TileConfig::new(0), Err(TileError::ZeroSize));
        let c = TileConfig::default();
        assert_eq!(c.subwords(), 16);
        assert_eq!(c.digits(), 64);
        assert_eq!(TileConfig::new(3).unwrap().digits(), 12);
    }

    #[test]
    fn plan_partitions_without_gap_or_overlap() {
        for len in [0usize, 1, 3, 4, 63, 64, 65, 129, 1000] {
            for sw in [1usize, 2, 7, 16, 100] {
                let plan = TilePlan::new(len, TileConfig::new(sw).unwrap());
                let mut covered = 0usize;
                for i in 0..plan.tile_count() {
                    let r = plan.bounds(i);
                    assert_eq!(r.start, covered, "len={len} sw={sw} tile={i}");
                    assert!(r.end > r.start);
                    covered = r.end;
                }
                assert_eq!(covered, len, "len={len} sw={sw}");
                // The iterator yields exactly the planned slices.
                let plane = vec![1i8; len];
                let tiles: Vec<_> = plan.iter(&plane).collect();
                assert_eq!(tiles.len(), plan.tile_count());
                assert_eq!(tiles.iter().map(|t| t.len()).sum::<usize>(), len);
            }
        }
    }

    #[test]
    fn fold_matches_whole_plane_measurement() {
        // Deterministic pseudo-random planes with long zero runs (the RLE
        // flush path) and dense stretches, across awkward tile sizes.
        let mut state = 0x9E37_79B9u32;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 17;
            state ^= state << 5;
            state
        };
        for len in [0usize, 1, 5, 63, 64, 65, 257, 1024, 4093] {
            let plane: Vec<i8> = (0..len)
                .map(|_| {
                    let r = next();
                    if r % 5 != 0 {
                        0
                    } else {
                        (r % 15) as i8 - 7
                    }
                })
                .collect();
            let whole = PlaneStats::measure_plane(&plane);
            for sw in [1usize, 2, 3, 7, 16, 17, 1000] {
                let folded = fold_plane(&plane, TileConfig::new(sw).unwrap());
                assert_eq!(folded, whole, "len={len} sw={sw}");
            }
        }
    }

    #[test]
    fn all_zero_planes_fold_exactly_through_the_flush_path() {
        // 16-subword cycle: a run of g zeros emits g/16 entries. Lengths
        // straddling multiples of 64 digits hit the flush boundary.
        for len in [60usize, 64, 68, 1020, 1024, 1028] {
            let plane = vec![0i8; len];
            let whole = PlaneStats::measure_plane(&plane);
            for sw in [1usize, 4, 16, 19] {
                assert_eq!(fold_plane(&plane, TileConfig::new(sw).unwrap()), whole);
            }
        }
    }

    #[test]
    fn merge_is_associative_with_identity() {
        let planes: Vec<Vec<i8>> = vec![
            vec![0; 128],
            vec![1, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0],
            (0..300).map(|i| if i % 9 == 0 { 3 } else { 0 }).collect(),
            vec![],
        ];
        let stats: Vec<TileStats> = planes
            .iter()
            .map(|p| TileStats::measure(p, DMU_INDEX_BITS))
            .collect();
        for a in &stats {
            assert_eq!(a.merge(TileStats::EMPTY, DMU_INDEX_BITS), *a);
            assert_eq!(TileStats::EMPTY.merge(*a, DMU_INDEX_BITS), *a);
            for b in &stats {
                for c in &stats {
                    let left = a.merge(*b, DMU_INDEX_BITS).merge(*c, DMU_INDEX_BITS);
                    let right = a.merge(b.merge(*c, DMU_INDEX_BITS), DMU_INDEX_BITS);
                    assert_eq!(left, right);
                }
            }
        }
    }

    #[test]
    fn content_keys_collide_only_on_identical_content() {
        let a = TileKey::of(&[0, 1, 2, 3], DMU_INDEX_BITS);
        assert_eq!(a, TileKey::of(&[0, 1, 2, 3], DMU_INDEX_BITS));
        assert_ne!(a, TileKey::of(&[0, 1, 2, 4], DMU_INDEX_BITS));
        assert_ne!(a, TileKey::of(&[0, 1, 2, 3, 0], DMU_INDEX_BITS));
        assert_ne!(a, TileKey::of(&[0, 1, 2, 3], 3));
        // A trailing-zero tile differs from its truncation (len is keyed).
        assert_ne!(
            TileKey::of(&[5, 0], DMU_INDEX_BITS),
            TileKey::of(&[5], DMU_INDEX_BITS)
        );
    }
}
