//! Full-core functional execution: a whole matmul spread across the MPU
//! core's 24 PEs (3 PE arrays × 4 PE columns × 2 PEs), bit-exactly.
//!
//! Output channels are dealt across PEs in 4-channel groups (the Bi-NoC
//! unicasts each PE its own weight slices while broadcasting inputs); every
//! PE runs the functional datapath of [`crate::functional`], and the core's
//! makespan is the busiest PE. This validates that the tiling/distribution
//! logic loses nothing — the distributed result equals the reference — and
//! measures the load imbalance the accumulation-unit latching has to absorb.

use sibia_sbr::Precision;
use sibia_tensor::{Shape, Tensor};

use crate::functional::{matmul_via_pe, PeSim};

/// Result of a full-core distributed matmul.
#[derive(Debug, Clone, PartialEq)]
pub struct MpuRun {
    /// The assembled output.
    pub output: Tensor<i64>,
    /// Per-PE cycle counts.
    pub pe_cycles: Vec<u64>,
    /// Core makespan: the busiest PE.
    pub makespan: u64,
    /// Total executed MAC operations.
    pub mac_ops: u64,
}

impl MpuRun {
    /// Load imbalance: busiest / mean PE cycles.
    pub fn imbalance(&self) -> f64 {
        let sum: u64 = self.pe_cycles.iter().sum();
        let mean = sum as f64 / self.pe_cycles.len().max(1) as f64;
        if mean == 0.0 {
            1.0
        } else {
            self.makespan as f64 / mean
        }
    }
}

/// The functional MPU core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MpuSim {
    /// PEs in the core (24 in the paper's MPU core).
    pub pes: usize,
    /// The per-PE datapath configuration.
    pub pe: PeSim,
}

impl MpuSim {
    /// The Sibia MPU core at the given precisions.
    pub fn sibia(input_precision: Precision, weight_precision: Precision) -> Self {
        Self {
            pes: 24,
            pe: PeSim::new(input_precision, weight_precision),
        }
    }

    /// Distributes an `[M×K]·[K×N]` matmul across the core: PE `p` owns
    /// output-channel groups `p, p + pes, …` (4 channels each).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches or out-of-range operands.
    pub fn matmul(&self, a: &Tensor<i32>, b: &Tensor<i32>) -> MpuRun {
        assert_eq!(a.shape().rank(), 2, "lhs must be rank 2");
        assert_eq!(b.shape().rank(), 2, "rhs must be rank 2");
        let (m, k) = (a.shape().dim(0), a.shape().dim(1));
        let (k2, n) = (b.shape().dim(0), b.shape().dim(1));
        assert_eq!(k, k2, "inner dimensions must match");
        let mut out = vec![0i64; m * n];
        let mut pe_cycles = vec![0u64; self.pes];
        let mut mac_ops = 0u64;
        let groups = n.div_ceil(4);
        for g in 0..groups {
            let pe_index = g % self.pes;
            let n0 = g * 4;
            let width = 4.min(n - n0);
            // Slice this PE's weight columns.
            let mut wb = vec![0i32; k * width];
            for c in 0..k {
                for j in 0..width {
                    wb[c * width + j] = b.data()[c * n + n0 + j];
                }
            }
            let bt = Tensor::from_vec(wb, Shape::new(&[k, width]));
            let (part, run) = matmul_via_pe(&self.pe, a, &bt);
            for i in 0..m {
                for j in 0..width {
                    out[i * n + n0 + j] = part.data()[i * width + j];
                }
            }
            pe_cycles[pe_index] += run.cycles;
            mac_ops += run.mac_ops;
        }
        let makespan = pe_cycles.iter().copied().max().unwrap_or(0);
        MpuRun {
            output: Tensor::from_vec(out, Shape::new(&[m, n])),
            pe_cycles,
            makespan,
            mac_ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sibia_arch::dsm::SkipSide;
    use sibia_tensor::ops;

    fn operands(m: usize, k: usize, n: usize) -> (Tensor<i32>, Tensor<i32>) {
        let a = Tensor::from_vec(
            (0..m * k)
                .map(|i| ((i * 37 + 5) % 127) as i32 - 63)
                .collect(),
            Shape::new(&[m, k]),
        );
        let b = Tensor::from_vec(
            (0..k * n)
                .map(|i| ((i * 53 + 11) % 127) as i32 - 63)
                .collect(),
            Shape::new(&[k, n]),
        );
        (a, b)
    }

    #[test]
    fn distributed_matmul_is_bit_exact() {
        let (a, b) = operands(8, 32, 96); // 24 output groups = 1 per PE
        let core = MpuSim::sibia(Precision::BITS7, Precision::BITS7);
        let run = core.matmul(&a, &b);
        assert_eq!(run.output.data(), ops::matmul(&a, &b).data());
        assert!(run.pe_cycles.iter().all(|&c| c > 0));
    }

    #[test]
    fn uneven_channel_counts_still_assemble() {
        let (a, b) = operands(5, 16, 27); // ragged N
        let core = MpuSim::sibia(Precision::BITS7, Precision::BITS7);
        let run = core.matmul(&a, &b);
        assert_eq!(run.output.data(), ops::matmul(&a, &b).data());
    }

    #[test]
    fn skipping_creates_measurable_imbalance() {
        // Inputs shared by all PEs; weight sparsity differs per column
        // group, so PEs finish at different times when weight-skipping.
        let (a, _) = operands(4, 64, 1);
        let b = Tensor::from_vec(
            (0..64 * 96)
                .map(|i| {
                    let (c, col) = (i / 96, i % 96);
                    if col < 48 && c % 3 != 0 {
                        0 // first-half output groups: whole channels zero
                    } else {
                        ((i * 31 + 1) % 127) - 63
                    }
                })
                .collect(),
            Shape::new(&[64, 96]),
        );
        let mut core = MpuSim::sibia(Precision::BITS7, Precision::BITS7);
        core.pe.skip = SkipSide::Weight;
        let run = core.matmul(&a, &b);
        assert_eq!(run.output.data(), ops::matmul(&a, &b).data());
        assert!(
            run.imbalance() > 1.05,
            "imbalance {} should be visible",
            run.imbalance()
        );
    }

    #[test]
    fn dense_distribution_is_balanced() {
        let (a, b) = operands(4, 32, 96);
        let mut core = MpuSim::sibia(Precision::BITS7, Precision::BITS7);
        core.pe.skip = SkipSide::None;
        let run = core.matmul(&a, &b);
        assert!((run.imbalance() - 1.0).abs() < 0.01, "{}", run.imbalance());
    }
}
