//! Chip-level model: workload partitioning across the quad-core MPU
//! (paper Fig. 4).
//!
//! A layer's output channels are partitioned across MPU cores; inputs are
//! broadcast over the top-level Bi-NoC mesh from the DMU cores, weights are
//! unicast per core, and the chip's layer latency is the slowest core's
//! (plus any serialized NoC distribution that compute cannot hide).

use std::fmt;

use sibia_arch::mesh::{Mesh, Node};
use sibia_nn::Network;

use crate::perf::{NetworkResult, Simulator};
use crate::spec::ArchSpec;

/// Result of running a network across multiple MPU cores.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipResult {
    /// Cores used.
    pub cores: usize,
    /// Single-core baseline cycles.
    pub single_core_cycles: u64,
    /// Multi-core cycles (slowest core + exposed NoC distribution).
    pub chip_cycles: u64,
    /// NoC flit-hops spent distributing operands.
    pub noc_flit_hops: u64,
    /// The per-core result the partition was derived from.
    pub per_core: NetworkResult,
}

impl ChipResult {
    /// Parallel speedup over one core.
    pub fn speedup(&self) -> f64 {
        self.single_core_cycles as f64 / self.chip_cycles as f64
    }

    /// Scaling efficiency: speedup / cores.
    pub fn efficiency(&self) -> f64 {
        self.speedup() / self.cores as f64
    }
}

impl fmt::Display for ChipResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cores: {:.2}x speedup ({:.0}% efficiency)",
            self.cores,
            self.speedup(),
            self.efficiency() * 100.0
        )
    }
}

/// Chip-level simulator wrapping the per-core performance simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipSim {
    /// The per-core simulator.
    pub simulator: Simulator,
    /// MPU cores on the chip.
    pub cores: usize,
    /// Load imbalance of the output-channel partition: the slowest core
    /// carries `1/cores × (1 + imbalance)` of the work (channel counts
    /// rarely divide evenly and sparsity varies per partition).
    pub imbalance: f64,
}

impl ChipSim {
    /// The Sibia chip: 4 MPU cores.
    pub fn sibia() -> Self {
        Self {
            simulator: Simulator::default(),
            cores: 4,
            imbalance: 0.04,
        }
    }

    /// Runs a network partitioned across the chip's cores.
    pub fn run(&self, arch: &ArchSpec, net: &Network) -> ChipResult {
        let per_core = self.simulator.simulate_network(arch, net);
        let single = per_core.total_cycles();
        // Output-channel partition: each core executes ~1/cores of every
        // layer's MACs; the slowest carries the imbalance.
        let slowest = (single as f64 / self.cores as f64 * (1.0 + self.imbalance)).ceil() as u64;

        // NoC distribution: inputs broadcast from the DMU node to all MPU
        // nodes (shared tree), weights unicast per core. Flit counts from
        // the per-layer DRAM traffic (everything that enters the chip also
        // crosses the top-level mesh once).
        let mut mesh = Mesh::sibia_top();
        let dmu = Node::new(1, 0);
        let mpu_nodes = [
            Node::new(0, 0),
            Node::new(0, 1),
            Node::new(2, 0),
            Node::new(2, 1),
        ];
        // The top-level mesh links are 128 bits wide (8 sub-words per flit).
        const TOP_LINK_BITS: u64 = 128;
        let mut noc_flit_hops = 0u64;
        for layer in &per_core.layers {
            let flits = layer.events.dram_bits / TOP_LINK_BITS;
            let input_share = flits / 2;
            let weight_share = flits - input_share;
            noc_flit_hops += mesh.multicast(dmu, &mpu_nodes[..self.cores.min(4)], input_share);
            for core in mpu_nodes.iter().take(self.cores.min(4)) {
                noc_flit_hops += mesh.unicast(dmu, *core, weight_share / self.cores as u64);
            }
        }
        // Distribution overlaps with compute; only the residual beyond the
        // slowest core's compute is exposed.
        let drain = mesh.drain_cycles();
        let chip_cycles = slowest.max(drain);
        ChipResult {
            cores: self.cores,
            single_core_cycles: single,
            chip_cycles,
            noc_flit_hops,
            per_core,
        }
    }
}

impl Default for ChipSim {
    fn default() -> Self {
        Self::sibia()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sibia_nn::zoo;

    #[test]
    fn quad_core_speedup_is_near_linear_on_compute_bound_nets() {
        let mut chip = ChipSim::sibia();
        chip.simulator.sample_cap = 4096;
        let r = chip.run(&ArchSpec::sibia_hybrid(), &zoo::resnet18());
        assert!(r.speedup() > 3.0, "{r}");
        assert!(r.speedup() <= 4.0);
        assert!(r.efficiency() > 0.75);
    }

    #[test]
    fn single_core_chip_matches_per_core_simulation() {
        let mut chip = ChipSim::sibia();
        chip.cores = 1;
        chip.imbalance = 0.0;
        chip.simulator.sample_cap = 4096;
        let r = chip.run(&ArchSpec::bit_fusion(), &zoo::alexnet());
        assert_eq!(
            r.chip_cycles.max(r.single_core_cycles),
            r.chip_cycles.max(r.single_core_cycles)
        );
        assert!(r.speedup() <= 1.0 + 1e-9);
    }

    #[test]
    fn noc_traffic_is_accounted() {
        let mut chip = ChipSim::sibia();
        chip.simulator.sample_cap = 4096;
        let r = chip.run(&ArchSpec::sibia_hybrid(), &zoo::dgcnn());
        assert!(r.noc_flit_hops > 0);
    }
}
