//! The data management unit's compression pipeline, end to end with real
//! bytes: quantize → SBR unit (borrow/lend registers) → sub-words → RLE →
//! bit-packed serialization → wire → deserialize → decode.
//!
//! Run with `cargo run -p sibia --example compression_pipeline`.

use sibia::compress::rle::RleStream;
use sibia::compress::RleCodec;
use sibia::prelude::*;
use sibia::sbr::SbrUnit;

fn main() {
    // A dense GeLU activation tile, as a DNN layer would produce it.
    let mut src = SynthSource::new(2024);
    let raw = src.post_activation_values(Activation::Gelu, 0.12, 4096);
    let quantizer = Quantizer::fit(&raw, Precision::BITS7);
    let codes = quantizer.quantize_all(&raw);
    let baseline_bits = codes.len() * 7;
    println!(
        "tile: {} values at 7-bit = {} bits baseline",
        codes.len(),
        baseline_bits
    );

    // The SBR unit streams the values through its borrow/lend registers.
    let unit = SbrUnit::new(Precision::BITS7);
    let subword_planes = unit.encode_subwords(&codes);
    println!("\nper-plane compression (4-bit RLE index):");
    let codec = RleCodec::default();
    let mut total_bytes = 0usize;
    let mut wire = Vec::new();
    for (order, words) in subword_planes.iter().enumerate() {
        let stream = codec.compress(words);
        let bytes = stream.serialize();
        let zero = words.iter().filter(|w| w.is_zero()).count();
        println!(
            "  order {order}: {} sub-words ({:.0}% zero) -> {} entries -> {} bytes",
            words.len(),
            zero as f64 / words.len() as f64 * 100.0,
            stream.entries().len(),
            bytes.len()
        );
        total_bytes += bytes.len();
        wire.push((bytes, words.len()));
    }
    println!(
        "\ntotal on the wire: {} bytes vs {} baseline bytes ({:.2}x compression)",
        total_bytes,
        baseline_bits / 8,
        baseline_bits as f64 / 8.0 / total_bytes as f64
    );

    // The MPU side: deserialize, decompress, and rebuild the exact values.
    let mut planes = Vec::new();
    for (bytes, n) in &wire {
        let stream = RleStream::deserialize(bytes, codec.index_bits(), *n);
        let words = stream.decompress();
        let mut plane = Vec::with_capacity(n * 4);
        for w in words {
            plane.extend_from_slice(w.slices());
        }
        plane.truncate(codes.len());
        planes.push(plane);
    }
    let rebuilt = sibia::sbr::sbr::from_planes(&planes);
    assert_eq!(rebuilt, codes, "the wire round-trips bit-exactly");
    println!("\nround trip verified: decompressed planes decode to the original codes");
}
