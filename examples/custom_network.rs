//! Bring your own network: define layers with the builder API, execute them
//! functionally, and compare accelerators on your workload.
//!
//! Run with `cargo run -p sibia --example custom_network --release`.

use sibia::nn::exec::ExecNetwork;
use sibia::nn::network::{DensityClass, TaskDomain};
use sibia::prelude::*;
use sibia::tensor::{QuantTensor, Shape};

fn main() {
    // ── 1. Describe your network with the layer builder ─────────────────
    // A small dense (GeLU) encoder: the kind of workload Sibia targets.
    let layers = vec![
        Layer::conv2d("stem", 3, 16, 3, 1, 1, 32)
            .with_precisions(Precision::BITS7, Precision::BITS7),
        Layer::conv2d("body1", 16, 32, 3, 2, 1, 32)
            .with_activation(Activation::Gelu)
            .with_input_sparsity(0.10),
        Layer::conv2d("body2", 32, 32, 3, 1, 1, 16)
            .with_activation(Activation::Gelu)
            .with_input_sparsity(0.10),
        Layer::linear("head", 1, 32 * 16 * 16, 100)
            .with_activation(Activation::Gelu)
            .with_input_sparsity(0.10),
    ];
    let net = Network::new(
        "my-dense-encoder",
        TaskDomain::Vision2d,
        DensityClass::Dense,
        layers.clone(),
    );
    println!("defined {net}");

    // ── 2. Execute it functionally (quantized, bit-exact reference) ─────
    let mut src = SynthSource::new(7);
    let exec = ExecNetwork::materialize(layers, &mut src);
    let raw = src.gaussian(3 * 32 * 32, 1.0);
    let input = QuantTensor::quantize(&raw, Shape::new(&[raw.len()]), Precision::BITS7);
    let logits = exec.forward(&input);
    println!(
        "functional forward pass: {} logits, max at class {}",
        logits.len(),
        logits
            .data()
            .iter()
            .enumerate()
            .max_by_key(|&(_, v)| v)
            .map(|(i, _)| i)
            .unwrap_or(0)
    );

    // ── 3. Compare accelerators on it ────────────────────────────────────
    println!("\narchitecture comparison on my-dense-encoder:");
    let bf = Accelerator::bit_fusion().run_network(&net);
    for arch in [
        ArchSpec::bit_fusion(),
        ArchSpec::hnpu(),
        ArchSpec::sibia_hybrid(),
    ] {
        let r = Accelerator::from_spec(arch).run_network(&net);
        println!(
            "  {:<16} {:>8.2} ms  {:>7.1} GOPS  {:>6.2} TOPS/W  ({:.2}x)",
            r.arch,
            r.time_s() * 1e3,
            r.throughput_gops(),
            r.efficiency_tops_w(),
            r.speedup_over(&bf)
        );
    }
}
