//! Dense transformer acceleration: Albert on the GLUE tasks.
//!
//! The paper's headline dense-DNN result: transformers use GeLU and softmax
//! (no ReLU), so conventional zero-skipping finds little sparsity, while the
//! SBR exposes the near-zero mass of both signs. Run with
//! `cargo run -p sibia --example transformer_inference --release`.

use sibia::nn::zoo::{self, GlueTask};
use sibia::prelude::*;

fn main() {
    for task in [GlueTask::Sst2, GlueTask::Qqp, GlueTask::Mnli] {
        let net = zoo::albert(task);
        println!("── {net}");
        let bf = Accelerator::bit_fusion().run_network(&net);
        let hnpu = Accelerator::hnpu().run_network(&net);
        let no_sbr = Accelerator::from_spec(ArchSpec::sibia_no_sbr()).run_network(&net);
        let input = Accelerator::sibia_input_skip().run_network(&net);
        let hybrid = Accelerator::sibia().run_network(&net);
        println!(
            "  speedup vs Bit-fusion:  HNPU {:.2}x | Sibia w/o SBR {:.2}x | \
             input skip {:.2}x | hybrid {:.2}x",
            hnpu.speedup_over(&bf),
            no_sbr.speedup_over(&bf),
            input.speedup_over(&bf),
            hybrid.speedup_over(&bf),
        );
        println!(
            "  energy-efficiency gain: HNPU {:.2}x | hybrid {:.2}x   ({:.2} -> {:.2} TOPS/W)",
            hnpu.efficiency_gain_over(&bf),
            hybrid.efficiency_gain_over(&bf),
            bf.efficiency_tops_w(),
            hybrid.efficiency_tops_w(),
        );
        // Where do the cycles go? Show the three busiest layers.
        let mut layers: Vec<_> = hybrid.layers.iter().collect();
        layers.sort_by_key(|l| std::cmp::Reverse(l.cycles));
        println!("  busiest layers under Sibia hybrid:");
        for l in layers.iter().take(3) {
            println!(
                "    {:<16} {:>10} cycles, executed {:.0}% of slice work, {:?}",
                l.name,
                l.cycles,
                l.work_fraction * 100.0,
                l.skip_side,
            );
        }
    }

    // Softmax output speculation (paper Fig. 12: +1.15x on MNLI).
    let net = zoo::albert(GlueTask::Mnli);
    let hybrid = Accelerator::sibia().run_network(&net);
    let out_skip = Accelerator::sibia_output_skip(1).run_network(&net);
    println!(
        "\noutput speculation on Albert (MNLI): {:.2}x over hybrid skipping",
        out_skip.speedup_over(&hybrid)
    );
}
