//! 3-D point-cloud networks: large-scale max-pool output speculation.
//!
//! VoteNet pools 64/32/16 points to one; DGCNN pools 40 neighbours to one.
//! Sibia pre-computes high-order slices, keeps a few maximal candidates per
//! window, and skips the rest — accurately, because SBR slices are balanced.
//! Run with `cargo run -p sibia --example point_cloud_speculation --release`.

use sibia::prelude::*;
use sibia::speculate::scenario::MaxPoolScenario;
use sibia::speculate::SliceRepr;

fn main() {
    // ── Speculation accuracy: balanced vs unbalanced slices ─────────────
    println!("32-to-1 max-pool speculation success (4-bit/4-bit pre-compute):");
    println!(
        "{:>6}  {:>14}  {:>14}",
        "cand", "signed (SBR)", "conventional"
    );
    for candidates in [1usize, 2, 4, 8] {
        let sc = MaxPoolScenario::votenet_32to1(candidates);
        let sbr = sc.run(SliceRepr::Signed);
        let conv = sc.run(SliceRepr::Conventional);
        println!(
            "{candidates:>6}  {:>13.1}%  {:>13.1}%",
            sbr.success_rate * 100.0,
            conv.success_rate * 100.0
        );
    }

    // ── Throughput: output skipping over hybrid skipping ────────────────
    for net in [zoo::votenet(), zoo::dgcnn()] {
        println!("\n── {net}");
        let bf = Accelerator::bit_fusion().run_network(&net);
        let hybrid = Accelerator::sibia().run_network(&net);
        println!(
            "  hybrid skipping: {:.2}x over Bit-fusion ({:.1} GOPS)",
            hybrid.speedup_over(&bf),
            hybrid.throughput_gops()
        );
        for candidates in [16usize, 8, 4] {
            let out = Accelerator::sibia_output_skip(candidates).run_network(&net);
            println!(
                "  output skip ({candidates:>2} candidates): {:.2}x over hybrid",
                out.speedup_over(&hybrid)
            );
        }
    }
}
