//! Quickstart: the signed bit-slice representation, the functional PE, and
//! a first architecture comparison.
//!
//! Run with `cargo run -p sibia --example quickstart`.

use sibia::prelude::*;
use sibia::sim::functional::matmul_via_pe;
use sibia::tensor::{ops, Shape, Tensor};

fn main() {
    // ── 1. The representation ───────────────────────────────────────────
    // Conventional bit-slices of -3 (1111101₂) are all-ones; the SBR turns
    // the high slice into zero by borrowing 1 from the low slice.
    let value = -3;
    let conv = ConvSlices::encode(value, Precision::BITS7);
    let sbr = SbrSlices::encode(value, Precision::BITS7);
    println!("value {value:>4}:  conventional {conv}   signed {sbr}");
    assert_eq!(sbr.decode(), value);

    // A dense ELU-style tensor exposes slice sparsity only under the SBR.
    let mut src = SynthSource::new(42);
    let data = src.post_activation_values(Activation::ELU_1, 0.05, 4096);
    let q = Quantizer::fit(&data, Precision::BITS7);
    let codes = q.quantize_all(&data);
    let report = SparsityReport::analyze(&codes, Precision::BITS7);
    println!("\ndense ELU tensor sparsity:\n{report}");

    // ── 2. The datapath ─────────────────────────────────────────────────
    // The flexible zero-skipping PE computes exactly the reference matmul
    // while skipping zero sub-words.
    let a = Tensor::from_vec(codes[..4 * 64].to_vec(), Shape::new(&[4, 64]));
    let w: Vec<i32> = (0..64 * 4).map(|i| ((i * 31 + 7) % 127) - 63).collect();
    let b = Tensor::from_vec(w, Shape::new(&[64, 4]));
    let pe = PeSim::new(Precision::BITS7, Precision::BITS7);
    let (out, run) = matmul_via_pe(&pe, &a, &b);
    assert_eq!(out.data(), ops::matmul(&a, &b).data());
    println!(
        "\nPE tile: {} of {} cycles used ({:.2}x speedup from zero sub-words), bit-exact",
        run.cycles,
        run.baseline_cycles,
        run.speedup()
    );

    // ── 3. The accelerator ──────────────────────────────────────────────
    let net = zoo::dgcnn();
    println!("\nrunning {net} on three architectures:");
    let bf = Accelerator::bit_fusion().run_network(&net);
    let hnpu = Accelerator::hnpu().run_network(&net);
    let sibia = Accelerator::sibia().run_network(&net);
    for r in [&bf, &hnpu, &sibia] {
        println!("  {r}");
    }
    println!(
        "\nSibia speedup over Bit-fusion: {:.2}x, over HNPU: {:.2}x; efficiency gain {:.2}x",
        sibia.speedup_over(&bf),
        sibia.speedup_over(&hnpu),
        sibia.efficiency_gain_over(&bf)
    );
}
