//! Monocular depth estimation: a mixed sparse-encoder / dense-decoder
//! network (MonoDepth2).
//!
//! The ReLU encoder has 57 % input sparsity (easy for any skipper); the ELU
//! decoder saturates negatives to small values that only the SBR can skip.
//! Also demonstrates hybrid compression (paper Fig. 13) and the GPU
//! comparison (§III-J). Run with
//! `cargo run -p sibia --example depth_estimation_dense --release`.

use sibia::compress::{CompressionMode, CompressionReport};
use sibia::prelude::*;
use sibia::sim::analytic::Gpu;

fn main() {
    let net = zoo::monodepth2();
    println!("── {net}");

    // ── Per-region skipping behaviour ───────────────────────────────────
    let sibia = Accelerator::sibia().run_network(&net);
    let enc: Vec<_> = sibia
        .layers
        .iter()
        .filter(|l| l.name.starts_with("layer"))
        .collect();
    let dec: Vec<_> = sibia
        .layers
        .iter()
        .filter(|l| l.name.starts_with("dec"))
        .collect();
    let mean_work = |ls: &[&sibia::sim::LayerResult]| {
        ls.iter().map(|l| l.work_fraction).sum::<f64>() / ls.len() as f64
    };
    println!(
        "  executed slice-work fraction: ReLU encoder {:.0}%, ELU decoder {:.0}%",
        mean_work(&enc) * 100.0,
        mean_work(&dec) * 100.0
    );

    // ── Compression of the dense ELU decoder activations ────────────────
    let mut src = SynthSource::new(7);
    let dec_layer = net
        .layers()
        .iter()
        .find(|l| l.name() == "dec1.iconv")
        .unwrap();
    let acts = src.activations(dec_layer, 32_768);
    for mode in [
        CompressionMode::None,
        CompressionMode::Rle,
        CompressionMode::Hybrid,
    ] {
        let r = CompressionReport::analyze(acts.codes().data(), dec_layer.input_precision(), mode);
        println!("  decoder activations, {mode}: ratio {:.2}x", r.ratio());
    }

    // ── Architecture comparison ─────────────────────────────────────────
    let bf = Accelerator::bit_fusion().run_network(&net);
    let hnpu = Accelerator::hnpu().run_network(&net);
    println!(
        "  speedup vs Bit-fusion: HNPU {:.2}x, Sibia hybrid {:.2}x",
        hnpu.speedup_over(&bf),
        sibia.speedup_over(&bf)
    );

    // ── GPU comparison (paper §III-J) ───────────────────────────────────
    let macs = net.total_macs();
    println!("\n  inference time and efficiency vs GPUs:");
    println!(
        "    {:<22} {:>9.2} ms  {:>8.2} TOPS/W",
        "Sibia (1 MPU core)",
        sibia.time_s() * 1e3,
        sibia.efficiency_tops_w()
    );
    for gpu in [Gpu::rtx_2080_ti(), Gpu::adreno_650()] {
        println!(
            "    {:<22} {:>9.2} ms  {:>8.2} TOPS/W",
            gpu.name,
            gpu.time_s(macs) * 1e3,
            gpu.efficiency_tops_w(macs)
        );
    }
}
